//! Regeneration of the paper's Figures 1–9.

use crate::artifact::Artifact;
use crate::charts::{bar_chart, boxplot_chart, line_plot, ring_chart};
use crate::emit::Csv;
use hpcarbon_core::db::{parts_of_class, PartId};
use hpcarbon_core::embodied::ComponentClass;
use hpcarbon_core::systems::HpcSystem;
use hpcarbon_grid::analysis::{regional_summary, winner_counts};
use hpcarbon_grid::regions::OperatorId;
use hpcarbon_grid::sim::simulate_all_regions;
use hpcarbon_grid::IntensityLevel;
use hpcarbon_timeseries::datetime::TimeZone;
use hpcarbon_units::TimeSpan;
use hpcarbon_upgrade::savings::{UpgradeScenario, UsageLevel};
use hpcarbon_workloads::benchmarks::Suite;
use hpcarbon_workloads::nodes::NodeGen;
use hpcarbon_workloads::perf;

/// Fig. 1: embodied carbon of GPU/CPU devices, absolute and per-TFLOPS.
pub fn fig1() -> Artifact {
    let parts = [
        PartId::GpuMi250x,
        PartId::GpuA100Pcie40,
        PartId::GpuV100Sxm2_32,
        PartId::CpuEpyc7763,
        PartId::CpuEpyc7742,
        PartId::CpuXeonGold6240r,
    ];
    let abs: Vec<(String, f64)> = parts
        .iter()
        .map(|p| (p.label().to_string(), p.spec().embodied().total().as_kg()))
        .collect();
    let per_tf: Vec<(String, f64)> = parts
        .iter()
        .map(|p| {
            (
                p.label().to_string(),
                p.spec()
                    .embodied_per_tflops()
                    // lint: allow(panic-in-library) -- the figure iterates the fixed processor part list, every entry of which declares an FP64 rating
                    .expect("processors have FP64"),
            )
        })
        .collect();
    let mut text = bar_chart("(a) Embodied carbon (kgCO2)", &abs, "kgCO2");
    text.push('\n');
    text.push_str(&bar_chart(
        "(b) Embodied carbon per FP64 TFLOPS",
        &per_tf,
        "kgCO2/TFLOPS",
    ));
    let mut csv = Csv::new(&["component", "embodied_kg", "kg_per_tflops"]);
    for ((l, a), (_, p)) in abs.iter().zip(&per_tf) {
        csv.row([l.clone(), format!("{a:.3}"), format!("{p:.3}")]);
    }
    Artifact::new(
        "fig1",
        "Fig. 1: Embodied carbon of GPU/CPU devices, absolute and per TFLOPS",
        text,
        csv.finish(),
    )
}

/// Fig. 2: embodied carbon of DRAM/SSD/HDD, absolute and per bandwidth.
pub fn fig2() -> Artifact {
    let parts = [PartId::Dram64gb, PartId::Ssd3_2tb, PartId::Hdd16tb];
    let abs: Vec<(String, f64)> = parts
        .iter()
        .map(|p| (p.label().to_string(), p.spec().embodied().total().as_kg()))
        .collect();
    let per_bw: Vec<(String, f64)> = parts
        .iter()
        .map(|p| {
            (
                p.label().to_string(),
                p.spec()
                    .embodied_per_bandwidth()
                    // lint: allow(panic-in-library) -- the figure iterates the fixed storage part list, every entry of which declares a bandwidth
                    .expect("storage parts declare bandwidth"),
            )
        })
        .collect();
    let mut text = bar_chart("(a) Embodied carbon (kgCO2)", &abs, "kgCO2");
    text.push('\n');
    text.push_str(&bar_chart(
        "(b) Embodied carbon per bandwidth",
        &per_bw,
        "kgCO2/(GB/s)",
    ));
    let mut csv = Csv::new(&["component", "embodied_kg", "kg_per_gbps"]);
    for ((l, a), (_, p)) in abs.iter().zip(&per_bw) {
        csv.row([l.clone(), format!("{a:.3}"), format!("{p:.3}")]);
    }
    Artifact::new(
        "fig2",
        "Fig. 2: Embodied carbon of DRAM/SSD/HDD devices, absolute and per bandwidth",
        text,
        csv.finish(),
    )
}

/// Fig. 3: manufacturing vs packaging split per device class.
pub fn fig3() -> Artifact {
    let mut text = String::new();
    let mut csv = Csv::new(&["class", "manufacturing_pct", "packaging_pct"]);
    for class in ComponentClass::ALL {
        // Class-level split aggregated over the Table 1 parts of the class.
        let parts: Vec<PartId> = parts_of_class(class)
            .into_iter()
            .filter(|p| hpcarbon_core::db::TABLE1_PARTS.contains(p))
            .collect();
        let mfg: f64 = parts
            .iter()
            .map(|p| p.spec().embodied().manufacturing.as_kg())
            .sum();
        let pack: f64 = parts
            .iter()
            .map(|p| p.spec().embodied().packaging.as_kg())
            .sum();
        text.push_str(&ring_chart(
            &format!("{class}"),
            &[("Manufacturing".into(), mfg), ("Packaging".into(), pack)],
        ));
        text.push('\n');
        let total = mfg + pack;
        csv.row([
            class.label().to_string(),
            format!("{:.1}", 100.0 * mfg / total),
            format!("{:.1}", 100.0 * pack / total),
        ]);
    }
    Artifact::new(
        "fig3",
        "Fig. 3: Manufacturing vs packaging carbon by device type",
        text,
        csv.finish(),
    )
}

/// Fig. 4: embodied carbon and performance vs number of GPUs (V100 node).
pub fn fig4() -> Artifact {
    let node = NodeGen::V100Node;
    let counts = [1u32, 2, 4];
    let e1 = node.embodied_with_gpus(1).total().as_kg();
    let xs: Vec<f64> = counts.iter().map(|n| f64::from(*n)).collect();
    let embodied: Vec<f64> = counts
        .iter()
        .map(|n| node.embodied_with_gpus(*n).total().as_kg() / e1)
        .collect();

    let mut text = String::new();
    let mut csv = Csv::new(&["suite", "gpus", "embodied_ratio", "performance_ratio"]);
    for suite in Suite::ALL {
        let perf_ratio: Vec<f64> = counts
            .iter()
            .map(|n| perf::suite_scaling(suite, node, *n))
            .collect();
        text.push_str(&line_plot(
            &format!("{} (normalized to 1 GPU)", suite.label()),
            "number of GPUs",
            &xs,
            &[
                ("Embodied Carbon".into(), embodied.clone()),
                ("Performance".into(), perf_ratio.clone()),
            ],
        ));
        text.push('\n');
        for ((n, e), p) in counts.iter().zip(&embodied).zip(&perf_ratio) {
            csv.row([
                suite.label().to_string(),
                n.to_string(),
                format!("{e:.3}"),
                format!("{p:.3}"),
            ]);
        }
    }
    Artifact::new(
        "fig4",
        "Fig. 4: Embodied carbon and performance vs number of GPUs",
        text,
        csv.finish(),
    )
}

/// Fig. 5: embodied-carbon composition of Frontier, LUMI and Perlmutter.
pub fn fig5() -> Artifact {
    let mut text = String::new();
    let mut csv = Csv::new(&["system", "class", "share_pct"]);
    for sys in HpcSystem::table2() {
        let slices: Vec<(String, f64)> = sys
            .composition_shares()
            .into_iter()
            .filter(|(_, s)| s.value() > 0.0)
            .map(|(c, s)| (c.label().to_string(), s.percent()))
            .collect();
        text.push_str(&ring_chart(sys.name, &slices));
        text.push('\n');
        for (class, share) in sys.composition_shares() {
            csv.row([
                sys.name.to_string(),
                class.label().to_string(),
                format!("{:.1}", share.percent()),
            ]);
        }
    }
    Artifact::new(
        "fig5",
        "Fig. 5: Carbon footprint contribution by component in three supercomputers",
        text,
        csv.finish(),
    )
}

/// Fig. 6: annual carbon-intensity box plots and CoV per region.
pub fn fig6(seed: u64) -> Artifact {
    let traces = simulate_all_regions(2021, seed);
    let summaries = regional_summary(&traces);
    let boxes: Vec<(String, hpcarbon_timeseries::stats::BoxplotStats)> = summaries
        .iter()
        .map(|s| (s.operator.info().short.to_string(), s.boxplot))
        .collect();
    let covs: Vec<(String, f64)> = summaries
        .iter()
        .map(|s| (s.operator.info().short.to_string(), s.cov_percent))
        .collect();
    let mut text = boxplot_chart(
        "(a) Annual carbon intensity, 2021 (gCO2/kWh)",
        &boxes,
        "gCO2/kWh",
    );
    text.push('\n');
    text.push_str(&bar_chart("(b) CoV of annual carbon intensity", &covs, "%"));
    let mut csv = Csv::new(&["region", "q1", "median", "q3", "mean", "cov_pct"]);
    for s in &summaries {
        csv.row([
            s.operator.info().short.to_string(),
            format!("{:.1}", s.boxplot.q1),
            format!("{:.1}", s.boxplot.median),
            format!("{:.1}", s.boxplot.q3),
            format!("{:.1}", s.boxplot.mean),
            format!("{:.1}", s.cov_percent),
        ]);
    }
    Artifact::new(
        "fig6",
        "Fig. 6: Annual carbon intensity and its variation across regions",
        text,
        csv.finish(),
    )
}

/// Fig. 7: days with the lowest carbon intensity per JST hour for the
/// three greenest regions.
pub fn fig7(seed: u64) -> Artifact {
    let traces: Vec<_> = simulate_all_regions(2021, seed)
        .into_iter()
        .filter(|t| OperatorId::FIG7_REGIONS.contains(&t.operator()))
        .collect();
    let w = winner_counts(&traces, TimeZone::JST);
    let xs: Vec<f64> = (0..24).map(|h| h as f64).collect();
    let series: Vec<(String, Vec<f64>)> = w
        .operators
        .iter()
        .enumerate()
        .map(|(r, op)| {
            (
                op.info().short.to_string(),
                (0..24).map(|h| f64::from(w.counts[r][h])).collect(),
            )
        })
        .collect();
    let text = line_plot(
        "Days with the lowest carbon intensity, by hour of day (JST)",
        "hour of the day (JST)",
        &xs,
        &series,
    );
    let mut csv = Csv::new(&["hour_jst", "eso_days", "ciso_days", "ercot_days"]);
    for h in 0..24 {
        csv.row([
            h.to_string(),
            w.counts[0][h].to_string(),
            w.counts[1][h].to_string(),
            w.counts[2][h].to_string(),
        ]);
    }
    Artifact::new(
        "fig7",
        "Fig. 7: Hourly variation in carbon intensity across the three most carbon-friendly regions",
        text,
        csv.finish(),
    )
}

const FIG89_YEARS: usize = 20;

fn savings_series(s: &UpgradeScenario, intensity: hpcarbon_units::CarbonIntensity) -> Vec<f64> {
    (1..=FIG89_YEARS)
        .map(|k| {
            s.savings_percent(
                TimeSpan::from_years(5.0 * k as f64 / FIG89_YEARS as f64),
                intensity,
            )
        })
        .collect()
}

fn years_axis() -> Vec<f64> {
    (1..=FIG89_YEARS)
        .map(|k| 5.0 * k as f64 / FIG89_YEARS as f64)
        .collect()
}

/// Fig. 8: carbon savings of upgrades over five years at high/medium/low
/// carbon intensity (rows = upgrade options, columns = intensity levels,
/// lines = workloads).
pub fn fig8() -> Artifact {
    let xs = years_axis();
    let mut text = String::new();
    let mut csv = Csv::new(&["upgrade", "intensity", "suite", "years", "savings_pct"]);
    for (old, new) in [
        (NodeGen::P100Node, NodeGen::V100Node),
        (NodeGen::P100Node, NodeGen::A100Node),
        (NodeGen::V100Node, NodeGen::A100Node),
    ] {
        for level in IntensityLevel::ALL {
            let series: Vec<(String, Vec<f64>)> = Suite::ALL
                .iter()
                .map(|suite| {
                    let s = UpgradeScenario::paper_default(old, new, *suite);
                    let ys = savings_series(&s, level.intensity());
                    for (x, y) in xs.iter().zip(&ys) {
                        csv.row([
                            format!("{} to {}", old.config().name, new.config().name),
                            level.label().to_string(),
                            suite.label().to_string(),
                            format!("{x:.2}"),
                            format!("{y:.2}"),
                        ]);
                    }
                    (suite.label().to_string(), ys)
                })
                .collect();
            text.push_str(&line_plot(
                &format!(
                    "{} to {} upgrade, {} ({} gCO2/kWh)",
                    old.config().name,
                    new.config().name,
                    level.label(),
                    level.intensity().as_g_per_kwh()
                ),
                "years of operation after upgrade",
                &xs,
                &series,
            ));
            text.push('\n');
        }
    }
    Artifact::new(
        "fig8",
        "Fig. 8: Carbon savings after upgrade vs time, by regional carbon intensity",
        text,
        csv.finish(),
    )
}

/// Fig. 9: carbon savings of upgrades under high/medium/low GPU usage at
/// 200 gCO₂/kWh (rows = upgrade options, columns = workloads, lines =
/// usage levels).
pub fn fig9() -> Artifact {
    let xs = years_axis();
    let intensity = IntensityLevel::Medium.intensity();
    let mut text = String::new();
    let mut csv = Csv::new(&["upgrade", "suite", "usage", "years", "savings_pct"]);
    for (old, new) in [
        (NodeGen::P100Node, NodeGen::V100Node),
        (NodeGen::P100Node, NodeGen::A100Node),
        (NodeGen::V100Node, NodeGen::A100Node),
    ] {
        for suite in Suite::ALL {
            let series: Vec<(String, Vec<f64>)> = UsageLevel::ALL
                .iter()
                .map(|usage| {
                    let s = UpgradeScenario {
                        usage: usage.fraction(),
                        ..UpgradeScenario::paper_default(old, new, suite)
                    };
                    let ys = savings_series(&s, intensity);
                    for (x, y) in xs.iter().zip(&ys) {
                        csv.row([
                            format!("{} to {}", old.config().name, new.config().name),
                            suite.label().to_string(),
                            usage.label().to_string(),
                            format!("{x:.2}"),
                            format!("{y:.2}"),
                        ]);
                    }
                    (usage.label().to_string(), ys)
                })
                .collect();
            text.push_str(&line_plot(
                &format!(
                    "{} to {} upgrade, {} workload (200 gCO2/kWh)",
                    old.config().name,
                    new.config().name,
                    suite.label()
                ),
                "years of operation after upgrade",
                &xs,
                &series,
            ));
            text.push('\n');
        }
    }
    Artifact::new(
        "fig9",
        "Fig. 9: Carbon savings after upgrade vs time, by GPU usage pattern",
        text,
        csv.finish(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_reproduces_orderings() {
        let a = fig1();
        assert!(a.text.contains("AMD MI250X"));
        // CSV: MI250X first row has max embodied and min per-TFLOPS.
        let rows: Vec<Vec<f64>> = a
            .csv
            .lines()
            .skip(1)
            .map(|l| {
                l.split(',')
                    .skip(1)
                    .map(|v| v.parse().unwrap())
                    .collect::<Vec<f64>>()
            })
            .collect();
        let max_abs = rows.iter().map(|r| r[0]).fold(f64::MIN, f64::max);
        let min_ptf = rows.iter().map(|r| r[1]).fold(f64::MAX, f64::min);
        assert_eq!(rows[0][0], max_abs);
        assert_eq!(rows[0][1], min_ptf);
    }

    #[test]
    fn fig2_per_bandwidth_ordering() {
        let a = fig2();
        let rows: Vec<f64> = a
            .csv
            .lines()
            .skip(1)
            .map(|l| l.split(',').nth(2).unwrap().parse().unwrap())
            .collect();
        // DRAM < SSD < HDD per bandwidth.
        assert!(rows[0] < rows[1] && rows[1] < rows[2], "{rows:?}");
    }

    #[test]
    fn fig3_shares_sum_to_100() {
        let a = fig3();
        for line in a.csv.lines().skip(1) {
            let cells: Vec<&str> = line.split(',').collect();
            let mfg: f64 = cells[1].parse().unwrap();
            let pack: f64 = cells[2].parse().unwrap();
            assert!((mfg + pack - 100.0).abs() < 0.2, "{line}");
        }
        assert!(a.text.contains("DRAM"));
    }

    #[test]
    fn fig4_has_three_suites_three_counts() {
        let a = fig4();
        assert_eq!(a.csv.lines().count(), 1 + 9);
        assert!(a.text.contains("NLP"));
        assert!(a.text.contains("Embodied Carbon"));
    }

    #[test]
    fn fig5_includes_all_systems() {
        let a = fig5();
        for sys in ["Frontier", "LUMI", "Perlmutter"] {
            assert!(a.text.contains(sys));
        }
        // Perlmutter has an HDD row with 0.0 share in the CSV.
        assert!(a.csv.contains("Perlmutter,HDD,0.0"));
    }

    #[test]
    fn fig6_has_seven_regions() {
        let a = fig6(2021);
        assert_eq!(a.csv.lines().count(), 8);
        assert!(a.text.contains("ESO"));
        assert!(a.text.contains("CoV"));
    }

    #[test]
    fn fig7_counts_cover_the_year() {
        let a = fig7(2021);
        assert_eq!(a.csv.lines().count(), 25);
        for line in a.csv.lines().skip(1) {
            let total: u32 = line
                .split(',')
                .skip(1)
                .map(|v| v.parse::<u32>().unwrap())
                .sum();
            assert_eq!(total, 365, "{line}");
        }
    }

    #[test]
    fn fig8_has_27_series() {
        let a = fig8();
        // 3 upgrades x 3 levels x 3 suites x FIG89_YEARS samples.
        assert_eq!(a.csv.lines().count(), 1 + 27 * FIG89_YEARS);
        assert!(a.text.contains("Low Carbon Intensity"));
    }

    #[test]
    fn fig9_has_27_series() {
        let a = fig9();
        assert_eq!(a.csv.lines().count(), 1 + 27 * FIG89_YEARS);
        assert!(a.text.contains("High Usage"));
    }
}
