//! Property tests for the embodied/operational carbon models.

use hpcarbon_core::db::{all_parts, PartId};
use hpcarbon_core::embodied::*;
use hpcarbon_core::operational::{operational_carbon, Pue};
use hpcarbon_core::systems::HpcSystem;
use hpcarbon_units::*;
use proptest::prelude::*;

fn densities(f: f64, g: f64, m: f64) -> FabDensities {
    FabDensities {
        fpa: CarbonAreaDensity::from_g_per_cm2(f),
        gpa: CarbonAreaDensity::from_g_per_cm2(g),
        mpa: CarbonAreaDensity::from_g_per_cm2(m),
    }
}

proptest! {
    #[test]
    fn eq3_linear_in_area(
        f in 1.0..3000.0f64, g in 1.0..1000.0f64, m in 1.0..1000.0f64,
        area in 1.0..2000.0f64, k in 1.1..10.0f64,
    ) {
        let d = densities(f, g, m);
        let y = default_fab_yield();
        let base = processor_manufacturing(d, SiliconArea::from_mm2(area), y);
        let scaled = processor_manufacturing(d, SiliconArea::from_mm2(area * k), y);
        prop_assert!((scaled.as_g() / base.as_g() - k).abs() < 1e-9);
    }

    #[test]
    fn eq3_monotone_in_yield(
        area in 1.0..2000.0f64,
        y1 in 0.1..0.99f64, y2 in 0.1..0.99f64,
    ) {
        let d = densities(1000.0, 200.0, 300.0);
        let a = SiliconArea::from_mm2(area);
        let m1 = processor_manufacturing(d, a, Fraction::new_unchecked(y1));
        let m2 = processor_manufacturing(d, a, Fraction::new_unchecked(y2));
        // Lower yield => more carbon.
        if y1 < y2 {
            prop_assert!(m1 >= m2);
        } else {
            prop_assert!(m2 >= m1);
        }
    }

    #[test]
    fn eq4_linear_in_capacity(epc in 0.1..100.0f64, cap in 1.0..1e6f64) {
        let one = memory_manufacturing(
            CarbonPerCapacity::from_g_per_gb(epc), DataCapacity::from_gb(cap));
        let double = memory_manufacturing(
            CarbonPerCapacity::from_g_per_gb(epc), DataCapacity::from_gb(2.0 * cap));
        prop_assert!((double.as_g() - 2.0 * one.as_g()).abs() < one.as_g() * 1e-9);
    }

    #[test]
    fn eq5_linear_in_ics(n in 0u32..10_000) {
        prop_assert_eq!(packaging_from_ics(n).as_g(), 150.0 * n as f64);
    }

    #[test]
    fn breakdown_shares_partition_unity(mfg in 0.1..1e6f64, pack in 0.0..1e6f64) {
        let b = EmbodiedBreakdown {
            manufacturing: CarbonMass::from_g(mfg),
            packaging: CarbonMass::from_g(pack),
        };
        let s = b.manufacturing_share().value() + b.packaging_share().value();
        prop_assert!((s - 1.0).abs() < 1e-9);
    }

    #[test]
    fn breakdown_scaling_commutes_with_total(mfg in 0.1..1e6f64, pack in 0.0..1e6f64, k in 0.0..1e4f64) {
        let b = EmbodiedBreakdown {
            manufacturing: CarbonMass::from_g(mfg),
            packaging: CarbonMass::from_g(pack),
        };
        let a = b.scaled(k).total().as_g();
        let c = b.total().as_g() * k;
        prop_assert!((a - c).abs() <= c.abs() * 1e-12 + 1e-12);
    }

    #[test]
    fn eq6_monotone_in_all_inputs(
        e1 in 0.0..1e9f64, e2 in 0.0..1e9f64,
        i1 in 0.0..1000.0f64, i2 in 0.0..1000.0f64,
        pue in 1.0..2.5f64,
    ) {
        let p = Pue::new(pue);
        let c11 = operational_carbon(Energy::from_kwh(e1), p, CarbonIntensity::from_g_per_kwh(i1));
        let c21 = operational_carbon(Energy::from_kwh(e2), p, CarbonIntensity::from_g_per_kwh(i1));
        let c12 = operational_carbon(Energy::from_kwh(e1), p, CarbonIntensity::from_g_per_kwh(i2));
        if e1 <= e2 {
            prop_assert!(c11 <= c21);
        }
        if i1 <= i2 {
            prop_assert!(c11 <= c12);
        }
    }

    #[test]
    fn pue_never_shrinks_energy(e in 0.0..1e9f64, pue in 1.0..3.0f64) {
        let energy = Energy::from_kwh(e);
        prop_assert!(Pue::new(pue).apply(energy) >= energy);
    }
}

// Deterministic cross-catalog invariants (not random, but broad).
#[test]
fn all_parts_have_positive_consistent_breakdowns() {
    for p in all_parts() {
        let b = p.spec().embodied();
        assert!(b.total().as_g() > 0.0);
        assert!(
            (b.manufacturing + b.packaging - b.total()).as_g().abs() < 1e-9,
            "{p:?}"
        );
    }
}

#[test]
fn inventory_scaling_matches_unit_sums() {
    // System embodied equals the sum over inventory of unit embodied × count.
    for sys in HpcSystem::table2() {
        let direct = sys.embodied_total().as_g();
        let manual: f64 = sys
            .inventory
            .iter()
            .map(|(spec, count)| spec.embodied().total().as_g() * *count as f64)
            .sum();
        assert!((direct - manual).abs() < manual * 1e-12);
    }
}

#[test]
fn class_sums_equal_total() {
    for sys in HpcSystem::table2() {
        let by_class: f64 = sys.embodied_by_class().iter().map(|(_, m)| m.as_g()).sum();
        assert!((by_class - sys.embodied_total().as_g()).abs() < by_class * 1e-12);
    }
}

#[test]
fn per_tflops_defined_exactly_for_processors() {
    for p in all_parts() {
        let s = p.spec();
        match s.class {
            ComponentClass::Gpu | ComponentClass::Cpu => {
                assert!(s.embodied_per_tflops().is_some(), "{p:?}")
            }
            _ => assert!(s.embodied_per_tflops().is_none(), "{p:?}"),
        }
    }
    assert!(PartId::Dram64gb.spec().embodied_per_bandwidth().is_some());
}
