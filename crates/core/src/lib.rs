//! # hpcarbon-core
//!
//! The paper's carbon-footprint model (SC'23, Li et al., "Toward
//! Sustainable HPC"), implemented exactly as Eqs. 1–6 define it:
//!
//! - **Eq. 1** `C_total = C_em + C_op` — [`lifecycle::total_carbon`]
//! - **Eq. 2** `C_em = Manufacturing + Packaging` — [`embodied::EmbodiedBreakdown`]
//! - **Eq. 3** `M_proc = (FPA + GPA + MPA) · A_die / Yield` —
//!   [`embodied::processor_manufacturing`]
//! - **Eq. 4** `M_m/s = EPC · Capacity` — [`embodied::memory_manufacturing`]
//! - **Eq. 5** `Packaging = 150 gCO₂ · #ICs` — [`embodied::packaging_from_ics`]
//!   (with the ratio-based variant the paper uses for storage devices)
//! - **Eq. 6** `C_op = I_sys · E_op` — [`operational::operational_carbon`]
//!
//! Around the equations sit two databases:
//!
//! - [`db`]: the component catalog — every part in the paper's Table 1 and
//!   Table 5, with die areas, process nodes, IC counts, EPC values,
//!   performance figures (FP64 TFLOPS, bandwidth) and power envelopes. The
//!   paper does not publish its per-part model inputs; ours are chosen from
//!   publicly reported ranges and calibrated so that the *relative*
//!   magnitudes of the paper's Figs. 1–3 and 5 reproduce (see DESIGN.md §1
//!   and the doc comments on each constant).
//! - [`systems`]: the system inventories of Table 2 (Frontier, LUMI,
//!   Perlmutter) used by Fig. 5's composition analysis.
//!
//! # Example: embodied carbon of an A100 (Fig. 1 bar)
//!
//! ```
//! use hpcarbon_core::db::PartId;
//!
//! let a100 = PartId::GpuA100Pcie40.spec();
//! let em = a100.embodied();
//! // ~22 kgCO2, ~15% of it from packaging (Fig. 3's GPU ring).
//! assert!(em.total().as_kg() > 15.0 && em.total().as_kg() < 30.0);
//! assert!(em.packaging_share().value() > 0.10 && em.packaging_share().value() < 0.20);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod db;
pub mod embodied;
pub mod interconnect;
pub mod lifecycle;
pub mod operational;
pub mod rfp;
pub mod systems;
pub mod whatif;

pub use embodied::EmbodiedBreakdown;
pub use lifecycle::total_carbon;
pub use operational::{operational_carbon, Pue};
