//! Interconnect embodied-carbon modeling — the paper's §3 limitation,
//! closed.
//!
//! > "Network interconnects such as HPE Slingshot provide high-bandwidth,
//! > low-latency communication between nodes … these components could not
//! > be modeled and characterized due to the unavailability of open-access
//! > production carbon emission reports." (paper, Limitation of this study)
//!
//! This module provides the model the paper asks vendors to enable: a
//! switch is an ASIC (Eq. 3 on its die) plus per-port electronics and
//! optics (Eq. 5-style per-IC counting); a NIC is a smaller ASIC plus board
//! ICs. Since no vendor publishes these numbers, the defaults are
//! *parameterized estimates* sized from public facts (Slingshot's Rosetta
//! ASIC is a 64-port 12.8 Tb/s-class switch chip, comparable in die size to
//! contemporary Tomahawk-class silicon at ~800 mm² on N7; optical
//! transceivers carry a handful of IC packages each) — and the
//! [`sensitivity`] helper quantifies how conclusions move as the estimates
//! vary, which is the scientifically honest way to include an unreported
//! component.

use crate::db::ProcessNode;
use crate::embodied::{
    default_fab_yield, processor_manufacturing, EmbodiedBreakdown, PackagingSpec,
};
use hpcarbon_units::{CarbonMass, SiliconArea};

/// Model of one switch SKU.
#[derive(Debug, Clone, Copy)]
pub struct SwitchModel {
    /// Switch ASIC die area.
    pub asic_area: SiliconArea,
    /// ASIC process node.
    pub node: ProcessNode,
    /// Ports per switch.
    pub ports: u32,
    /// IC packages per port (PHY/retimer/transceiver electronics).
    pub ics_per_port: u32,
    /// Baseboard IC packages (management, power).
    pub board_ics: u32,
}

impl SwitchModel {
    /// A Slingshot/Rosetta-class 64-port switch estimate.
    pub fn slingshot_class() -> SwitchModel {
        SwitchModel {
            asic_area: SiliconArea::from_mm2(800.0),
            node: ProcessNode::N7,
            ports: 64,
            ics_per_port: 3,
            board_ics: 12,
        }
    }

    /// Embodied carbon of one switch (Eq. 3 ASIC + Eq. 5 packaging).
    pub fn embodied(&self) -> EmbodiedBreakdown {
        let mfg = processor_manufacturing(
            self.node.fab_densities(),
            self.asic_area,
            default_fab_yield(),
        );
        let ics = self.board_ics + self.ports * self.ics_per_port;
        EmbodiedBreakdown::from_parts(mfg, PackagingSpec::IcCount(ics))
    }
}

/// Model of one NIC SKU.
#[derive(Debug, Clone, Copy)]
pub struct NicModel {
    /// NIC ASIC die area.
    pub asic_area: SiliconArea,
    /// ASIC process node.
    pub node: ProcessNode,
    /// Board IC packages (PHY, memory, power).
    pub board_ics: u32,
}

impl NicModel {
    /// A Slingshot/Cassini-class 200 Gb/s NIC estimate.
    pub fn slingshot_class() -> NicModel {
        NicModel {
            asic_area: SiliconArea::from_mm2(220.0),
            node: ProcessNode::N7,
            board_ics: 8,
        }
    }

    /// Embodied carbon of one NIC.
    pub fn embodied(&self) -> EmbodiedBreakdown {
        let mfg = processor_manufacturing(
            self.node.fab_densities(),
            self.asic_area,
            default_fab_yield(),
        );
        EmbodiedBreakdown::from_parts(mfg, PackagingSpec::IcCount(self.board_ics))
    }
}

/// A system's interconnect fabric: switch and NIC counts.
#[derive(Debug, Clone, Copy)]
pub struct Fabric {
    /// Switch model and count.
    pub switch: SwitchModel,
    /// Number of switches.
    pub switches: u32,
    /// NIC model and count.
    pub nic: NicModel,
    /// Number of NICs.
    pub nics: u32,
}

impl Fabric {
    /// A dragonfly-class fabric sized for `nodes` endpoints with
    /// `nics_per_node` injection ports: the switch count follows the
    /// standard dragonfly sizing of roughly one switch per 16 endpoints
    /// at 64 ports (half the ports face endpoints, half the fabric —
    /// Frontier deploys on the order of 2,000 switches for ~9,400 nodes
    /// with 4 NICs each).
    pub fn dragonfly_for(nodes: u32, nics_per_node: u32) -> Fabric {
        let switch = SwitchModel::slingshot_class();
        let endpoints = nodes * nics_per_node;
        let switches = (endpoints * 2).div_ceil(switch.ports);
        Fabric {
            switch,
            switches,
            nic: NicModel::slingshot_class(),
            nics: endpoints,
        }
    }

    /// Total embodied carbon of the fabric.
    pub fn embodied(&self) -> EmbodiedBreakdown {
        self.switch.embodied().scaled(f64::from(self.switches))
            + self.nic.embodied().scaled(f64::from(self.nics))
    }
}

/// How much adding a fabric moves a system's composition: the fabric's
/// share of the extended total.
pub fn fabric_share(system_embodied: CarbonMass, fabric: &Fabric) -> f64 {
    let f = fabric.embodied().total();
    f / (f + system_embodied)
}

/// Sensitivity sweep: fabric share of the extended total as the per-port
/// IC estimate and ASIC area scale by `factors` (e.g. 0.5x to 2x),
/// answering "would better vendor data change the paper's conclusions?".
pub fn sensitivity(system_embodied: CarbonMass, base: &Fabric, factors: &[f64]) -> Vec<(f64, f64)> {
    factors
        .iter()
        .map(|k| {
            let scaled = Fabric {
                switch: SwitchModel {
                    asic_area: SiliconArea::from_mm2(base.switch.asic_area.as_mm2() * k),
                    ics_per_port: ((f64::from(base.switch.ics_per_port) * k).round() as u32).max(1),
                    ..base.switch
                },
                nic: NicModel {
                    asic_area: SiliconArea::from_mm2(base.nic.asic_area.as_mm2() * k),
                    ..base.nic
                },
                ..*base
            };
            (*k, fabric_share(system_embodied, &scaled))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::systems::HpcSystem;

    #[test]
    fn switch_embodied_magnitude() {
        let s = SwitchModel::slingshot_class().embodied();
        // An 800 mm2 N7 ASIC alone is ~18 kg; ports add ~30 kg packaging.
        assert!(
            s.total().as_kg() > 20.0 && s.total().as_kg() < 80.0,
            "{}",
            s.total()
        );
        assert!(s.packaging.as_kg() > s.manufacturing.as_kg() * 0.5);
    }

    #[test]
    fn nic_embodied_magnitude() {
        let n = NicModel::slingshot_class().embodied();
        assert!(
            n.total().as_kg() > 3.0 && n.total().as_kg() < 15.0,
            "{}",
            n.total()
        );
    }

    #[test]
    fn dragonfly_sizing() {
        let f = Fabric::dragonfly_for(9408, 4);
        assert_eq!(f.nics, 9408 * 4);
        // 2 ports per endpoint / 64 ports per switch.
        assert_eq!(f.switches, (9408 * 4 * 2_u32).div_ceil(64));
        assert!(f.embodied().total().as_t() > 100.0);
    }

    #[test]
    fn frontier_fabric_share_is_significant_but_not_dominant() {
        // The paper's suspicion confirmed: unreported interconnect carbon
        // is material (several %) but does not overturn Fig. 5's GPU
        // dominance.
        let frontier = HpcSystem::frontier();
        let fabric = Fabric::dragonfly_for(9_408, 4);
        let share = fabric_share(frontier.embodied_total(), &fabric);
        assert!((0.02..0.20).contains(&share), "fabric share {share}");
        let gpu_mass = frontier
            .embodied_by_class()
            .into_iter()
            .find(|(c, _)| *c == crate::embodied::ComponentClass::Gpu)
            .unwrap()
            .1;
        assert!(fabric.embodied().total() < gpu_mass);
    }

    #[test]
    fn sensitivity_is_monotone() {
        let frontier = HpcSystem::frontier();
        let fabric = Fabric::dragonfly_for(9_408, 4);
        let sweep = sensitivity(frontier.embodied_total(), &fabric, &[0.5, 1.0, 2.0, 4.0]);
        for w in sweep.windows(2) {
            assert!(w[1].1 > w[0].1, "share must grow with the estimate");
        }
        // Even at 4x the estimate, the fabric stays below a third.
        assert!(sweep.last().unwrap().1 < 0.33);
    }
}
