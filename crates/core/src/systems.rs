//! System inventories — the paper's Table 2 systems and Fig. 5 analysis.
//!
//! Component counts come from public system descriptions:
//!
//! - **Frontier** (OLCF): 9,408 nodes, each 1× EPYC 7763 ("Trento",
//!   modeled as 7763) + 4× MI250X + 512 GB DDR4; Orion file system with a
//!   ~695 PB HDD capacity tier and a ~75 PB NVMe performance tier.
//! - **LUMI** (CSC): LUMI-G 2,978 nodes (1× 7763 + 4× MI250X + 512 GB) and
//!   LUMI-C 1,536 nodes (2× 7763 + 256 GB); LUMI-P 80 PB HDD and LUMI-F
//!   ~7 PB flash.
//! - **Perlmutter** (NERSC): 1,536 GPU nodes (1× 7763 + 4× A100 + 256 GB)
//!   and 3,072 CPU nodes (2× 7763 + 512 GB); 35 PB all-flash Lustre
//!   (no HDD tier — the paper: "Perlmutter deploys an all-flash file
//!   system").
//!
//! The paper deliberately reports only *composition shares*, not absolute
//! magnitudes ("it is not our intent to showcase that one is better than
//! the other"); we follow suit in the regenerated Fig. 5 but expose the
//! absolute numbers for downstream modeling.

use crate::db::{PartId, PartSpec};
use crate::embodied::{ComponentClass, EmbodiedBreakdown};
use hpcarbon_units::{CarbonMass, Fraction};

/// A deployed HPC system: identity plus a bill of materials.
///
/// The inventory carries **resolved part specs**, not just ids: every
/// embodied number downstream (Fig. 5 compositions, the estimator's
/// layer 1, the what-if transforms) reads the spec stored in the
/// inventory. The built-in constructors store [`PartId::spec`] entries,
/// so nothing changes for them — but a system built from a plain-text
/// catalog carries the catalog's own numbers, which is what lets
/// `--catalog` actually drive estimates instead of merely relabeling
/// the hard-coded tables.
#[derive(Debug, Clone)]
pub struct HpcSystem {
    /// System name.
    pub name: &'static str,
    /// Facility location (Table 2's "Location" column).
    pub location: &'static str,
    /// Combined CPU+GPU core count (Table 2's "Cores" column).
    pub cores: u64,
    /// Deployment year (Table 2's "Year" column).
    pub year: u16,
    /// Bill of materials: resolved part spec and unit count.
    pub inventory: Vec<(PartSpec, u64)>,
}

/// Inventory-entry shorthand for the built-in constructors.
fn units(part: PartId, count: u64) -> (PartSpec, u64) {
    (part.spec(), count)
}

impl HpcSystem {
    /// The Frontier supercomputer (Oak Ridge, TN, US — TOP500 #1 in the
    /// paper's reference list, Nov 2022).
    pub fn frontier() -> HpcSystem {
        HpcSystem {
            name: "Frontier",
            location: "Oak Ridge, TN, United States",
            cores: 8_730_112,
            year: 2021,
            inventory: vec![
                units(PartId::CpuEpyc7763, 9_408),
                units(PartId::GpuMi250x, 9_408 * 4),
                // 512 GB/node as 8 × 64 GB DIMMs.
                units(PartId::Dram64gb, 9_408 * 8),
                // Orion: ~695 PB HDD capacity tier on 16 TB drives.
                units(PartId::Hdd16tb, 43_438),
                // Orion: ~75 PB NVMe performance tier on 3.2 TB drives.
                units(PartId::Ssd3_2tb, 23_438),
            ],
        }
    }

    /// The LUMI supercomputer (Kajaani, Finland — TOP500 #3).
    pub fn lumi() -> HpcSystem {
        HpcSystem {
            name: "LUMI",
            location: "Kajaani, Finland",
            cores: 2_220_288,
            year: 2022,
            inventory: vec![
                // LUMI-G: 2,978 nodes × (1 CPU + 4 MI250X + 8 DIMMs);
                // LUMI-C: 1,536 nodes × (2 CPUs + 4 DIMMs).
                units(PartId::CpuEpyc7763, 2_978 + 1_536 * 2),
                units(PartId::GpuMi250x, 2_978 * 4),
                units(PartId::Dram64gb, 2_978 * 8 + 1_536 * 4),
                // LUMI-P: 80 PB HDD.
                units(PartId::Hdd16tb, 5_000),
                // LUMI-F: ~7 PB flash.
                units(PartId::Ssd3_2tb, 2_188),
            ],
        }
    }

    /// The Perlmutter supercomputer (Berkeley, CA, US — TOP500 #8).
    pub fn perlmutter() -> HpcSystem {
        HpcSystem {
            name: "Perlmutter",
            location: "Berkeley, CA, United States",
            cores: 761_856,
            year: 2021,
            inventory: vec![
                // GPU partition: 1,536 nodes × (1 CPU + 4 A100 + 4 DIMMs);
                // CPU partition: 3,072 nodes × (2 CPUs + 8 DIMMs).
                units(PartId::CpuEpyc7763, 1_536 + 3_072 * 2),
                units(PartId::GpuA100Pcie40, 1_536 * 4),
                units(PartId::Dram64gb, 1_536 * 4 + 3_072 * 8),
                // 35 PB all-flash Lustre; no HDD tier.
                units(PartId::Ssd3_2tb, 10_938),
            ],
        }
    }

    /// The paper's three studied systems (Table 2 order).
    pub fn table2() -> Vec<HpcSystem> {
        vec![Self::frontier(), Self::lumi(), Self::perlmutter()]
    }

    /// Total embodied carbon of the full inventory.
    pub fn embodied_total(&self) -> CarbonMass {
        self.embodied_breakdown().total()
    }

    /// Manufacturing/packaging breakdown summed over the inventory.
    pub fn embodied_breakdown(&self) -> EmbodiedBreakdown {
        EmbodiedBreakdown::sum(
            self.inventory
                .iter()
                .map(|(spec, count)| spec.embodied().scaled(*count as f64)),
        )
    }

    /// Embodied carbon grouped by device class — the Fig. 5 ring chart.
    /// Classes missing from the inventory are reported with zero mass
    /// (e.g. Perlmutter's HDD slice).
    pub fn embodied_by_class(&self) -> Vec<(ComponentClass, CarbonMass)> {
        ComponentClass::ALL
            .iter()
            .map(|class| {
                let mass: CarbonMass = self
                    .inventory
                    .iter()
                    .filter(|(spec, _)| spec.class == *class)
                    .map(|(spec, count)| spec.embodied().total() * *count as f64)
                    .sum();
                (*class, mass)
            })
            .collect()
    }

    /// Per-class shares of the total embodied carbon (the Fig. 5 numbers).
    pub fn composition_shares(&self) -> Vec<(ComponentClass, Fraction)> {
        let total = self.embodied_total();
        self.embodied_by_class()
            .into_iter()
            .map(|(class, mass)| (class, Fraction::saturating(mass / total)))
            .collect()
    }

    /// Share of embodied carbon in memory + storage (DRAM+SSD+HDD) — the
    /// RQ4 headline ("approximately 60% of the carbon in Frontier and
    /// Perlmutter, and almost 50% in LUMI").
    pub fn memory_storage_share(&self) -> Fraction {
        let total = self.embodied_total();
        let ms: CarbonMass = self
            .embodied_by_class()
            .into_iter()
            .filter(|(class, _)| !class.is_compute())
            .map(|(_, mass)| mass)
            .sum();
        Fraction::saturating(ms / total)
    }

    /// Number of units of a given part in the inventory.
    pub fn count_of(&self, part: PartId) -> u64 {
        self.inventory
            .iter()
            .filter(|(spec, _)| spec.id == part)
            .map(|(_, c)| *c)
            .sum()
    }

    /// The inventory's resolved spec for `part`, if present.
    pub fn spec_of(&self, part: PartId) -> Option<&PartSpec> {
        self.inventory
            .iter()
            .find(|(spec, _)| spec.id == part)
            .map(|(spec, _)| spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn share(sys: &HpcSystem, class: ComponentClass) -> f64 {
        sys.composition_shares()
            .into_iter()
            .find(|(c, _)| *c == class)
            .expect("all classes present")
            .1
            .value()
    }

    #[test]
    fn shares_sum_to_one() {
        for sys in HpcSystem::table2() {
            let total: f64 = sys
                .composition_shares()
                .iter()
                .map(|(_, s)| s.value())
                .sum();
            assert!((total - 1.0).abs() < 1e-9, "{}: {total}", sys.name);
        }
    }

    #[test]
    fn frontier_composition_shape() {
        // Fig. 5 Frontier: GPU-dominant (36%), HDD second (30%),
        // DRAM (17%), SSD (12%), CPU smallest (5%).
        let f = HpcSystem::frontier();
        let gpu = share(&f, ComponentClass::Gpu);
        let cpu = share(&f, ComponentClass::Cpu);
        let dram = share(&f, ComponentClass::Dram);
        let ssd = share(&f, ComponentClass::Ssd);
        let hdd = share(&f, ComponentClass::Hdd);
        assert!(gpu > hdd && hdd > dram && dram > ssd && ssd > cpu);
        // "the embodied carbon in GPUs is more than 7× that of the CPUs".
        assert!(gpu / cpu > 7.0, "gpu/cpu = {}", gpu / cpu);
        // Memory+storage ≈ 60% ("approximately 60%"): accept 50-65%.
        let ms = f.memory_storage_share().value();
        assert!((0.50..=0.65).contains(&ms), "mem+storage share {ms}");
    }

    #[test]
    fn lumi_composition_shape() {
        // Fig. 5 LUMI: GPU 42% > DRAM 25% > HDD 15% > CPU 12% > SSD 6%.
        let l = HpcSystem::lumi();
        let gpu = share(&l, ComponentClass::Gpu);
        let cpu = share(&l, ComponentClass::Cpu);
        let dram = share(&l, ComponentClass::Dram);
        let ssd = share(&l, ComponentClass::Ssd);
        let hdd = share(&l, ComponentClass::Hdd);
        assert!(gpu > dram && dram > hdd && hdd > cpu && cpu > ssd);
        // "almost 50%" memory+storage: accept 35-50%.
        let ms = l.memory_storage_share().value();
        assert!((0.35..=0.50).contains(&ms), "mem+storage share {ms}");
    }

    #[test]
    fn perlmutter_composition_shape() {
        // Fig. 5 Perlmutter: no HDD; DRAM ≈ SSD ≈ 30%; CPU/GPU balanced
        // ("a more balanced embodied carbon distribution between CPUs and
        // GPUs").
        let p = HpcSystem::perlmutter();
        let gpu = share(&p, ComponentClass::Gpu);
        let cpu = share(&p, ComponentClass::Cpu);
        let dram = share(&p, ComponentClass::Dram);
        let ssd = share(&p, ComponentClass::Ssd);
        let hdd = share(&p, ComponentClass::Hdd);
        assert_eq!(hdd, 0.0);
        assert!((dram - 0.30).abs() < 0.05, "dram {dram}");
        assert!((ssd - 0.30).abs() < 0.05, "ssd {ssd}");
        // CPU/GPU balance: ratio within [0.6, 1.0].
        let balance = cpu / gpu;
        assert!((0.6..=1.0).contains(&balance), "cpu/gpu balance {balance}");
        // Memory+storage ≈ 60%: accept 55-70%.
        let ms = p.memory_storage_share().value();
        assert!((0.55..=0.70).contains(&ms), "mem+storage share {ms}");
    }

    #[test]
    fn gpus_exceed_cpus_in_every_system() {
        // Fig. 5: "the GPUs have consistently higher embodied carbon
        // footprint than CPUs in all three supercomputers".
        for sys in HpcSystem::table2() {
            assert!(
                share(&sys, ComponentClass::Gpu) > share(&sys, ComponentClass::Cpu),
                "{}",
                sys.name
            );
        }
    }

    #[test]
    fn storage_capacities_match_public_specs() {
        use hpcarbon_units::DataCapacity;
        let f = HpcSystem::frontier();
        let hdd_pb =
            f.count_of(PartId::Hdd16tb) as f64 * PartId::Hdd16tb.spec().capacity.unwrap().as_pb();
        assert!((hdd_pb - 695.0).abs() < 1.0, "Frontier HDD {hdd_pb} PB");
        let ssd_pb =
            f.count_of(PartId::Ssd3_2tb) as f64 * PartId::Ssd3_2tb.spec().capacity.unwrap().as_pb();
        assert!((ssd_pb - 75.0).abs() < 0.5, "Frontier SSD {ssd_pb} PB");
        let p = HpcSystem::perlmutter();
        let pm_ssd =
            p.count_of(PartId::Ssd3_2tb) as f64 * PartId::Ssd3_2tb.spec().capacity.unwrap().as_pb();
        assert!((pm_ssd - 35.0).abs() < 0.5, "Perlmutter SSD {pm_ssd} PB");
        // Sanity on the unit helper itself.
        assert_eq!(DataCapacity::from_pb(1.0).as_tb(), 1000.0);
    }

    #[test]
    fn table2_metadata() {
        let t = HpcSystem::table2();
        assert_eq!(t[0].name, "Frontier");
        assert_eq!(t[0].cores, 8_730_112);
        assert_eq!(t[0].year, 2021);
        assert_eq!(t[1].name, "LUMI");
        assert_eq!(t[1].year, 2022);
        assert_eq!(t[2].name, "Perlmutter");
        assert!(t[2].location.contains("Berkeley"));
    }

    #[test]
    fn embodied_magnitudes_are_plausible() {
        // Absolute scale sanity: thousands of tonnes for leadership systems.
        let f = HpcSystem::frontier().embodied_total();
        assert!(f.as_t() > 2_000.0 && f.as_t() < 6_000.0, "{}", f.as_t());
        let l = HpcSystem::lumi().embodied_total();
        let p = HpcSystem::perlmutter().embodied_total();
        assert!(f > l && l > p);
    }
}
