//! Operational carbon — Eq. 6 of the paper, plus PUE handling.
//!
//! `C_op = I_sys · E_op`, where `E_op` is "the product of the IC component
//! energy and the HPC system power-usage-effectiveness (PUE), which we set
//! to a constant across all systems we characterize".

use hpcarbon_units::{CarbonIntensity, CarbonMass, Energy, Power, TimeSpan};

/// Power-usage-effectiveness: facility energy divided by IT energy.
///
/// Always ≥ 1.0 (a PUE below one would mean the facility consumes less
/// than its IT load). The workspace default mirrors a modern, efficient
/// HPC facility.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Pue(f64);

impl Pue {
    /// The constant PUE used across all characterized systems (the paper
    /// fixes one constant; 1.2 is representative of recent HPC facilities).
    pub const DEFAULT: Pue = Pue(1.2);

    /// An idealized free-cooled facility (Frontier reports ≈1.03).
    pub const BEST_IN_CLASS: Pue = Pue(1.03);

    /// Creates a PUE value.
    ///
    /// # Panics
    /// If `value < 1.0` or not finite.
    pub fn new(value: f64) -> Pue {
        assert!(
            value.is_finite() && value >= 1.0,
            "PUE must be finite and >= 1.0, got {value}"
        );
        Pue(value)
    }

    /// The raw multiplier.
    pub fn value(self) -> f64 {
        self.0
    }

    /// Facility-level energy for a given IT-equipment energy.
    pub fn apply(self, it_energy: Energy) -> Energy {
        it_energy * self.0
    }

    /// Facility-level power for a given IT power draw.
    pub fn apply_power(self, it_power: Power) -> Power {
        it_power * self.0
    }
}

impl Default for Pue {
    fn default() -> Self {
        Pue::DEFAULT
    }
}

/// Eq. 6: operational carbon from IT energy, PUE and grid intensity.
pub fn operational_carbon(it_energy: Energy, pue: Pue, intensity: CarbonIntensity) -> CarbonMass {
    intensity * pue.apply(it_energy)
}

/// Convenience: operational carbon of a constant power draw over a period
/// at constant intensity.
pub fn operational_carbon_const_power(
    it_power: Power,
    duration: TimeSpan,
    pue: Pue,
    intensity: CarbonIntensity,
) -> CarbonMass {
    operational_carbon(it_power * duration, pue, intensity)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq6_with_pue() {
        // 100 kWh IT × PUE 1.2 × 200 g/kWh = 24 kg.
        let c = operational_carbon(
            Energy::from_kwh(100.0),
            Pue::new(1.2),
            CarbonIntensity::from_g_per_kwh(200.0),
        );
        assert!((c.as_kg() - 24.0).abs() < 1e-9);
    }

    #[test]
    fn unity_pue_is_identity() {
        let e = Energy::from_kwh(50.0);
        assert_eq!(Pue::new(1.0).apply(e).as_kwh(), 50.0);
    }

    #[test]
    #[should_panic(expected = "PUE must be finite and >= 1.0")]
    fn pue_below_one_rejected() {
        let _ = Pue::new(0.9);
    }

    #[test]
    fn const_power_form() {
        // 1 kW for one year at 20 g/kWh (hydro), PUE 1.2:
        // 8760 kWh × 1.2 × 20 g = 210.24 kg.
        let c = operational_carbon_const_power(
            Power::from_kw(1.0),
            TimeSpan::from_years(1.0),
            Pue::DEFAULT,
            CarbonIntensity::from_g_per_kwh(20.0),
        );
        assert!((c.as_kg() - 210.24).abs() < 1e-9);
    }

    #[test]
    fn higher_intensity_higher_carbon() {
        let e = Energy::from_kwh(10.0);
        let lo = operational_carbon(e, Pue::DEFAULT, CarbonIntensity::from_g_per_kwh(20.0));
        let hi = operational_carbon(e, Pue::DEFAULT, CarbonIntensity::from_g_per_kwh(800.0));
        // Coal vs hydro: 40× difference ("renewable … emit more than 20×
        // less CO2 than … coal").
        assert!((hi / lo - 40.0).abs() < 1e-9);
    }

    #[test]
    fn power_pue() {
        let p = Pue::new(1.5).apply_power(Power::from_kw(2.0));
        assert_eq!(p.as_kw(), 3.0);
    }
}
