//! Life-cycle totals — Eq. 1 of the paper and amortization helpers.
//!
//! `C_total = C_em + C_op`. The interesting structure is in how `C_op`
//! accumulates over the service life while `C_em` is paid up front: the
//! paper's RQ7/RQ8 upgrade analysis (implemented in `hpcarbon-upgrade`)
//! builds on the primitives here.

use crate::operational::{operational_carbon, Pue};
use hpcarbon_units::{CarbonIntensity, CarbonMass, Energy, Power, TimeSpan};

/// Eq. 1: total carbon footprint.
pub fn total_carbon(embodied: CarbonMass, operational: CarbonMass) -> CarbonMass {
    embodied + operational
}

/// A deployed asset's life-cycle carbon position: embodied carbon paid at
/// deployment plus operational carbon accrued at a given average IT power.
#[derive(Debug, Clone, Copy)]
pub struct LifecyclePosition {
    /// One-time embodied carbon.
    pub embodied: CarbonMass,
    /// Average IT power while deployed (already accounting for usage).
    pub avg_it_power: Power,
    /// Facility PUE.
    pub pue: Pue,
}

impl LifecyclePosition {
    /// Operational carbon accrued after `elapsed` at constant `intensity`.
    pub fn operational_after(&self, elapsed: TimeSpan, intensity: CarbonIntensity) -> CarbonMass {
        operational_carbon(self.avg_it_power * elapsed, self.pue, intensity)
    }

    /// Eq. 1 total after `elapsed` at constant `intensity`.
    pub fn total_after(&self, elapsed: TimeSpan, intensity: CarbonIntensity) -> CarbonMass {
        total_carbon(self.embodied, self.operational_after(elapsed, intensity))
    }

    /// Time until operational carbon equals embodied carbon — i.e. the
    /// point where the life-cycle footprint is half operational. At low
    /// grid intensity this stretches to years, which is the paper's core
    /// argument for why embodied carbon will dominate "greener" facilities.
    pub fn embodied_parity_time(&self, intensity: CarbonIntensity) -> Option<TimeSpan> {
        let hourly = self.operational_after(TimeSpan::from_hours(1.0), intensity);
        if hourly.as_g() <= 0.0 {
            return None; // never catches up (zero power or zero intensity)
        }
        Some(TimeSpan::from_hours(self.embodied / hourly))
    }

    /// Annual operational energy (facility level, after PUE).
    pub fn annual_facility_energy(&self) -> Energy {
        self.pue
            .apply(self.avg_it_power * TimeSpan::from_years(1.0))
    }
}

/// Full cradle-to-grave embodied stages.
///
/// The paper models production only, noting that "the transportation and
/// recycling of the component have been reported to be not dominant" and
/// "tend to be consistent across different generations". This type makes
/// the excluded stages explicit as documented fractions of production
/// carbon (industry LCAs put sea/air freight at ~1–4% and end-of-life
/// processing at ~1–5% for IT hardware), so sensitivity analyses can
/// verify the paper's exclusion is benign.
#[derive(Debug, Clone, Copy)]
pub struct LifecycleStages {
    /// Production (manufacturing + packaging) carbon — the paper's C_em.
    pub production: CarbonMass,
    /// Transportation as a fraction of production.
    pub transport_fraction: f64,
    /// End-of-life (recycling/disposal) as a fraction of production.
    pub recycling_fraction: f64,
}

impl LifecycleStages {
    /// The paper's accounting: production only.
    pub fn production_only(production: CarbonMass) -> LifecycleStages {
        LifecycleStages {
            production,
            transport_fraction: 0.0,
            recycling_fraction: 0.0,
        }
    }

    /// A representative full accounting: 2.5% transport + 3% end-of-life.
    pub fn with_typical_overheads(production: CarbonMass) -> LifecycleStages {
        LifecycleStages {
            production,
            transport_fraction: 0.025,
            recycling_fraction: 0.03,
        }
    }

    /// Transportation carbon.
    pub fn transport(&self) -> CarbonMass {
        self.production * self.transport_fraction
    }

    /// End-of-life carbon.
    pub fn recycling(&self) -> CarbonMass {
        self.production * self.recycling_fraction
    }

    /// Cradle-to-grave embodied total.
    pub fn total(&self) -> CarbonMass {
        self.production + self.transport() + self.recycling()
    }

    /// Relative error of the paper's production-only accounting against
    /// this full accounting (the exclusion's bias).
    pub fn production_only_bias(&self) -> f64 {
        1.0 - self.production / self.total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn position() -> LifecyclePosition {
        LifecyclePosition {
            embodied: CarbonMass::from_kg(100.0),
            avg_it_power: Power::from_kw(1.0),
            pue: Pue::new(1.0),
        }
    }

    #[test]
    fn eq1_is_a_sum() {
        let t = total_carbon(CarbonMass::from_kg(10.0), CarbonMass::from_kg(5.0));
        assert_eq!(t.as_kg(), 15.0);
    }

    #[test]
    fn operational_accrues_linearly() {
        let p = position();
        let i = CarbonIntensity::from_g_per_kwh(100.0);
        let one = p.operational_after(TimeSpan::from_years(1.0), i);
        let two = p.operational_after(TimeSpan::from_years(2.0), i);
        assert!((two.as_g() / one.as_g() - 2.0).abs() < 1e-12);
        // 1 kW × 8760 h × 100 g/kWh = 876 kg.
        assert!((one.as_kg() - 876.0).abs() < 1e-9);
    }

    #[test]
    fn parity_time_scales_inversely_with_intensity() {
        let p = position();
        let fast = p
            .embodied_parity_time(CarbonIntensity::from_g_per_kwh(400.0))
            .unwrap();
        let slow = p
            .embodied_parity_time(CarbonIntensity::from_g_per_kwh(20.0))
            .unwrap();
        assert!((slow.as_hours() / fast.as_hours() - 20.0).abs() < 1e-9);
        // At 400 g/kWh: 100 kg / (0.4 kg/h) = 250 h.
        assert!((fast.as_hours() - 250.0).abs() < 1e-9);
    }

    #[test]
    fn parity_never_reached_at_zero_intensity() {
        let p = position();
        assert!(p
            .embodied_parity_time(CarbonIntensity::from_g_per_kwh(0.0))
            .is_none());
    }

    #[test]
    fn total_after_includes_embodied() {
        let p = position();
        let i = CarbonIntensity::from_g_per_kwh(100.0);
        let t = p.total_after(TimeSpan::from_years(1.0), i);
        assert!((t.as_kg() - 976.0).abs() < 1e-9);
    }

    #[test]
    fn annual_energy_accounts_for_pue() {
        let p = LifecyclePosition {
            pue: Pue::new(1.5),
            ..position()
        };
        assert!((p.annual_facility_energy().as_mwh() - 13.14).abs() < 1e-9);
    }

    #[test]
    fn production_only_stages_match_paper_accounting() {
        let s = LifecycleStages::production_only(CarbonMass::from_kg(100.0));
        assert_eq!(s.total().as_kg(), 100.0);
        assert_eq!(s.transport().as_g(), 0.0);
        assert_eq!(s.production_only_bias(), 0.0);
    }

    #[test]
    fn typical_overheads_are_not_dominant() {
        // Validates the paper's exclusion: the bias from ignoring
        // transport + recycling stays in the low single digits.
        let s = LifecycleStages::with_typical_overheads(CarbonMass::from_kg(100.0));
        assert!((s.total().as_kg() - 105.5).abs() < 1e-9);
        assert!((s.transport().as_kg() - 2.5).abs() < 1e-9);
        assert!((s.recycling().as_kg() - 3.0).abs() < 1e-9);
        let bias = s.production_only_bias();
        assert!((0.04..0.06).contains(&bias), "bias {bias}");
    }

    #[test]
    fn stage_totals_compose() {
        let s = LifecycleStages {
            production: CarbonMass::from_kg(40.0),
            transport_fraction: 0.1,
            recycling_fraction: 0.05,
        };
        assert!(
            (s.total() - (s.production + s.transport() + s.recycling()))
                .as_g()
                .abs()
                < 1e-9
        );
    }
}
