//! Multi-criteria RFP scoring — the paper's procurement implication as a
//! decision tool.
//!
//! > "Carbon-conscious HPC facilities should explicitly request the
//! > embodied carbon specifications for CPUs and other computer
//! > accelerators from the chip vendor as a part of their request for
//! > proposal (RFP), in addition to performance benchmarking numbers.
//! > Performance benchmarking alone is not sufficient." (paper, RQ1)
//!
//! A [`RfpWeights`] profile blends three normalized criteria — delivered
//! performance, embodied carbon per performance, and operational power per
//! performance — into a single score per candidate, so a procurement team
//! can rank accelerators under an explicit carbon policy instead of a
//! FLOPS-only shortlist.

use crate::db::PartId;
use hpcarbon_units::Fraction;

/// Criterion weights (will be normalized to sum to 1).
#[derive(Debug, Clone, Copy)]
pub struct RfpWeights {
    /// Weight on raw FP64 performance (more is better).
    pub performance: f64,
    /// Weight on embodied carbon per TFLOPS (less is better).
    pub embodied_per_perf: f64,
    /// Weight on TDP per TFLOPS (less is better — operational proxy).
    pub power_per_perf: f64,
}

impl RfpWeights {
    /// The pre-carbon-era profile: performance only.
    pub fn performance_only() -> RfpWeights {
        RfpWeights {
            performance: 1.0,
            embodied_per_perf: 0.0,
            power_per_perf: 0.0,
        }
    }

    /// A carbon-conscious profile: the paper's recommendation.
    pub fn carbon_conscious() -> RfpWeights {
        RfpWeights {
            performance: 0.4,
            embodied_per_perf: 0.35,
            power_per_perf: 0.25,
        }
    }

    fn normalized(self) -> RfpWeights {
        let total = self.performance + self.embodied_per_perf + self.power_per_perf;
        assert!(total > 0.0, "weights must not all be zero");
        RfpWeights {
            performance: self.performance / total,
            embodied_per_perf: self.embodied_per_perf / total,
            power_per_perf: self.power_per_perf / total,
        }
    }
}

/// One scored candidate.
#[derive(Debug, Clone)]
pub struct RfpScore {
    /// Candidate part.
    pub part: PartId,
    /// Blended score in [0, 1] (higher is better).
    pub score: Fraction,
    /// Normalized performance criterion.
    pub performance: f64,
    /// Normalized embodied-efficiency criterion (1 = best in field).
    pub embodied_efficiency: f64,
    /// Normalized power-efficiency criterion (1 = best in field).
    pub power_efficiency: f64,
}

/// Scores and ranks processor candidates. Criteria are min-max normalized
/// within the candidate field; "less is better" criteria are inverted so 1
/// is always best.
///
/// # Panics
/// If fewer than two candidates are given, or a candidate lacks an FP64
/// rating or TDP (only processors are rankable this way).
pub fn rank(candidates: &[PartId], weights: RfpWeights) -> Vec<RfpScore> {
    assert!(candidates.len() >= 2, "need at least two candidates");
    let w = weights.normalized();
    let perf: Vec<f64> = candidates
        .iter()
        .map(|p| {
            p.spec()
                .fp64_peak
                // lint: allow(panic-in-library) -- documented "# Panics" contract: rank() only accepts processor candidates, which all declare FP64 ratings
                .expect("RFP candidates must have FP64 ratings")
                .as_tflops()
        })
        .collect();
    let em_per: Vec<f64> = candidates
        .iter()
        // lint: allow(panic-in-library) -- same documented contract: embodied_per_tflops is Some whenever fp64_peak is, checked just above
        .map(|p| p.spec().embodied_per_tflops().expect("has FP64"))
        .collect();
    let pw_per: Vec<f64> = candidates
        .iter()
        .zip(&perf)
        // lint: allow(panic-in-library) -- same documented contract: every processor PartSpec in the built-in table declares a TDP
        .map(|(p, tf)| p.spec().tdp.expect("candidates declare TDP").as_w() / tf)
        .collect();

    let norm_hi = |xs: &[f64], x: f64| {
        let (lo, hi) = bounds(xs);
        if hi > lo {
            (x - lo) / (hi - lo)
        } else {
            1.0
        }
    };
    let norm_lo = |xs: &[f64], x: f64| 1.0 - norm_hi(xs, x);

    let mut scores: Vec<RfpScore> = candidates
        .iter()
        .enumerate()
        .map(|(i, part)| {
            let p = norm_hi(&perf, perf[i]);
            let e = norm_lo(&em_per, em_per[i]);
            let q = norm_lo(&pw_per, pw_per[i]);
            RfpScore {
                part: *part,
                score: Fraction::saturating(
                    w.performance * p + w.embodied_per_perf * e + w.power_per_perf * q,
                ),
                performance: p,
                embodied_efficiency: e,
                power_efficiency: q,
            }
        })
        .collect();
    // `Fraction` values are finite by construction, so `total_cmp` on the
    // raw values orders exactly as `partial_cmp` did — minus the panic arm.
    scores.sort_by(|a, b| b.score.value().total_cmp(&a.score.value()));
    scores
}

fn bounds(xs: &[f64]) -> (f64, f64) {
    let lo = xs.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    (lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gpu_field() -> Vec<PartId> {
        vec![
            PartId::GpuMi250x,
            PartId::GpuA100Pcie40,
            PartId::GpuV100Sxm2_32,
            PartId::GpuP100Pcie16,
        ]
    }

    #[test]
    fn performance_only_ranks_by_flops() {
        let ranked = rank(&gpu_field(), RfpWeights::performance_only());
        assert_eq!(ranked[0].part, PartId::GpuMi250x);
        let scores: Vec<f64> = ranked.iter().map(|s| s.score.value()).collect();
        for w in scores.windows(2) {
            assert!(w[0] >= w[1]);
        }
        // Winner gets a perfect performance criterion.
        assert_eq!(ranked[0].performance, 1.0);
    }

    #[test]
    fn carbon_conscious_still_prefers_mi250x() {
        // MI250X dominates: best absolute FP64 AND best embodied per
        // TFLOPS — carbon awareness only strengthens its case.
        let ranked = rank(&gpu_field(), RfpWeights::carbon_conscious());
        assert_eq!(ranked[0].part, PartId::GpuMi250x);
        assert!(ranked[0].embodied_efficiency > 0.9);
    }

    #[test]
    fn carbon_weighting_reorders_cpu_field() {
        // CPU field: Xeon 6240R has the lowest absolute embodied but the
        // worst embodied-per-TFLOPS; EPYC 7763 has the most FLOPS. Under
        // performance-only the 7763 wins; adding carbon criteria must not
        // promote the Xeon above it (it is worse on every axis but
        // absolute embodied, which is not a criterion).
        let cpus = vec![
            PartId::CpuEpyc7763,
            PartId::CpuEpyc7742,
            PartId::CpuXeonGold6240r,
        ];
        let perf_only = rank(&cpus, RfpWeights::performance_only());
        assert_eq!(perf_only[0].part, PartId::CpuEpyc7763);
        let carbon = rank(&cpus, RfpWeights::carbon_conscious());
        assert_eq!(carbon[0].part, PartId::CpuEpyc7763);
        assert_eq!(carbon[2].part, PartId::CpuXeonGold6240r);
    }

    #[test]
    fn scores_live_in_unit_interval() {
        for weights in [
            RfpWeights::performance_only(),
            RfpWeights::carbon_conscious(),
        ] {
            for s in rank(&gpu_field(), weights) {
                assert!((0.0..=1.0).contains(&s.score.value()));
                assert!((0.0..=1.0).contains(&s.performance));
                assert!((0.0..=1.0).contains(&s.embodied_efficiency));
                assert!((0.0..=1.0).contains(&s.power_efficiency));
            }
        }
    }

    #[test]
    fn weights_are_normalized() {
        // Scaling all weights by a constant changes nothing.
        let a = rank(
            &gpu_field(),
            RfpWeights {
                performance: 1.0,
                embodied_per_perf: 1.0,
                power_per_perf: 1.0,
            },
        );
        let b = rank(
            &gpu_field(),
            RfpWeights {
                performance: 10.0,
                embodied_per_perf: 10.0,
                power_per_perf: 10.0,
            },
        );
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.part, y.part);
            assert!((x.score.value() - y.score.value()).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "at least two candidates")]
    fn needs_a_field() {
        let _ = rank(&[PartId::GpuA100Pcie40], RfpWeights::carbon_conscious());
    }
}
