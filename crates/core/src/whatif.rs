//! What-if composition analysis for system inventories.
//!
//! Fig. 5's discussion contrasts Frontier's HDD-heavy Orion with
//! Perlmutter's all-flash file system. This module makes such architecture
//! questions answerable quantitatively: take a system, apply a
//! transformation (swap the HDD tier for flash at equal capacity, resize
//! memory, change the GPU count per node), and compare embodied
//! compositions before and after.

use crate::db::{PartId, PartSpec};
use crate::embodied::ComponentClass;
use crate::systems::HpcSystem;
use hpcarbon_units::CarbonMass;

/// Why a what-if transformation cannot be applied to a system.
///
/// Sweep engines batch thousands of (system, transformation) combinations;
/// an inapplicable combination (e.g. "swap the HDD tier" on all-flash
/// Perlmutter) must fail soft as an `Err` item rather than abort the whole
/// batch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WhatIfError {
    /// The part does not declare a storage capacity, so "equal capacity"
    /// is undefined.
    MissingCapacity(PartId),
    /// The system holds no units of the source part.
    NoSourceUnits(PartId),
    /// The scale factor is negative, NaN or infinite.
    InvalidFactor(f64),
}

impl std::fmt::Display for WhatIfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WhatIfError::MissingCapacity(p) => {
                write!(f, "part {p:?} declares no capacity")
            }
            WhatIfError::NoSourceUnits(p) => write!(f, "system holds no {p:?}"),
            WhatIfError::InvalidFactor(x) => write!(f, "scale factor {x} is not finite and >= 0"),
        }
    }
}

impl std::error::Error for WhatIfError {}

/// A derived system plus the delta against its baseline.
#[derive(Debug, Clone)]
pub struct WhatIf {
    /// The transformed system.
    pub system: HpcSystem,
    /// Embodied total before.
    pub before: CarbonMass,
    /// Embodied total after.
    pub after: CarbonMass,
}

impl WhatIf {
    /// Absolute embodied change (positive = the variant embodies more).
    pub fn delta(&self) -> CarbonMass {
        self.after - self.before
    }

    /// Relative embodied change.
    pub fn relative_change(&self) -> f64 {
        self.delta() / self.before
    }
}

/// Replaces every unit of `from` with enough units of `to` to preserve
/// total capacity (both parts must declare capacities). Counts round up —
/// you cannot buy fractional drives.
///
/// The `from` capacity is read from the system's own inventory spec (so a
/// catalog-built system swaps at its catalog capacity); the replacement is
/// a resolved [`PartSpec`] so catalogs can supply their own flash numbers.
///
/// # Errors
/// If either part lacks a capacity, or the system holds no `from` units.
pub fn swap_storage_tier(
    base: &HpcSystem,
    from: PartId,
    to: PartSpec,
) -> Result<WhatIf, WhatIfError> {
    let count_from = base.count_of(from);
    if count_from == 0 {
        return Err(WhatIfError::NoSourceUnits(from));
    }
    let from_spec = base.spec_of(from).ok_or(WhatIfError::NoSourceUnits(from))?;
    let from_cap = from_spec
        .capacity
        .ok_or(WhatIfError::MissingCapacity(from))?;
    let to_cap = to.capacity.ok_or(WhatIfError::MissingCapacity(to.id))?;
    let total_gb = from_cap.as_gb() * count_from as f64;
    let count_to = (total_gb / to_cap.as_gb()).ceil() as u64;

    let mut inventory: Vec<(PartSpec, u64)> = base
        .inventory
        .iter()
        .filter(|(p, _)| p.id != from)
        .cloned()
        .collect();
    inventory.push((to, count_to));
    let system = HpcSystem {
        name: base.name,
        location: base.location,
        cores: base.cores,
        year: base.year,
        inventory,
    };
    Ok(WhatIf {
        before: base.embodied_total(),
        after: system.embodied_total(),
        system,
    })
}

/// Scales the count of every part of `class` by `factor` (rounding to the
/// nearest unit) — e.g. "what if we doubled memory per node?".
///
/// # Errors
/// If `factor` is negative or not finite.
pub fn scale_class(
    base: &HpcSystem,
    class: ComponentClass,
    factor: f64,
) -> Result<WhatIf, WhatIfError> {
    if !(factor >= 0.0 && factor.is_finite()) {
        return Err(WhatIfError::InvalidFactor(factor));
    }
    let inventory: Vec<(PartSpec, u64)> = base
        .inventory
        .iter()
        .map(|(p, c)| {
            if p.class == class {
                (*p, (*c as f64 * factor).round() as u64)
            } else {
                (*p, *c)
            }
        })
        .collect();
    let system = HpcSystem {
        name: base.name,
        location: base.location,
        cores: base.cores,
        year: base.year,
        inventory,
    };
    Ok(WhatIf {
        before: base.embodied_total(),
        after: system.embodied_total(),
        system,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_flash_frontier_costs_embodied_carbon() {
        // The Fig. 5 discussion, quantified: converting Frontier's 695 PB
        // HDD tier to 3.2 TB flash at equal capacity REPLACES cheap
        // gCO2/GB storage (1.33) with expensive flash (6.21) — an all-
        // flash Orion would embody several times more storage carbon.
        let frontier = HpcSystem::frontier();
        let w = swap_storage_tier(&frontier, PartId::Hdd16tb, PartId::Ssd3_2tb.spec()).unwrap();
        assert!(w.after > w.before);

        // 43,438 HDDs x 16 TB = 695,008,000 GB -> 217,190 SSDs at 3.2 TB.
        assert_eq!(w.system.count_of(PartId::Ssd3_2tb), 23_438 + 217_190);
        assert_eq!(w.system.count_of(PartId::Hdd16tb), 0);
        // The composition flips: SSD becomes the dominant class.
        let shares = w.system.composition_shares();
        let ssd = shares
            .iter()
            .find(|(c, _)| *c == ComponentClass::Ssd)
            .unwrap()
            .1;
        let gpu = shares
            .iter()
            .find(|(c, _)| *c == ComponentClass::Gpu)
            .unwrap()
            .1;
        assert!(ssd > gpu, "ssd {ssd} vs gpu {gpu}");
        assert!(w.relative_change() > 0.5, "{}", w.relative_change());
    }

    #[test]
    fn capacity_is_preserved_up_to_rounding() {
        let frontier = HpcSystem::frontier();
        let w = swap_storage_tier(&frontier, PartId::Hdd16tb, PartId::Ssd3_2tb.spec()).unwrap();
        let before_gb = PartId::Hdd16tb.spec().capacity.unwrap().as_gb()
            * frontier.count_of(PartId::Hdd16tb) as f64;
        let after_gb = PartId::Ssd3_2tb.spec().capacity.unwrap().as_gb()
            * (w.system.count_of(PartId::Ssd3_2tb) - frontier.count_of(PartId::Ssd3_2tb)) as f64;
        assert!(after_gb >= before_gb);
        assert!(after_gb < before_gb + PartId::Ssd3_2tb.spec().capacity.unwrap().as_gb() * 2.0);
    }

    #[test]
    fn doubling_dram_raises_its_share() {
        let p = HpcSystem::perlmutter();
        let before_share = p
            .composition_shares()
            .into_iter()
            .find(|(c, _)| *c == ComponentClass::Dram)
            .unwrap()
            .1;
        let w = scale_class(&p, ComponentClass::Dram, 2.0).unwrap();
        let after_share = w
            .system
            .composition_shares()
            .into_iter()
            .find(|(c, _)| *c == ComponentClass::Dram)
            .unwrap()
            .1;
        assert!(after_share > before_share);
        assert!(w.delta().as_t() > 100.0);
        // The paper's RQ4 implication: memory expansion carries a hidden
        // carbon cost comparable to compute purchases.
    }

    #[test]
    fn zero_scale_removes_the_class() {
        let l = HpcSystem::lumi();
        let w = scale_class(&l, ComponentClass::Hdd, 0.0).unwrap();
        let hdd = w
            .system
            .composition_shares()
            .into_iter()
            .find(|(c, _)| *c == ComponentClass::Hdd)
            .unwrap()
            .1;
        assert_eq!(hdd.value(), 0.0);
        assert!(w.after < w.before);
    }

    #[test]
    fn identity_scale_changes_nothing() {
        let f = HpcSystem::frontier();
        let w = scale_class(&f, ComponentClass::Gpu, 1.0).unwrap();
        assert!((w.delta().as_g()).abs() < 1e-9);
        assert!(w.relative_change().abs() < 1e-12);
    }

    #[test]
    fn swap_requires_presence() {
        let p = HpcSystem::perlmutter(); // all-flash, no HDD
        let e = swap_storage_tier(&p, PartId::Hdd16tb, PartId::Ssd3_2tb.spec()).unwrap_err();
        assert_eq!(e, WhatIfError::NoSourceUnits(PartId::Hdd16tb));
        assert!(e.to_string().contains("holds no"));
    }

    #[test]
    fn swap_requires_capacities() {
        let f = HpcSystem::frontier();
        let e = swap_storage_tier(&f, PartId::Hdd16tb, PartId::CpuEpyc7763.spec()).unwrap_err();
        assert_eq!(e, WhatIfError::MissingCapacity(PartId::CpuEpyc7763));
    }

    #[test]
    fn scale_rejects_non_finite_factors() {
        let f = HpcSystem::frontier();
        for bad in [-1.0, f64::NAN, f64::INFINITY] {
            let e = scale_class(&f, ComponentClass::Gpu, bad).unwrap_err();
            assert!(matches!(e, WhatIfError::InvalidFactor(_)), "{bad}");
        }
    }
}
