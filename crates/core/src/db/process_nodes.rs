//! Per-lithography fab emission densities (the FPA/GPA/MPA terms of Eq. 3).
//!
//! The ACT model (Gupta et al., ISCA'22), which the paper follows, reports
//! that per-area fab emissions *grow* toward newer nodes: EUV lithography
//! at N7/N6 roughly doubles the fab energy per cm² relative to N14/N16.
//! The absolute magnitudes below (≈1.2–2.1 kgCO₂/cm² pre-yield) sit inside
//! the ranges reported by ACT and imec's published LCA studies, and are
//! calibrated so that the Table 1 parts land on the paper's Fig. 1 relative
//! magnitudes (e.g. MI250X ≈ 3.4× the lowest CPU, every GPU above every
//! CPU). See DESIGN.md §1/§5.

use crate::embodied::FabDensities;
use hpcarbon_units::CarbonAreaDensity;

/// Silicon process nodes appearing in the catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProcessNode {
    /// TSMC N6 (MI250X GCDs).
    N6,
    /// TSMC N7 (A100, EPYC Rome/Milan compute dies).
    N7,
    /// TSMC 12FFN (V100) and GlobalFoundries 12/14 (EPYC IO dies).
    N12,
    /// Intel 14 nm (Cascade Lake, Broadwell).
    N14,
    /// TSMC 16FF (P100).
    N16,
}

impl ProcessNode {
    /// The FPA/GPA/MPA densities for this node.
    ///
    /// FPA dominates and scales with lithography complexity (EUV double
    /// patterning); GPA scales similarly; MPA (raw materials) is roughly
    /// node-independent.
    ///
    /// ```
    /// use hpcarbon_core::db::ProcessNode;
    ///
    /// // The ACT trend: EUV nodes emit more per cm² than older ones.
    /// let n7 = ProcessNode::N7.fab_densities();
    /// let n16 = ProcessNode::N16.fab_densities();
    /// assert!(n7.fpa.as_g_per_cm2() > n16.fpa.as_g_per_cm2());
    /// ```
    pub fn fab_densities(self) -> FabDensities {
        let (fpa, gpa, mpa) = match self {
            ProcessNode::N6 => (1380.0, 280.0, 470.0),
            ProcessNode::N7 => (1280.0, 250.0, 470.0),
            ProcessNode::N12 => (750.0, 150.0, 450.0),
            ProcessNode::N14 => (700.0, 140.0, 450.0),
            ProcessNode::N16 => (650.0, 130.0, 450.0),
        };
        FabDensities {
            fpa: CarbonAreaDensity::from_g_per_cm2(fpa),
            gpa: CarbonAreaDensity::from_g_per_cm2(gpa),
            mpa: CarbonAreaDensity::from_g_per_cm2(mpa),
        }
    }

    /// Marketing name of the node.
    pub fn label(self) -> &'static str {
        match self {
            ProcessNode::N6 => "6nm",
            ProcessNode::N7 => "7nm",
            ProcessNode::N12 => "12nm",
            ProcessNode::N14 => "14nm",
            ProcessNode::N16 => "16nm",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn newer_nodes_emit_more_per_area() {
        // The ACT-reported trend: per-area fab carbon increases toward
        // advanced nodes.
        let order = [
            ProcessNode::N16,
            ProcessNode::N14,
            ProcessNode::N12,
            ProcessNode::N7,
            ProcessNode::N6,
        ];
        let totals: Vec<f64> = order
            .iter()
            .map(|n| n.fab_densities().total().as_g_per_cm2())
            .collect();
        for w in totals.windows(2) {
            assert!(w[0] < w[1], "density must increase toward newer nodes");
        }
    }

    #[test]
    fn densities_in_act_range() {
        // Pre-yield totals should sit in the ~1-2.5 kg/cm2 range reported
        // across ACT and imec LCA studies.
        for n in [
            ProcessNode::N6,
            ProcessNode::N7,
            ProcessNode::N12,
            ProcessNode::N14,
            ProcessNode::N16,
        ] {
            let t = n.fab_densities().total().as_g_per_cm2();
            assert!((1000.0..2500.0).contains(&t), "{}: {t}", n.label());
        }
    }

    #[test]
    fn mpa_is_node_independent() {
        let mpa7 = ProcessNode::N7.fab_densities().mpa;
        let mpa14 = ProcessNode::N14.fab_densities().mpa;
        assert!((mpa7.as_g_per_cm2() - 470.0).abs() < 1e-9);
        assert!((mpa14.as_g_per_cm2() - 450.0).abs() < 1e-9);
    }

    #[test]
    fn labels() {
        assert_eq!(ProcessNode::N7.label(), "7nm");
        assert_eq!(ProcessNode::N16.label(), "16nm");
    }
}
