//! The component database: every part modeled by the paper (Table 1) plus
//! the node-generation parts of Table 5, with the inputs the embodied model
//! needs and the performance/power figures the operational model needs.
//!
//! ## Data provenance
//!
//! The paper describes its methodology ("public product datasheets and
//! sustainability reports") but does not publish the per-part inputs it
//! used. Every constant in this database is therefore either
//!
//! 1. a publicly reported figure (die areas, TFLOPS, capacities, TDPs,
//!    EPC values — the paper states EPC(DRAM)=65, EPC(SSD)=6.21,
//!    EPC(HDD)=1.33 gCO₂/GB explicitly), or
//! 2. a calibrated estimate within publicly reported ranges (fab densities
//!    per process node, IC counts), chosen so the *relative* results of
//!    Figs. 1–3 and 5 reproduce — each such constant is documented at its
//!    definition.
//!
//! Swapping in real vendor RFP data is a one-file change — or no code
//! change at all: the `hpcarbon-catalog` crate loads this same data
//! model from plain-text entity files (see `docs/CATALOG.md`), and
//! `hpcarbon catalog export` round-trips these tables bit for bit.
//!
//! ```
//! use hpcarbon_core::db::{all_parts, PartId};
//!
//! // Table 1 + Table 5: 13 parts, each with a full embodied breakdown.
//! assert_eq!(all_parts().len(), 13);
//! let a100 = PartId::GpuA100Pcie40.spec();
//! let embodied = a100.embodied();
//! assert!(embodied.total().as_kg() > 10.0); // Eq. 2 for one A100
//! assert!(embodied.packaging_share().percent() > 0.0); // Eq. 5 share
//! ```

mod parts;
mod process_nodes;

pub use parts::{EmbodiedInputs, PartId, PartSpec, Vendor};
pub use process_nodes::ProcessNode;

use crate::embodied::ComponentClass;

/// All parts of the paper's Table 1 (the embodied-carbon study set), in the
/// table's order.
pub const TABLE1_PARTS: [PartId; 9] = [
    PartId::GpuA100Pcie40,
    PartId::GpuMi250x,
    PartId::GpuV100Sxm2_32,
    PartId::CpuEpyc7763,
    PartId::CpuEpyc7742,
    PartId::CpuXeonGold6240r,
    PartId::Dram64gb,
    PartId::Ssd3_2tb,
    PartId::Hdd16tb,
];

/// Parts that only appear in the node-generation study (Table 5).
pub const TABLE5_EXTRA_PARTS: [PartId; 4] = [
    PartId::GpuP100Pcie16,
    PartId::CpuXeonE5_2680v4,
    PartId::CpuEpyc7542,
    PartId::Dram32gb,
];

/// Every part in the catalog.
pub fn all_parts() -> Vec<PartId> {
    let mut v = TABLE1_PARTS.to_vec();
    v.extend_from_slice(&TABLE5_EXTRA_PARTS);
    v
}

/// All catalog parts of a given class.
pub fn parts_of_class(class: ComponentClass) -> Vec<PartId> {
    all_parts()
        .into_iter()
        .filter(|p| p.spec().class == class)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_nine_parts() {
        assert_eq!(TABLE1_PARTS.len(), 9);
        // 3 GPUs, 3 CPUs, DRAM, SSD, HDD — as in the paper's Table 1.
        let gpus = TABLE1_PARTS
            .iter()
            .filter(|p| p.spec().class == ComponentClass::Gpu)
            .count();
        let cpus = TABLE1_PARTS
            .iter()
            .filter(|p| p.spec().class == ComponentClass::Cpu)
            .count();
        assert_eq!(gpus, 3);
        assert_eq!(cpus, 3);
    }

    #[test]
    fn catalog_is_disjoint_and_complete() {
        let all = all_parts();
        assert_eq!(all.len(), 13);
        let mut names: Vec<&str> = all.iter().map(|p| p.spec().part_name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 13, "duplicate part names in catalog");
    }

    #[test]
    fn class_filters() {
        assert_eq!(parts_of_class(ComponentClass::Gpu).len(), 4);
        assert_eq!(parts_of_class(ComponentClass::Cpu).len(), 5);
        assert_eq!(parts_of_class(ComponentClass::Dram).len(), 2);
        assert_eq!(parts_of_class(ComponentClass::Ssd).len(), 1);
        assert_eq!(parts_of_class(ComponentClass::Hdd).len(), 1);
    }
}
