//! The part catalog: Table 1 + Table 5 components with model inputs.

use crate::db::ProcessNode;
use crate::embodied::{
    default_fab_yield, memory_manufacturing, processor_manufacturing, ComponentClass,
    EmbodiedBreakdown, FabDensities, PackagingSpec,
};
use hpcarbon_units::{
    Bandwidth, CarbonMass, CarbonPerCapacity, ComputeRate, DataCapacity, Power, SiliconArea,
};

/// Component vendors appearing in the catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Vendor {
    Nvidia,
    Amd,
    Intel,
    SkHynix,
    Seagate,
}

impl Vendor {
    /// Display name.
    pub fn label(self) -> &'static str {
        match self {
            Vendor::Nvidia => "NVIDIA",
            Vendor::Amd => "AMD",
            Vendor::Intel => "Intel",
            Vendor::SkHynix => "SK Hynix",
            Vendor::Seagate => "Seagate",
        }
    }
}

/// The embodied-model inputs of a part: Eq. 3 inputs for processors,
/// Eq. 4 inputs for memory/storage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EmbodiedInputs {
    /// A logic die (or chiplet complex) fabbed on `node` with total
    /// carbon-relevant area `die_area` (Eq. 3).
    Processor {
        /// Carbon-relevant die area.
        die_area: SiliconArea,
        /// Process node (identity/label; Table 1's "Process Node" column).
        node: ProcessNode,
        /// The FPA/GPA/MPA densities Eq. 3 actually runs with. For the
        /// built-in catalog these are [`ProcessNode::fab_densities`];
        /// a plain-text catalog resolves them from its own node entities,
        /// so editing a node file changes every part fabbed on it.
        densities: FabDensities,
    },
    /// A memory or storage device with vendor-reported emission-per-capacity
    /// (Eq. 4).
    MemoryStorage {
        /// Vendor EPC (gCO₂/GB).
        epc: CarbonPerCapacity,
    },
}

impl EmbodiedInputs {
    /// Eq. 3 inputs for a die fabbed on `node`, with the densities
    /// resolved from the built-in node table — the constructor every
    /// hard-coded Table 1 entry uses.
    ///
    /// ```
    /// use hpcarbon_core::db::{EmbodiedInputs, ProcessNode};
    /// use hpcarbon_units::SiliconArea;
    ///
    /// let inputs = EmbodiedInputs::on_node(SiliconArea::from_mm2(826.0), ProcessNode::N7);
    /// let EmbodiedInputs::Processor { densities, .. } = inputs else { unreachable!() };
    /// assert_eq!(densities, ProcessNode::N7.fab_densities());
    /// ```
    pub fn on_node(die_area: SiliconArea, node: ProcessNode) -> EmbodiedInputs {
        EmbodiedInputs::Processor {
            die_area,
            node,
            densities: node.fab_densities(),
        }
    }
}

/// A catalog entry: identity, embodied-model inputs and performance/power
/// datasheet figures.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartSpec {
    /// Catalog identifier.
    pub id: PartId,
    /// Device class (GPU/CPU/DRAM/SSD/HDD).
    pub class: ComponentClass,
    /// The "Component" column of the paper's Table 1 (short name).
    pub component: &'static str,
    /// The "Part Name" column of the paper's Table 1 (full SKU).
    pub part_name: &'static str,
    /// Vendor.
    pub vendor: Vendor,
    /// Release (year, month) per Table 1.
    pub release: (u16, u8),
    /// Embodied-model inputs.
    pub embodied_inputs: EmbodiedInputs,
    /// Packaging model (Eq. 5 IC count, or ratio for storage).
    pub packaging: PackagingSpec,
    /// Device capacity for memory/storage parts.
    pub capacity: Option<DataCapacity>,
    /// Theoretical peak FP64 rate (Fig. 1's normalization basis).
    pub fp64_peak: Option<ComputeRate>,
    /// Sustained bandwidth (Fig. 2's normalization basis): HBM bandwidth
    /// for GPUs, module bandwidth for DRAM, interface/sustained transfer
    /// rate for SSD/HDD.
    pub bandwidth: Option<Bandwidth>,
    /// Board/package power limit.
    pub tdp: Option<Power>,
    /// Idle power draw.
    pub idle_power: Option<Power>,
}

impl PartSpec {
    /// Eq. 3 / Eq. 4 manufacturing carbon for one unit.
    pub fn manufacturing(&self) -> CarbonMass {
        match self.embodied_inputs {
            EmbodiedInputs::Processor {
                die_area,
                node: _,
                densities,
            } => processor_manufacturing(densities, die_area, default_fab_yield()),
            EmbodiedInputs::MemoryStorage { epc } => {
                let cap = self
                    .capacity
                    // lint: allow(panic-in-library) -- table invariant, asserted by the db unit tests: every MemoryStorage part row sets `capacity`
                    .expect("memory/storage parts always declare capacity");
                memory_manufacturing(epc, cap)
            }
        }
    }

    /// Eq. 2 embodied breakdown (manufacturing + packaging) for one unit.
    pub fn embodied(&self) -> EmbodiedBreakdown {
        EmbodiedBreakdown::from_parts(self.manufacturing(), self.packaging)
    }

    /// Embodied carbon normalized to FP64 performance, in kgCO₂/TFLOPS
    /// (Fig. 1b). `None` for parts without a documented FP64 rate.
    pub fn embodied_per_tflops(&self) -> Option<f64> {
        let perf = self.fp64_peak?;
        Some(self.embodied().total().as_kg() / perf.as_tflops())
    }

    /// Embodied carbon normalized to bandwidth, in kgCO₂/(GB/s) (Fig. 2b).
    pub fn embodied_per_bandwidth(&self) -> Option<f64> {
        let bw = self.bandwidth?;
        Some(self.embodied().total().as_kg() / bw.as_gbps())
    }
}

/// Identifier for every part in the catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PartId {
    /// NVIDIA A100 PCIe 40 GB (Table 1).
    GpuA100Pcie40,
    /// AMD Instinct MI250X (Table 1; Frontier/LUMI GPU).
    GpuMi250x,
    /// NVIDIA V100 SXM2 32 GB (Table 1; Table 5 V100 node).
    GpuV100Sxm2_32,
    /// NVIDIA Tesla P100 PCIe 16 GB (Table 5 P100 node).
    GpuP100Pcie16,
    /// AMD EPYC 7763 (Table 1; Frontier/LUMI/Perlmutter CPU).
    CpuEpyc7763,
    /// AMD EPYC 7742 (Table 1).
    CpuEpyc7742,
    /// Intel Xeon Gold 6240R (Table 1; Table 5 V100 node).
    CpuXeonGold6240r,
    /// Intel Xeon E5-2680 v4 (Table 5 P100 node).
    CpuXeonE5_2680v4,
    /// AMD EPYC 7542 (Table 5 A100 node).
    CpuEpyc7542,
    /// SK Hynix 64 GB DDR4 RDIMM (Table 1).
    Dram64gb,
    /// 32 GB DDR4 RDIMM (Table 5 node memory).
    Dram32gb,
    /// Seagate Nytro 3530 3.2 TB SAS SSD (Table 1).
    Ssd3_2tb,
    /// Seagate Exos X16 16 TB HDD (Table 1).
    Hdd16tb,
}

impl PartId {
    /// Returns the full catalog entry for this part.
    ///
    /// Constant provenance (see module docs): die areas and datasheet
    /// figures are public; IC counts are calibrated so the class-average
    /// packaging shares land on the paper's Fig. 3 rings (GPU ≈ 15%,
    /// CPU ≈ 7%, DRAM ≈ 42%, SSD/HDD ≈ 2%).
    pub fn spec(self) -> PartSpec {
        match self {
            // --- GPUs ----------------------------------------------------
            // GA100: 826 mm² on TSMC N7. 9.7 FP64 TFLOPS, 1555 GB/s HBM2.
            // 21 IC packages ≈ GPU + 5 HBM stacks + board power/controller
            // ICs on the PCIe card.
            PartId::GpuA100Pcie40 => PartSpec {
                id: self,
                class: ComponentClass::Gpu,
                component: "NVIDIA A100",
                part_name: "NVIDIA A100 PCIe 40GB",
                vendor: Vendor::Nvidia,
                release: (2020, 5),
                embodied_inputs: EmbodiedInputs::on_node(
                    SiliconArea::from_mm2(826.0),
                    ProcessNode::N7,
                ),
                packaging: PackagingSpec::IcCount(21),
                capacity: Some(DataCapacity::from_gb(40.0)),
                fp64_peak: Some(ComputeRate::from_tflops(9.7)),
                bandwidth: Some(Bandwidth::from_gbps(1555.0)),
                tdp: Some(Power::from_w(250.0)),
                idle_power: Some(Power::from_w(55.0)),
            },
            // Two ~724 mm² GCDs on TSMC N6 (total 1448 mm²). 47.9 vector
            // FP64 TFLOPS ("almost 5× higher peak FP64 than A100" — paper),
            // 3277 GB/s HBM2e. 38 ICs ≈ 2 GCDs + 8 HBM stacks + OAM board
            // ICs.
            PartId::GpuMi250x => PartSpec {
                id: self,
                class: ComponentClass::Gpu,
                component: "AMD MI250X",
                part_name: "AMD INSTINCT MI250X",
                vendor: Vendor::Amd,
                release: (2021, 11),
                embodied_inputs: EmbodiedInputs::on_node(
                    SiliconArea::from_mm2(1448.0),
                    ProcessNode::N6,
                ),
                packaging: PackagingSpec::IcCount(38),
                capacity: Some(DataCapacity::from_gb(128.0)),
                fp64_peak: Some(ComputeRate::from_tflops(47.9)),
                bandwidth: Some(Bandwidth::from_gbps(3277.0)),
                tdp: Some(Power::from_w(560.0)),
                idle_power: Some(Power::from_w(90.0)),
            },
            // GV100: 815 mm² on TSMC 12FFN. 7.8 FP64 TFLOPS, 900 GB/s HBM2.
            PartId::GpuV100Sxm2_32 => PartSpec {
                id: self,
                class: ComponentClass::Gpu,
                component: "NVIDIA V100",
                part_name: "NVIDIA V100 SXM2 32GB",
                vendor: Vendor::Nvidia,
                release: (2018, 3),
                embodied_inputs: EmbodiedInputs::on_node(
                    SiliconArea::from_mm2(815.0),
                    ProcessNode::N12,
                ),
                packaging: PackagingSpec::IcCount(18),
                capacity: Some(DataCapacity::from_gb(32.0)),
                fp64_peak: Some(ComputeRate::from_tflops(7.8)),
                bandwidth: Some(Bandwidth::from_gbps(900.0)),
                tdp: Some(Power::from_w(300.0)),
                idle_power: Some(Power::from_w(40.0)),
            },
            // GP100: 610 mm² on TSMC 16FF. 4.7 FP64 TFLOPS, 732 GB/s HBM2.
            PartId::GpuP100Pcie16 => PartSpec {
                id: self,
                class: ComponentClass::Gpu,
                component: "NVIDIA P100",
                part_name: "NVIDIA Tesla P100 PCIe 16GB",
                vendor: Vendor::Nvidia,
                release: (2016, 6),
                embodied_inputs: EmbodiedInputs::on_node(
                    SiliconArea::from_mm2(610.0),
                    ProcessNode::N16,
                ),
                packaging: PackagingSpec::IcCount(14),
                capacity: Some(DataCapacity::from_gb(16.0)),
                fp64_peak: Some(ComputeRate::from_tflops(4.7)),
                bandwidth: Some(Bandwidth::from_gbps(732.0)),
                tdp: Some(Power::from_w(250.0)),
                idle_power: Some(Power::from_w(30.0)),
            },
            // --- CPUs ----------------------------------------------------
            // Milan: 8 N7 CCDs + N12 IOD. The carbon-relevant area below is
            // the yielded-equivalent compute silicon (chiplets yield far
            // better than monolithic dies of equal total area); calibrated
            // against Fig. 1's GPU-vs-CPU gap. FP64 peak: 64 c × 2.45 GHz ×
            // 16 DP FLOP/cycle ≈ 2.51 TFLOPS.
            PartId::CpuEpyc7763 => PartSpec {
                id: self,
                class: ComponentClass::Cpu,
                component: "AMD EPYC 7763",
                part_name: "AMD EPYC 7763 CPU",
                vendor: Vendor::Amd,
                release: (2021, 3),
                embodied_inputs: EmbodiedInputs::on_node(
                    SiliconArea::from_mm2(507.0),
                    ProcessNode::N7,
                ),
                packaging: PackagingSpec::IcCount(6),
                capacity: None,
                fp64_peak: Some(ComputeRate::from_tflops(2.51)),
                bandwidth: None,
                tdp: Some(Power::from_w(280.0)),
                idle_power: Some(Power::from_w(70.0)),
            },
            // Rome 64-core: 64 c × 2.25 GHz × 16 ≈ 2.30 TFLOPS.
            PartId::CpuEpyc7742 => PartSpec {
                id: self,
                class: ComponentClass::Cpu,
                component: "AMD EPYC 7742",
                part_name: "AMD EPYC 7742 CPU",
                vendor: Vendor::Amd,
                release: (2019, 8),
                embodied_inputs: EmbodiedInputs::on_node(
                    SiliconArea::from_mm2(490.0),
                    ProcessNode::N7,
                ),
                packaging: PackagingSpec::IcCount(6),
                capacity: None,
                fp64_peak: Some(ComputeRate::from_tflops(2.30)),
                bandwidth: None,
                tdp: Some(Power::from_w(225.0)),
                idle_power: Some(Power::from_w(60.0)),
            },
            // Cascade Lake 24-core XCC die (~754 mm² on Intel 14 nm).
            // FP64 peak: 24 c × 2.4 GHz × 32 (2×AVX-512 FMA) ≈ 1.84 TFLOPS.
            PartId::CpuXeonGold6240r => PartSpec {
                id: self,
                class: ComponentClass::Cpu,
                component: "Intel Xeon Gold 6240R",
                part_name: "Intel Xeon Gold 6240R CPU",
                vendor: Vendor::Intel,
                release: (2020, 2),
                embodied_inputs: EmbodiedInputs::on_node(
                    SiliconArea::from_mm2(754.0),
                    ProcessNode::N14,
                ),
                packaging: PackagingSpec::IcCount(5),
                capacity: None,
                fp64_peak: Some(ComputeRate::from_tflops(1.843)),
                bandwidth: None,
                tdp: Some(Power::from_w(165.0)),
                idle_power: Some(Power::from_w(45.0)),
            },
            // Broadwell-EP 14-core: 14 c × 2.4 GHz × 16 ≈ 0.54 TFLOPS.
            PartId::CpuXeonE5_2680v4 => PartSpec {
                id: self,
                class: ComponentClass::Cpu,
                component: "Intel Xeon E5-2680",
                part_name: "Intel Xeon E5-2680 v4 CPU",
                vendor: Vendor::Intel,
                release: (2016, 3),
                embodied_inputs: EmbodiedInputs::on_node(
                    SiliconArea::from_mm2(456.0),
                    ProcessNode::N14,
                ),
                packaging: PackagingSpec::IcCount(4),
                capacity: None,
                fp64_peak: Some(ComputeRate::from_tflops(0.538)),
                bandwidth: None,
                tdp: Some(Power::from_w(120.0)),
                idle_power: Some(Power::from_w(35.0)),
            },
            // Rome 32-core: 32 c × 2.9 GHz × 16 ≈ 1.49 TFLOPS.
            PartId::CpuEpyc7542 => PartSpec {
                id: self,
                class: ComponentClass::Cpu,
                component: "AMD EPYC 7542",
                part_name: "AMD EPYC 7542 CPU",
                vendor: Vendor::Amd,
                release: (2019, 8),
                embodied_inputs: EmbodiedInputs::on_node(
                    SiliconArea::from_mm2(420.0),
                    ProcessNode::N7,
                ),
                packaging: PackagingSpec::IcCount(5),
                capacity: None,
                fp64_peak: Some(ComputeRate::from_tflops(1.486)),
                bandwidth: None,
                tdp: Some(Power::from_w(225.0)),
                idle_power: Some(Power::from_w(55.0)),
            },
            // --- Memory --------------------------------------------------
            // Paper: EPC(DRAM) = 65 gCO₂/GB from SK Hynix sustainability
            // reporting. A 64 GB DDR4-3200 RDIMM carries ~20 IC packages
            // (18 DRAM chips + register/buffer) → packaging ≈ 42% of
            // embodied, matching Fig. 3's DRAM ring. 25.6 GB/s per module.
            PartId::Dram64gb => PartSpec {
                id: self,
                class: ComponentClass::Dram,
                component: "DRAM 64GB",
                part_name: "SK Hynix 64GB DDR4",
                vendor: Vendor::SkHynix,
                release: (2020, 10),
                embodied_inputs: EmbodiedInputs::MemoryStorage {
                    epc: CarbonPerCapacity::from_g_per_gb(65.0),
                },
                packaging: PackagingSpec::IcCount(20),
                capacity: Some(DataCapacity::from_gb(64.0)),
                fp64_peak: None,
                bandwidth: Some(Bandwidth::from_gbps(25.6)),
                tdp: Some(Power::from_w(5.0)),
                idle_power: Some(Power::from_w(2.0)),
            },
            PartId::Dram32gb => PartSpec {
                id: self,
                class: ComponentClass::Dram,
                component: "DRAM 32GB",
                part_name: "SK Hynix 32GB DDR4",
                vendor: Vendor::SkHynix,
                release: (2018, 6),
                embodied_inputs: EmbodiedInputs::MemoryStorage {
                    epc: CarbonPerCapacity::from_g_per_gb(65.0),
                },
                packaging: PackagingSpec::IcCount(10),
                capacity: Some(DataCapacity::from_gb(32.0)),
                fp64_peak: None,
                bandwidth: Some(Bandwidth::from_gbps(25.6)),
                tdp: Some(Power::from_w(3.0)),
                idle_power: Some(Power::from_w(1.5)),
            },
            // --- Storage -------------------------------------------------
            // Paper: EPC(SSD) = 6.21 gCO₂/GB; packaging via the
            // packaging-to-manufacturing ratio compiled from Seagate's
            // product sustainability pages (≈2% of embodied). Bandwidth is
            // single-port sustained SAS-12 transfer (~1.1 GB/s).
            PartId::Ssd3_2tb => PartSpec {
                id: self,
                class: ComponentClass::Ssd,
                component: "SSD 3.2TB",
                part_name: "Seagate Nytro 3530 3.2TB",
                vendor: Vendor::Seagate,
                release: (2018, 10),
                embodied_inputs: EmbodiedInputs::MemoryStorage {
                    epc: CarbonPerCapacity::from_g_per_gb(6.21),
                },
                packaging: PackagingSpec::ManufacturingRatio(0.0204),
                capacity: Some(DataCapacity::from_tb(3.2)),
                fp64_peak: None,
                bandwidth: Some(Bandwidth::from_gbps(1.1)),
                tdp: Some(Power::from_w(11.5)),
                idle_power: Some(Power::from_w(5.0)),
            },
            // Paper: EPC(HDD) = 1.33 gCO₂/GB; Exos X16 sustains 261 MB/s.
            PartId::Hdd16tb => PartSpec {
                id: self,
                class: ComponentClass::Hdd,
                component: "HDD 16TB",
                part_name: "Seagate Exos X16 16TB",
                vendor: Vendor::Seagate,
                release: (2019, 6),
                embodied_inputs: EmbodiedInputs::MemoryStorage {
                    epc: CarbonPerCapacity::from_g_per_gb(1.33),
                },
                packaging: PackagingSpec::ManufacturingRatio(0.0204),
                capacity: Some(DataCapacity::from_tb(16.0)),
                fp64_peak: None,
                bandwidth: Some(Bandwidth::from_mbps(261.0)),
                tdp: Some(Power::from_w(10.0)),
                idle_power: Some(Power::from_w(5.6)),
            },
        }
    }

    /// Short display label (the Table 1 "Component" column).
    pub fn label(self) -> &'static str {
        self.spec().component
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a100_embodied_in_expected_band() {
        let em = PartId::GpuA100Pcie40.spec().embodied();
        assert!((em.total().as_kg() - 22.0).abs() < 1.0, "{}", em.total());
        assert!((em.packaging_share().value() - 0.145).abs() < 0.02);
    }

    #[test]
    fn mi250x_is_heaviest_gpu_and_best_per_flop() {
        // Fig. 1: MI250X has the highest embodied carbon but the lowest
        // per-TFLOPS embodied carbon of all devices.
        let gpus = [
            PartId::GpuMi250x,
            PartId::GpuA100Pcie40,
            PartId::GpuV100Sxm2_32,
        ];
        let mi = PartId::GpuMi250x.spec();
        for g in gpus {
            let s = g.spec();
            assert!(mi.embodied().total() >= s.embodied().total());
            assert!(mi.embodied_per_tflops().unwrap() <= s.embodied_per_tflops().unwrap());
        }
        assert!(mi.embodied().total().as_kg() > 35.0 && mi.embodied().total().as_kg() < 45.0);
    }

    #[test]
    fn every_table1_gpu_exceeds_every_table1_cpu() {
        // Fig. 1(a): "each GPU device has higher embodied carbon than the
        // CPU devices by up to 3.4×".
        let gpus = [
            PartId::GpuMi250x,
            PartId::GpuA100Pcie40,
            PartId::GpuV100Sxm2_32,
        ];
        let cpus = [
            PartId::CpuEpyc7763,
            PartId::CpuEpyc7742,
            PartId::CpuXeonGold6240r,
        ];
        let min_gpu = gpus
            .iter()
            .map(|g| g.spec().embodied().total().as_kg())
            .fold(f64::INFINITY, f64::min);
        let max_cpu = cpus
            .iter()
            .map(|c| c.spec().embodied().total().as_kg())
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(min_gpu > max_cpu, "min GPU {min_gpu} vs max CPU {max_cpu}");

        let max_gpu = gpus
            .iter()
            .map(|g| g.spec().embodied().total().as_kg())
            .fold(f64::NEG_INFINITY, f64::max);
        let min_cpu = cpus
            .iter()
            .map(|c| c.spec().embodied().total().as_kg())
            .fold(f64::INFINITY, f64::min);
        let ratio = max_gpu / min_cpu;
        assert!((ratio - 3.4).abs() < 0.25, "max/min ratio = {ratio}");
    }

    #[test]
    fn per_tflops_trend_reverses() {
        // Fig. 1(b): every CPU has higher embodied-per-TFLOPS than every GPU.
        let gpus = [
            PartId::GpuMi250x,
            PartId::GpuA100Pcie40,
            PartId::GpuV100Sxm2_32,
        ];
        let cpus = [
            PartId::CpuEpyc7763,
            PartId::CpuEpyc7742,
            PartId::CpuXeonGold6240r,
        ];
        let max_gpu = gpus
            .iter()
            .map(|g| g.spec().embodied_per_tflops().unwrap())
            .fold(f64::NEG_INFINITY, f64::max);
        let min_cpu = cpus
            .iter()
            .map(|c| c.spec().embodied_per_tflops().unwrap())
            .fold(f64::INFINITY, f64::min);
        assert!(min_cpu > max_gpu, "CPU {min_cpu} must exceed GPU {max_gpu}");
    }

    #[test]
    fn mi250x_fp64_is_about_5x_a100() {
        let mi = PartId::GpuMi250x.spec().fp64_peak.unwrap().as_tflops();
        let a100 = PartId::GpuA100Pcie40.spec().fp64_peak.unwrap().as_tflops();
        assert!((mi / a100 - 4.94).abs() < 0.1);
    }

    #[test]
    fn memory_storage_embodied_in_5_to_25_kg_band() {
        // Fig. 2(a): "each DRAM/SSD/HDD device has an embodied carbon of
        // 5 to 25 kgCO2".
        for p in [PartId::Dram64gb, PartId::Ssd3_2tb, PartId::Hdd16tb] {
            let t = p.spec().embodied().total().as_kg();
            assert!((5.0..=25.0).contains(&t), "{p:?}: {t}");
        }
    }

    #[test]
    fn per_bandwidth_ordering_hdd_ssd_dram() {
        // Fig. 2(b): HDD >> SSD >> DRAM per unit bandwidth.
        let dram = PartId::Dram64gb.spec().embodied_per_bandwidth().unwrap();
        let ssd = PartId::Ssd3_2tb.spec().embodied_per_bandwidth().unwrap();
        let hdd = PartId::Hdd16tb.spec().embodied_per_bandwidth().unwrap();
        assert!(hdd > 4.0 * ssd, "hdd={hdd} ssd={ssd}");
        assert!(ssd > 10.0 * dram, "ssd={ssd} dram={dram}");
        assert!((hdd - 83.0).abs() < 5.0, "hdd={hdd}");
    }

    #[test]
    fn packaging_shares_match_fig3() {
        // Class-average packaging shares: GPU ≈15%, CPU ≈7%, DRAM ≈42%,
        // SSD ≈2%, HDD ≈2%.
        let avg_share = |parts: &[PartId]| {
            let mfg: f64 = parts
                .iter()
                .map(|p| p.spec().embodied().manufacturing.as_kg())
                .sum();
            let pack: f64 = parts
                .iter()
                .map(|p| p.spec().embodied().packaging.as_kg())
                .sum();
            pack / (mfg + pack)
        };
        let gpu = avg_share(&[
            PartId::GpuMi250x,
            PartId::GpuA100Pcie40,
            PartId::GpuV100Sxm2_32,
        ]);
        let cpu = avg_share(&[
            PartId::CpuEpyc7763,
            PartId::CpuEpyc7742,
            PartId::CpuXeonGold6240r,
        ]);
        let dram = avg_share(&[PartId::Dram64gb]);
        let ssd = avg_share(&[PartId::Ssd3_2tb]);
        let hdd = avg_share(&[PartId::Hdd16tb]);
        assert!((gpu - 0.15).abs() < 0.02, "gpu share {gpu}");
        assert!((cpu - 0.07).abs() < 0.01, "cpu share {cpu}");
        assert!((dram - 0.42).abs() < 0.02, "dram share {dram}");
        assert!((ssd - 0.02).abs() < 0.005, "ssd share {ssd}");
        assert!((hdd - 0.02).abs() < 0.005, "hdd share {hdd}");
    }

    #[test]
    fn release_dates_match_table1() {
        assert_eq!(PartId::GpuA100Pcie40.spec().release, (2020, 5));
        assert_eq!(PartId::GpuMi250x.spec().release, (2021, 11));
        assert_eq!(PartId::GpuV100Sxm2_32.spec().release, (2018, 3));
        assert_eq!(PartId::CpuEpyc7763.spec().release, (2021, 3));
        assert_eq!(PartId::CpuEpyc7742.spec().release, (2019, 8));
        assert_eq!(PartId::CpuXeonGold6240r.spec().release, (2020, 2));
        assert_eq!(PartId::Dram64gb.spec().release, (2020, 10));
        assert_eq!(PartId::Ssd3_2tb.spec().release, (2018, 10));
        assert_eq!(PartId::Hdd16tb.spec().release, (2019, 6));
    }

    #[test]
    fn upgrade_ladder_is_monotone() {
        // P100 -> V100 -> A100: newer GPUs have more embodied carbon
        // (larger, denser dies) and more FP64 throughput.
        let p = PartId::GpuP100Pcie16.spec();
        let v = PartId::GpuV100Sxm2_32.spec();
        let a = PartId::GpuA100Pcie40.spec();
        assert!(p.embodied().total() < v.embodied().total());
        assert!(v.embodied().total() < a.embodied().total());
        assert!(p.fp64_peak.unwrap() < v.fp64_peak.unwrap());
        assert!(v.fp64_peak.unwrap() < a.fp64_peak.unwrap());
    }

    #[test]
    fn specs_are_self_consistent() {
        for p in crate::db::all_parts() {
            let s = p.spec();
            assert_eq!(s.id, p);
            let em = s.embodied();
            assert!(em.total().as_g() > 0.0, "{p:?} must have positive embodied");
            assert!(em.manufacturing.as_g() > 0.0);
            assert!(em.packaging.as_g() > 0.0);
            if let Some(tdp) = s.tdp {
                let idle = s.idle_power.expect("parts with TDP declare idle power");
                assert!(idle < tdp, "{p:?}: idle must be below TDP");
            }
            match s.class {
                ComponentClass::Dram | ComponentClass::Ssd | ComponentClass::Hdd => {
                    assert!(s.capacity.is_some(), "{p:?} must declare capacity");
                    assert!(s.bandwidth.is_some(), "{p:?} must declare bandwidth");
                }
                ComponentClass::Gpu | ComponentClass::Cpu => {
                    assert!(s.fp64_peak.is_some(), "{p:?} must declare FP64 peak");
                }
            }
        }
    }
}
