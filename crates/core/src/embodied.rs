//! Embodied carbon models — Eqs. 2–5 of the paper.
//!
//! The paper splits embodied carbon (Eq. 2) into *manufacturing* carbon
//! (wafer fabrication, chemicals/gases, raw materials — Eq. 3 for
//! processors, Eq. 4 for memory/storage) and *packaging* carbon (Eq. 5,
//! 150 gCO₂ per IC package, per SPIL industry reporting; storage devices
//! use a packaging-to-manufacturing ratio compiled from Seagate
//! sustainability data because IC counting "is non-trivial for storage
//! components").

use hpcarbon_units::{
    CarbonAreaDensity, CarbonMass, CarbonPerCapacity, DataCapacity, Fraction, SiliconArea,
};

/// Per-IC packaging overhead from industry reports (paper Eq. 5; SPIL CSR).
pub const PACKAGING_G_PER_IC: f64 = 150.0;

/// The five device classes the paper analyzes (Figs. 3 and 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ComponentClass {
    /// Graphics / accelerator devices.
    Gpu,
    /// Central processors.
    Cpu,
    /// Main-memory modules.
    Dram,
    /// Solid-state drives.
    Ssd,
    /// Hard-disk drives.
    Hdd,
}

impl ComponentClass {
    /// The classes in the paper's presentation order.
    pub const ALL: [ComponentClass; 5] = [
        ComponentClass::Gpu,
        ComponentClass::Cpu,
        ComponentClass::Dram,
        ComponentClass::Ssd,
        ComponentClass::Hdd,
    ];

    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            ComponentClass::Gpu => "GPU",
            ComponentClass::Cpu => "CPU",
            ComponentClass::Dram => "DRAM",
            ComponentClass::Ssd => "SSD",
            ComponentClass::Hdd => "HDD",
        }
    }

    /// True for the compute classes (CPU/GPU) as opposed to the
    /// memory/storage classes — the split RQ4 analyzes ("memory and
    /// storage have made up approximately 60% of the carbon in Frontier").
    pub fn is_compute(self) -> bool {
        matches!(self, ComponentClass::Gpu | ComponentClass::Cpu)
    }
}

impl core::fmt::Display for ComponentClass {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.label())
    }
}

/// The paper's constant fab yield: "set to a constant value of 0.875,
/// consistent with ACT".
pub fn default_fab_yield() -> Fraction {
    Fraction::new_unchecked(0.875)
}

/// The three per-area fab emission terms of Eq. 3.
///
/// - `fpa`: fab carbon emission per unit area (location + lithography)
/// - `gpa`: emissions from chemicals and gases per unit area (lithography)
/// - `mpa`: emissions from raw materials per unit area (lithography)
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FabDensities {
    /// Fab energy-related carbon per cm².
    pub fpa: CarbonAreaDensity,
    /// Chemicals/gases carbon per cm².
    pub gpa: CarbonAreaDensity,
    /// Raw-materials carbon per cm².
    pub mpa: CarbonAreaDensity,
}

impl FabDensities {
    /// Sum of the three densities.
    pub fn total(&self) -> CarbonAreaDensity {
        self.fpa + self.gpa + self.mpa
    }
}

/// Eq. 3: `M_proc = (FPA + GPA + MPA) · A_die / Yield`.
pub fn processor_manufacturing(
    densities: FabDensities,
    die_area: SiliconArea,
    fab_yield: Fraction,
) -> CarbonMass {
    assert!(
        fab_yield.value() > 0.0,
        "fab yield must be positive (paper uses 0.875)"
    );
    (densities.total() * die_area) / fab_yield.value()
}

/// Eq. 4: `M_m/s = EPC · Capacity`.
pub fn memory_manufacturing(epc: CarbonPerCapacity, capacity: DataCapacity) -> CarbonMass {
    epc * capacity
}

/// Eq. 5: `Packaging = 150 gCO₂ · #ICs`.
pub fn packaging_from_ics(ic_count: u32) -> CarbonMass {
    CarbonMass::from_g(PACKAGING_G_PER_IC * f64::from(ic_count))
}

/// Ratio-based packaging used for storage devices: the paper compiles a
/// packaging-to-manufacturing ratio from vendor sustainability reports
/// because counting ICs on a drive is not meaningful.
pub fn packaging_from_ratio(manufacturing: CarbonMass, ratio: f64) -> CarbonMass {
    assert!(
        ratio.is_finite() && ratio >= 0.0,
        "packaging ratio must be finite and non-negative"
    );
    manufacturing * ratio
}

/// How a part's packaging carbon is modeled.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PackagingSpec {
    /// Eq. 5: count of IC packages × 150 gCO₂ (processors, DRAM).
    IcCount(u32),
    /// Storage devices: packaging = ratio × manufacturing carbon.
    ManufacturingRatio(f64),
}

/// Eq. 2's two-way split of embodied carbon.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EmbodiedBreakdown {
    /// Wafer-fab / assembly / test emissions (Eq. 3 or Eq. 4).
    pub manufacturing: CarbonMass,
    /// Chip-packaging emissions (Eq. 5 or ratio form).
    pub packaging: CarbonMass,
}

impl EmbodiedBreakdown {
    /// Builds the breakdown from a manufacturing estimate and the part's
    /// packaging model.
    pub fn from_parts(manufacturing: CarbonMass, packaging: PackagingSpec) -> EmbodiedBreakdown {
        let packaging = match packaging {
            PackagingSpec::IcCount(n) => packaging_from_ics(n),
            PackagingSpec::ManufacturingRatio(r) => packaging_from_ratio(manufacturing, r),
        };
        EmbodiedBreakdown {
            manufacturing,
            packaging,
        }
    }

    /// Eq. 2: total embodied carbon.
    pub fn total(&self) -> CarbonMass {
        self.manufacturing + self.packaging
    }

    /// Fraction of embodied carbon attributable to packaging
    /// (Fig. 3's ring charts).
    pub fn packaging_share(&self) -> Fraction {
        Fraction::saturating(self.packaging / self.total())
    }

    /// Fraction of embodied carbon attributable to manufacturing.
    pub fn manufacturing_share(&self) -> Fraction {
        Fraction::saturating(self.manufacturing / self.total())
    }

    /// Sums breakdowns componentwise (e.g. across the parts of a node).
    pub fn sum<I: IntoIterator<Item = EmbodiedBreakdown>>(iter: I) -> EmbodiedBreakdown {
        iter.into_iter()
            .fold(EmbodiedBreakdown::default(), |acc, b| EmbodiedBreakdown {
                manufacturing: acc.manufacturing + b.manufacturing,
                packaging: acc.packaging + b.packaging,
            })
    }

    /// Scales the breakdown by a count of identical parts.
    pub fn scaled(&self, count: f64) -> EmbodiedBreakdown {
        EmbodiedBreakdown {
            manufacturing: self.manufacturing * count,
            packaging: self.packaging * count,
        }
    }
}

impl core::ops::Add for EmbodiedBreakdown {
    type Output = EmbodiedBreakdown;
    fn add(self, rhs: EmbodiedBreakdown) -> EmbodiedBreakdown {
        EmbodiedBreakdown {
            manufacturing: self.manufacturing + rhs.manufacturing,
            packaging: self.packaging + rhs.packaging,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcarbon_units::CarbonAreaDensity as Cad;

    fn densities(f: f64, g: f64, m: f64) -> FabDensities {
        FabDensities {
            fpa: Cad::from_g_per_cm2(f),
            gpa: Cad::from_g_per_cm2(g),
            mpa: Cad::from_g_per_cm2(m),
        }
    }

    #[test]
    fn eq3_matches_hand_computation() {
        // (1000 + 200 + 300) g/cm2 * 8 cm2 / 0.875 = 13_714.3 g
        let m = processor_manufacturing(
            densities(1000.0, 200.0, 300.0),
            SiliconArea::from_cm2(8.0),
            default_fab_yield(),
        );
        assert!((m.as_g() - 12_000.0 / 0.875).abs() < 1e-6);
    }

    #[test]
    fn eq3_lower_yield_means_more_carbon() {
        let d = densities(1000.0, 200.0, 300.0);
        let a = SiliconArea::from_cm2(5.0);
        let good = processor_manufacturing(d, a, Fraction::new_unchecked(0.95));
        let bad = processor_manufacturing(d, a, Fraction::new_unchecked(0.5));
        assert!(bad > good);
        assert!((bad.as_g() / good.as_g() - 0.95 / 0.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "yield must be positive")]
    fn eq3_rejects_zero_yield() {
        let _ = processor_manufacturing(
            densities(1.0, 1.0, 1.0),
            SiliconArea::from_cm2(1.0),
            Fraction::ZERO,
        );
    }

    #[test]
    fn eq4_matches_paper_dram_example() {
        // Paper: EPC(DRAM) = 65 gCO2/GB; 64 GB module -> 4.16 kg.
        let m = memory_manufacturing(
            CarbonPerCapacity::from_g_per_gb(65.0),
            DataCapacity::from_gb(64.0),
        );
        assert!((m.as_kg() - 4.16).abs() < 1e-9);
    }

    #[test]
    fn eq4_matches_paper_storage_examples() {
        // SSD: 6.21 g/GB * 3.2 TB = 19.872 kg; HDD: 1.33 g/GB * 16 TB = 21.28 kg.
        let ssd = memory_manufacturing(
            CarbonPerCapacity::from_g_per_gb(6.21),
            DataCapacity::from_tb(3.2),
        );
        assert!((ssd.as_kg() - 19.872).abs() < 1e-9);
        let hdd = memory_manufacturing(
            CarbonPerCapacity::from_g_per_gb(1.33),
            DataCapacity::from_tb(16.0),
        );
        assert!((hdd.as_kg() - 21.28).abs() < 1e-9);
    }

    #[test]
    fn eq5_per_ic() {
        assert_eq!(packaging_from_ics(0).as_g(), 0.0);
        assert_eq!(packaging_from_ics(1).as_g(), 150.0);
        assert_eq!(packaging_from_ics(20).as_kg(), 3.0);
    }

    #[test]
    fn ratio_packaging() {
        let mfg = CarbonMass::from_kg(20.0);
        let p = packaging_from_ratio(mfg, 0.02);
        assert!((p.as_kg() - 0.4).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "packaging ratio")]
    fn ratio_rejects_negative() {
        let _ = packaging_from_ratio(CarbonMass::from_kg(1.0), -0.1);
    }

    #[test]
    fn breakdown_total_and_shares() {
        let b =
            EmbodiedBreakdown::from_parts(CarbonMass::from_kg(4.16), PackagingSpec::IcCount(20));
        assert!((b.total().as_kg() - 7.16).abs() < 1e-9);
        // DRAM calibration: packaging ~42% of embodied (Fig. 3).
        assert!((b.packaging_share().value() - 0.419).abs() < 0.01);
        assert!((b.manufacturing_share().value() + b.packaging_share().value() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn breakdown_sum_and_scale() {
        let a = EmbodiedBreakdown {
            manufacturing: CarbonMass::from_kg(1.0),
            packaging: CarbonMass::from_kg(0.5),
        };
        let b = EmbodiedBreakdown {
            manufacturing: CarbonMass::from_kg(2.0),
            packaging: CarbonMass::from_kg(0.25),
        };
        let s = EmbodiedBreakdown::sum([a, b]);
        assert_eq!(s.manufacturing.as_kg(), 3.0);
        assert_eq!(s.packaging.as_kg(), 0.75);
        let scaled = a.scaled(4.0);
        assert_eq!(scaled.total().as_kg(), 6.0);
        let added = a + b;
        assert_eq!(added.total().as_kg(), s.total().as_kg());
    }
}
