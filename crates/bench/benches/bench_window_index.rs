//! Benches for the sliding-window index: the indexed argmin-window query
//! against the naive rescan it replaces, on a full 8760-hour region-year.
//!
//! The contract (enforced by `ci/bench_gate.sh`): `argmin_indexed` beats
//! `argmin_naive` by ≥10× — the naive scan touches `slack × w` values
//! per query where the index touches `slack` prefix differences, so the
//! ratio approaches `w` (24 here). The fixed sparse table collapses the
//! remaining `O(slack)` to an `O(1)` lookup for repeated same-width
//! queries.

use criterion::{criterion_group, criterion_main, Criterion};
use hpcarbon_grid::{simulate_year, OperatorId};
use hpcarbon_timeseries::window::{naive, WindowIndex};
use std::hint::black_box;

/// A week of slack for a day-long window: the canonical shifting query.
const SLACK: u32 = 168;
const W: u32 = 24;
/// Query start hours spread over the year (same set for every variant).
const STARTS: [u32; 10] = [0, 877, 1754, 2631, 3508, 4385, 5262, 6139, 7016, 8759];

fn year_values() -> Vec<f64> {
    simulate_year(OperatorId::Eso, 2021, 7)
        .series()
        .values()
        .to_vec()
}

fn argmin(c: &mut Criterion) {
    let values = year_values();
    let idx = WindowIndex::new(&values);
    let fixed = idx.fixed(W);
    let mut g = c.benchmark_group("window_index");
    g.bench_function("argmin_naive", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for start in STARTS {
                acc = acc.wrapping_add(naive::greenest_shift(&values, start, SLACK, W));
            }
            black_box(acc)
        })
    });
    g.bench_function("argmin_indexed", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for start in STARTS {
                acc = acc.wrapping_add(idx.greenest_shift(start, SLACK, W));
            }
            black_box(acc)
        })
    });
    g.bench_function("argmin_fixed_table", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for start in STARTS {
                let hi = (start + SLACK).min(8759);
                acc = acc.wrapping_add(fixed.argmin_in(start, hi));
            }
            black_box(acc)
        })
    });
    g.finish();
}

fn window_mean(c: &mut Criterion) {
    let values = year_values();
    let idx = WindowIndex::new(&values);
    let mut g = c.benchmark_group("window_index");
    g.bench_function("mean_naive", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for start in STARTS {
                acc += naive::window_mean(&values, start, SLACK);
            }
            black_box(acc)
        })
    });
    g.bench_function("mean_indexed", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for start in STARTS {
                acc += idx.window_mean(start, SLACK);
            }
            black_box(acc)
        })
    });
    g.finish();
}

fn build(c: &mut Criterion) {
    let values = year_values();
    let idx = WindowIndex::new(&values);
    let mut g = c.benchmark_group("window_index");
    g.bench_function("build_prefix_8760", |b| {
        b.iter(|| black_box(WindowIndex::new(&values)))
    });
    g.bench_function("build_sparse_table_8760", |b| {
        b.iter(|| black_box(idx.fixed(W)))
    });
    g.finish();
}

criterion_group!(benches, argmin, window_mean, build);
criterion_main!(benches);
