//! Benches for the scenario-sweep engine: serial vs. parallel execution
//! of the same grid, plus expansion and emission costs.
//!
//! On a multi-core host `executor/parallel` beats `executor/serial_1_thread`
//! roughly by the core count (scenarios are independent and the executor's
//! atomic-cursor distribution keeps workers busy); on a single core the
//! two collapse to the same time, never worse.

use criterion::{criterion_group, criterion_main, Criterion};
use hpcarbon_sweep::{ScenarioGrid, SweepConfig, SweepExecutor};
use std::hint::black_box;

/// A mid-size grid: large enough to amortize thread startup, small enough
/// for bench iteration (3 x 1 x 7 x 1 x 2 x 1 = 42 scenarios).
fn bench_grid() -> ScenarioGrid {
    let g = ScenarioGrid::paper_default();
    let (pue, policies, upgrade) = (g.pues[0], [g.policies[0], g.policies[1]], g.upgrades[0]);
    g.storage([hpcarbon_sweep::StorageVariant::Baseline])
        .pues([pue])
        .policies(policies)
        .upgrades([upgrade])
}

fn grid_expansion(c: &mut Criterion) {
    let grid = ScenarioGrid::paper_default();
    c.bench_function("sweep/grid_expansion_504", |b| {
        b.iter(|| black_box(grid.scenarios()))
    });
}

fn executor(c: &mut Criterion) {
    let grid = bench_grid();
    let cfg = SweepConfig::fast();
    let mut g = c.benchmark_group("sweep/executor");
    g.sample_size(10);
    g.bench_function("serial_1_thread", |b| {
        b.iter(|| black_box(SweepExecutor::new(cfg).with_threads(1).run(&grid)))
    });
    g.bench_function("parallel", |b| {
        b.iter(|| black_box(SweepExecutor::new(cfg).run(&grid)))
    });
    g.finish();
}

fn emission(c: &mut Criterion) {
    let results = SweepExecutor::new(SweepConfig::fast()).run(&bench_grid());
    c.bench_function("sweep/to_csv", |b| b.iter(|| black_box(results.to_csv())));
    c.bench_function("sweep/to_json", |b| b.iter(|| black_box(results.to_json())));
}

criterion_group!(benches, grid_expansion, executor, emission);
criterion_main!(benches);
