//! Benches for the streaming scenario-sweep engine: the hoisted
//! [`SweepContext`] vs. the cold per-scenario path, serial vs. parallel
//! streaming of the same grid, plus expansion and emission costs.
//!
//! The contract gated in CI (`ci/bench_gate.sh`): a scenario evaluated
//! through a pre-built `SweepContext` must beat the uncontexted
//! `run_scenario` path by ≥ `BENCH_GATE_MIN_SWEEP_SPEEDUP` (default 2×),
//! because the context hoists trace simulation, job-trace generation,
//! and catalog assembly out of the per-row loop. On a multi-core host
//! `streaming/parallel` additionally beats `streaming/serial_1_thread`
//! roughly by the core count; on a single core the two collapse to the
//! same time, never worse.

use criterion::{criterion_group, criterion_main, Criterion};
use hpcarbon_sweep::{
    run_scenario, CsvSink, JsonSink, ScenarioGrid, Sweep, SweepConfig, SweepContext,
};
use std::hint::black_box;

/// A mid-size grid: large enough to amortize thread startup, small enough
/// for bench iteration (3 x 1 x 7 x 1 x 2 x 1 = 42 scenarios).
fn bench_grid() -> ScenarioGrid {
    let g = ScenarioGrid::paper_default();
    let (pue, policies, upgrade) = (g.pues[0], [g.policies[0], g.policies[1]], g.upgrades[0]);
    g.storage([hpcarbon_sweep::StorageVariant::Baseline])
        .pues([pue])
        .policies(policies)
        .upgrades([upgrade])
}

fn grid_expansion(c: &mut Criterion) {
    let grid = ScenarioGrid::paper_default();
    c.bench_function("sweep/grid_expansion_504", |b| {
        b.iter(|| black_box(grid.scenarios()))
    });
}

fn context(c: &mut Criterion) {
    let grid = bench_grid();
    let cfg = SweepConfig::fast();
    let mut g = c.benchmark_group("sweep/context");
    g.sample_size(10);
    // One-time cost of hoisting every shared derivation (intensity
    // traces, job traces, catalogs) for the whole grid.
    g.bench_function("build", |b| {
        b.iter(|| black_box(SweepContext::build(&grid, cfg, Some(1))))
    });
    // Per-row cost with vs. without the hoisted context — the ≥2x
    // speedup the bench gate enforces.
    let ctx = SweepContext::build(&grid, cfg, Some(1));
    let sc = grid.scenario_at(0);
    g.bench_function("scenario_uncontexted", |b| {
        b.iter(|| black_box(run_scenario(&sc, &cfg).unwrap()))
    });
    g.bench_function("scenario_contexted", |b| {
        b.iter(|| black_box(ctx.run(&sc).unwrap()))
    });
    g.finish();
}

fn streaming(c: &mut Criterion) {
    let grid = bench_grid();
    let cfg = SweepConfig::fast();
    let mut g = c.benchmark_group("sweep/streaming");
    g.sample_size(10);
    g.bench_function("serial_1_thread", |b| {
        b.iter(|| {
            black_box(
                Sweep::over(&grid)
                    .config(cfg)
                    .threads(1)
                    .run()
                    .expect("sinkless sweep cannot fail"),
            )
        })
    });
    g.bench_function("parallel", |b| {
        b.iter(|| {
            black_box(
                Sweep::over(&grid)
                    .config(cfg)
                    .run()
                    .expect("sinkless sweep cannot fail"),
            )
        })
    });
    g.finish();
}

fn emission(c: &mut Criterion) {
    // Emitter cost alone: stream pre-computed rows through each sink.
    let grid = bench_grid();
    let mut collect = hpcarbon_sweep::CollectSink::new();
    Sweep::over(&grid)
        .config(SweepConfig::fast())
        .sink(&mut collect)
        .run()
        .unwrap();
    let rows = collect.rows().to_vec();
    let emit = |mut sink: Box<dyn hpcarbon_sweep::RowSink>| {
        sink.begin().unwrap();
        for row in &rows {
            sink.row(row).unwrap();
        }
        sink.finish().unwrap();
    };
    c.bench_function("sweep/to_csv", |b| {
        b.iter(|| emit(Box::new(CsvSink::new(black_box(Vec::new())))))
    });
    c.bench_function("sweep/to_json", |b| {
        b.iter(|| emit(Box::new(JsonSink::new(black_box(Vec::new())))))
    });
}

criterion_group!(benches, grid_expansion, context, streaming, emission);
criterion_main!(benches);
