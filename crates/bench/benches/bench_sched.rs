//! Benches for the carbon-aware scheduler (the paper's §4 implications).

use criterion::{criterion_group, criterion_main, Criterion};
use hpcarbon_grid::regions::OperatorId;
use hpcarbon_grid::sim::simulate_year;
use hpcarbon_sched::{Cluster, JobTraceGenerator, Policy, Simulation};
use std::hint::black_box;

fn policies(c: &mut Criterion) {
    let gb = Cluster::new("gb", simulate_year(OperatorId::Eso, 2021, 7), 128);
    let ca = Cluster::new("ca", simulate_year(OperatorId::Ciso, 2021, 7), 128);
    let jobs = JobTraceGenerator::default_rates().generate(300, 42);

    let mut g = c.benchmark_group("sched/policies_300_jobs");
    g.sample_size(20);
    for policy in [
        Policy::Fifo,
        Policy::ThresholdDefer {
            threshold_g_per_kwh: 180.0,
        },
        Policy::GreenestWindow { horizon_hours: 24 },
        Policy::LowestIntensityRegion,
        Policy::RegionAndTime { horizon_hours: 24 },
    ] {
        g.bench_function(policy.label(), |b| {
            b.iter(|| {
                black_box(
                    Simulation::multi_region(vec![gb.clone(), ca.clone()], policy, &jobs).run(),
                )
            })
        });
    }
    g.finish();
}

fn trace_generation(c: &mut Criterion) {
    c.bench_function("sched/job_trace_1000", |b| {
        let gen = JobTraceGenerator::default_rates();
        b.iter(|| black_box(gen.generate(1000, 7)))
    });
}

criterion_group!(benches, policies, trace_generation);
criterion_main!(benches);
