//! Benches for the grid artifacts: Figs. 6 and 7 (trace synthesis +
//! cross-region analytics).

use criterion::{criterion_group, criterion_main, Criterion};
use hpcarbon_grid::analysis::{regional_summary, winner_counts};
use hpcarbon_grid::regions::OperatorId;
use hpcarbon_grid::sim::{simulate_all_regions, simulate_year};
use hpcarbon_timeseries::datetime::TimeZone;
use std::hint::black_box;

fn trace_synthesis(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6/trace_synthesis");
    g.sample_size(20);
    g.bench_function("one_region_year", |b| {
        b.iter(|| black_box(simulate_year(OperatorId::Eso, 2021, 42)))
    });
    g.bench_function("all_regions_parallel", |b| {
        b.iter(|| black_box(simulate_all_regions(2021, 42)))
    });
    g.finish();
}

fn fig6_stats(c: &mut Criterion) {
    let traces = simulate_all_regions(2021, 42);
    c.bench_function("fig6/regional_summary", |b| {
        b.iter(|| black_box(regional_summary(&traces)))
    });
    let mut g = c.benchmark_group("fig6/full_artifact");
    g.sample_size(10);
    g.bench_function("render", |b| {
        b.iter(|| black_box(hpcarbon_report::figures::fig6(42)))
    });
    g.finish();
}

fn fig7_winners(c: &mut Criterion) {
    let traces: Vec<_> = OperatorId::FIG7_REGIONS
        .iter()
        .map(|op| simulate_year(*op, 2021, 42))
        .collect();
    c.bench_function("fig7/winner_counts_jst", |b| {
        b.iter(|| black_box(winner_counts(&traces, TimeZone::JST)))
    });
}

criterion_group!(benches, trace_synthesis, fig6_stats, fig7_winners);
criterion_main!(benches);
