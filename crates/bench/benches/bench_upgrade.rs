//! Benches for Table 6 and Figs. 8/9: the upgrade decision machinery.

use criterion::{criterion_group, criterion_main, Criterion};
use hpcarbon_grid::IntensityLevel;
use hpcarbon_units::TimeSpan;
use hpcarbon_upgrade::savings::UpgradeScenario;
use hpcarbon_workloads::benchmarks::Suite;
use hpcarbon_workloads::nodes::NodeGen;
use hpcarbon_workloads::perf;
use std::hint::black_box;

fn table6(c: &mut Criterion) {
    c.bench_function("table6/speedup_matrix", |b| {
        b.iter(|| black_box(perf::table6()))
    });
}

fn fig8(c: &mut Criterion) {
    c.bench_function("fig8/savings_curves_grid", |b| {
        b.iter(|| {
            for suite in Suite::ALL {
                for s in UpgradeScenario::paper_options(suite) {
                    for level in IntensityLevel::ALL {
                        black_box(s.savings_curve(
                            TimeSpan::from_years(5.0),
                            20,
                            level.intensity(),
                        ));
                    }
                }
            }
        })
    });
    c.bench_function("fig8/break_even_grid", |b| {
        b.iter(|| {
            for suite in Suite::ALL {
                for s in UpgradeScenario::paper_options(suite) {
                    for level in IntensityLevel::ALL {
                        black_box(s.break_even(level.intensity()));
                    }
                }
            }
        })
    });
    let mut g = c.benchmark_group("fig8/full_artifact");
    g.sample_size(20);
    g.bench_function("render", |b| {
        b.iter(|| black_box(hpcarbon_report::figures::fig8()))
    });
    g.finish();
}

fn fig9(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9/full_artifact");
    g.sample_size(20);
    g.bench_function("render", |b| {
        b.iter(|| black_box(hpcarbon_report::figures::fig9()))
    });
    g.finish();
    c.bench_function("fig9/advisor_verdicts", |b| {
        let advisor = hpcarbon_upgrade::UpgradeAdvisor::with_five_year_horizon();
        let s = UpgradeScenario::paper_default(NodeGen::V100Node, NodeGen::A100Node, Suite::Nlp);
        b.iter(|| {
            for level in IntensityLevel::ALL {
                black_box(advisor.recommend(&s, level.intensity()));
            }
        })
    });
}

criterion_group!(benches, table6, fig8, fig9);
criterion_main!(benches);
