//! Benches for the trace-file ingestion path and the forecast layer:
//! the strict CSV parser over a full 8760-hour year, and the day-ahead
//! harmonic forecast built and scored against its actual trace.
//!
//! `ci/bench_gate.sh` tracks both medians against the committed
//! baseline — parsing a year of real data sits on the CLI's hot path
//! (`hpcarbon trace …`, `--trace-file` sweeps), and the forecast build
//! runs once per cluster per scenario under `--forecast`.

use criterion::{criterion_group, criterion_main, Criterion};
use hpcarbon_grid::forecast::day_ahead_harmonic_forecast;
use hpcarbon_grid::synth::synthesize_year;
use hpcarbon_grid::tracefile::{parse_trace_csv, write_trace_csv, GapPolicy};
use hpcarbon_grid::OperatorId;
use std::hint::black_box;

fn trace(c: &mut Criterion) {
    let year = synthesize_year(OperatorId::Eso, 2021, 7);
    let csv = write_trace_csv(&year);
    let mut g = c.benchmark_group("trace");
    g.bench_function("parse_8760", |b| {
        b.iter(|| {
            let parsed = parse_trace_csv("bench.csv", black_box(&csv), GapPolicy::Reject)
                .expect("canonical emission parses");
            black_box(parsed.trace.at_index(4000).as_g_per_kwh())
        })
    });
    g.finish();
}

fn forecast(c: &mut Criterion) {
    let actual = synthesize_year(OperatorId::Eso, 2021, 7);
    let mut g = c.benchmark_group("forecast");
    g.bench_function("day_ahead_eval", |b| {
        b.iter(|| {
            let planned = day_ahead_harmonic_forecast(black_box(&actual));
            // Score the forecast: mean absolute error over the year.
            let mut err = 0.0;
            for h in 0..8760u32 {
                err +=
                    (planned.at_index(h).as_g_per_kwh() - actual.at_index(h).as_g_per_kwh()).abs();
            }
            black_box(err / 8760.0)
        })
    });
    g.finish();
}

criterion_group!(benches, trace, forecast);
criterion_main!(benches);
