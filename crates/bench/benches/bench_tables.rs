//! Benches for Tables 1–5 regeneration (catalog + inventory queries).

use criterion::{criterion_group, criterion_main, Criterion};
use hpcarbon_report::tables;
use std::hint::black_box;

fn table_rendering(c: &mut Criterion) {
    c.bench_function("table1/render", |b| b.iter(|| black_box(tables::table1())));
    c.bench_function("table2/render", |b| b.iter(|| black_box(tables::table2())));
    c.bench_function("table3/render", |b| b.iter(|| black_box(tables::table3())));
    c.bench_function("table4/render", |b| b.iter(|| black_box(tables::table4())));
    c.bench_function("table5/render", |b| b.iter(|| black_box(tables::table5())));
}

fn full_report(c: &mut Criterion) {
    let mut g = c.benchmark_group("report/render_all");
    g.sample_size(10);
    g.bench_function("all_fifteen_artifacts", |b| {
        b.iter(|| black_box(hpcarbon_report::render_all(42)))
    });
    g.finish();
}

criterion_group!(benches, table_rendering, full_report);
criterion_main!(benches);
