//! Benches for the serving layer: the cached vs uncached estimate path
//! through [`EstimateService::handle`], plus the pure cache and HTTP
//! parsing costs.
//!
//! `serve/estimate_cached_hit` and `serve/estimate_uncached` measure the
//! same handler on the same request body — the only difference is the
//! cache capacity (primed 64-entry cache vs capacity 0). Their ratio is
//! the cache-hit speedup, a **machine-independent contract** the bench
//! gate holds at ≥ 5x (`ci/bench_gate.sh`, `BENCH_GATE_MIN_CACHE_SPEEDUP`);
//! in practice a hit skips a multi-millisecond simulation for
//! microseconds of parse + lookup + emission, so the observed ratio is
//! orders of magnitude above the gate.

use criterion::{criterion_group, criterion_main, Criterion};
use hpcarbon_api::{EstimateRequest, Estimator, SystemId};
use hpcarbon_grid::regions::OperatorId;
use hpcarbon_server::http::{read_request, RequestParser};
use hpcarbon_server::{EstimateService, HttpRequest, Server, ServerConfig, ShardedLru};
use std::hint::black_box;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// The benchmark workload: the paper-baseline Frontier/GB request at the
/// sweep's fast job count (the smoke fixtures' shape).
fn request_body() -> String {
    let mut r = EstimateRequest::paper_baseline(SystemId::Frontier, OperatorId::Eso);
    r.jobs = 40;
    r.to_json()
}

fn post(body: &str) -> HttpRequest {
    HttpRequest {
        method: "POST".into(),
        target: "/v1/estimate".into(),
        body: body.as_bytes().to_vec(),
        keep_alive: true,
    }
}

fn estimate_paths(c: &mut Criterion) {
    let body = request_body();
    let req = post(&body);

    // Capacity 0 disables the cache: every call runs the estimator.
    let uncached = EstimateService::new(Estimator::builder().build(), 0);
    c.bench_function("serve/estimate_uncached", |b| {
        b.iter(|| black_box(uncached.handle(&req)))
    });

    // Primed cache: every call is parse + canonical key + hit + emit.
    let cached = EstimateService::new(Estimator::builder().build(), 64);
    let primed = cached.handle(&req);
    assert_eq!(primed.status, 200);
    c.bench_function("serve/estimate_cached_hit", |b| {
        b.iter(|| black_box(cached.handle(&req)))
    });
}

fn cache_ops(c: &mut Criterion) {
    // The raw shard cost at serving shape: ~canonical-key-sized string
    // keys, Arc'd values, a mixed get/insert pattern.
    let cache: ShardedLru<u64> = ShardedLru::new(1024);
    let keys: Vec<String> = (0..256)
        .map(|i| format!("{}-{i}", request_body()))
        .collect();
    for (i, k) in keys.iter().enumerate() {
        cache.insert(k.clone(), i as u64);
    }
    let mut i = 0;
    c.bench_function("serve/cache_get_hit", |b| {
        b.iter(|| {
            i = (i + 1) % keys.len();
            black_box(cache.get(&keys[i]))
        })
    });
}

fn http_parse(c: &mut Criterion) {
    let body = request_body();
    let wire = format!(
        "POST /v1/estimate HTTP/1.1\r\ncontent-type: application/json\r\ncontent-length: {}\r\n\r\n{}",
        body.len(),
        body
    );
    c.bench_function("serve/http_parse_request", |b| {
        b.iter(|| {
            let mut cursor = std::io::Cursor::new(wire.as_bytes());
            black_box(read_request(&mut cursor, 1 << 20).unwrap())
        })
    });

    // The event loop's path: the same wire bytes arriving as the 16 KiB
    // read chunks the kernel hands a readiness loop, fed incrementally.
    c.bench_function("serve/http_parse_incremental", |b| {
        b.iter(|| {
            let mut parser = RequestParser::new(1 << 20);
            let mut out = None;
            for chunk in wire.as_bytes().chunks(1024) {
                parser.feed(chunk);
                if let Ok(Some(req)) = parser.poll() {
                    out = Some(req);
                }
            }
            black_box(out.unwrap())
        })
    });
}

/// The on-loop fast path: a hot rendered-response lookup — exactly what a
/// shard pays per cache-hit request before copying the Arc'd bytes out.
fn hot_response(c: &mut Criterion) {
    let body = request_body();
    let service = EstimateService::new(Estimator::builder().build(), 64);
    let primed = service.handle(&post(&body));
    assert_eq!(primed.status, 200);
    assert!(
        service.try_hot(body.as_bytes()).is_some(),
        "the handled request must prime the hot rendered-response cache"
    );
    c.bench_function("serve/hot_response_hit", |b| {
        b.iter(|| black_box(service.try_hot(body.as_bytes()).unwrap()))
    });
}

/// Reads one HTTP/1.1 response off a keep-alive connection; returns the
/// body length as a liveness token for `black_box`.
fn read_keep_alive_response(r: &mut BufReader<TcpStream>) -> usize {
    let mut status = String::new();
    r.read_line(&mut status).unwrap();
    assert!(status.starts_with("HTTP/1.1 200"), "{status}");
    let mut len = 0usize;
    loop {
        let mut header = String::new();
        r.read_line(&mut header).unwrap();
        if header == "\r\n" {
            break;
        }
        if let Some(v) = header.to_ascii_lowercase().strip_prefix("content-length:") {
            len = v.trim().parse().unwrap();
        }
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body).unwrap();
    len
}

/// Full socket roundtrip through the epoll event loop on a keep-alive
/// connection with a primed cache: write + readiness wakeup + incremental
/// parse + hot-response hit + flush + read. This is the serve-path p50 a
/// loadgen client observes once the cache is warm.
fn event_loop_roundtrip(c: &mut Criterion) {
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            shards: 1,
            workers: 1,
            cache_capacity: 64,
            ..ServerConfig::default()
        },
    )
    .expect("bind an ephemeral port");
    let addr = server.local_addr().unwrap();
    let handle = server.shutdown_handle();
    let join = std::thread::spawn(move || server.run().unwrap());

    let body = request_body();
    let wire = format!(
        "POST /v1/estimate HTTP/1.1\r\ncontent-type: application/json\r\ncontent-length: {}\r\n\r\n{}",
        body.len(),
        body
    );
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.set_nodelay(true).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    // Prime: the first roundtrip computes and caches; iterations then
    // measure the steady-state hot path.
    stream.write_all(wire.as_bytes()).unwrap();
    read_keep_alive_response(&mut reader);

    c.bench_function("serve/event_loop_roundtrip", |b| {
        b.iter(|| {
            stream.write_all(wire.as_bytes()).unwrap();
            black_box(read_keep_alive_response(&mut reader))
        })
    });

    drop(stream);
    drop(reader);
    handle.shutdown();
    join.join().unwrap();
}

criterion_group!(
    benches,
    estimate_paths,
    cache_ops,
    http_parse,
    hot_response,
    event_loop_roundtrip
);
criterion_main!(benches);
