//! Benches for the serving layer: the cached vs uncached estimate path
//! through [`EstimateService::handle`], plus the pure cache and HTTP
//! parsing costs.
//!
//! `serve/estimate_cached_hit` and `serve/estimate_uncached` measure the
//! same handler on the same request body — the only difference is the
//! cache capacity (primed 64-entry cache vs capacity 0). Their ratio is
//! the cache-hit speedup, a **machine-independent contract** the bench
//! gate holds at ≥ 5x (`ci/bench_gate.sh`, `BENCH_GATE_MIN_CACHE_SPEEDUP`);
//! in practice a hit skips a multi-millisecond simulation for
//! microseconds of parse + lookup + emission, so the observed ratio is
//! orders of magnitude above the gate.

use criterion::{criterion_group, criterion_main, Criterion};
use hpcarbon_api::{EstimateRequest, Estimator, SystemId};
use hpcarbon_grid::regions::OperatorId;
use hpcarbon_server::http::read_request;
use hpcarbon_server::{EstimateService, HttpRequest, ShardedLru};
use std::hint::black_box;

/// The benchmark workload: the paper-baseline Frontier/GB request at the
/// sweep's fast job count (the smoke fixtures' shape).
fn request_body() -> String {
    let mut r = EstimateRequest::paper_baseline(SystemId::Frontier, OperatorId::Eso);
    r.jobs = 40;
    r.to_json()
}

fn post(body: &str) -> HttpRequest {
    HttpRequest {
        method: "POST".into(),
        target: "/v1/estimate".into(),
        body: body.as_bytes().to_vec(),
        keep_alive: true,
    }
}

fn estimate_paths(c: &mut Criterion) {
    let body = request_body();
    let req = post(&body);

    // Capacity 0 disables the cache: every call runs the estimator.
    let uncached = EstimateService::new(Estimator::builder().build(), 0);
    c.bench_function("serve/estimate_uncached", |b| {
        b.iter(|| black_box(uncached.handle(&req)))
    });

    // Primed cache: every call is parse + canonical key + hit + emit.
    let cached = EstimateService::new(Estimator::builder().build(), 64);
    let primed = cached.handle(&req);
    assert_eq!(primed.status, 200);
    c.bench_function("serve/estimate_cached_hit", |b| {
        b.iter(|| black_box(cached.handle(&req)))
    });
}

fn cache_ops(c: &mut Criterion) {
    // The raw shard cost at serving shape: ~canonical-key-sized string
    // keys, Arc'd values, a mixed get/insert pattern.
    let cache: ShardedLru<u64> = ShardedLru::new(1024);
    let keys: Vec<String> = (0..256)
        .map(|i| format!("{}-{i}", request_body()))
        .collect();
    for (i, k) in keys.iter().enumerate() {
        cache.insert(k.clone(), i as u64);
    }
    let mut i = 0;
    c.bench_function("serve/cache_get_hit", |b| {
        b.iter(|| {
            i = (i + 1) % keys.len();
            black_box(cache.get(&keys[i]))
        })
    });
}

fn http_parse(c: &mut Criterion) {
    let body = request_body();
    let wire = format!(
        "POST /v1/estimate HTTP/1.1\r\ncontent-type: application/json\r\ncontent-length: {}\r\n\r\n{}",
        body.len(),
        body
    );
    c.bench_function("serve/http_parse_request", |b| {
        b.iter(|| {
            let mut cursor = std::io::Cursor::new(wire.as_bytes());
            black_box(read_request(&mut cursor, 1 << 20).unwrap())
        })
    });
}

criterion_group!(benches, estimate_paths, cache_ops, http_parse);
criterion_main!(benches);
