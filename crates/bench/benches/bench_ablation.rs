//! Ablation benches for the design choices DESIGN.md calls out: fab-yield
//! sensitivity, PUE sensitivity, packaging-model variants and the
//! parallel-vs-sequential trace synthesis.

use criterion::{criterion_group, criterion_main, Criterion};
use hpcarbon_core::db::ProcessNode;
use hpcarbon_core::embodied::{
    default_fab_yield, packaging_from_ics, packaging_from_ratio, processor_manufacturing,
};
use hpcarbon_core::operational::{operational_carbon, Pue};
use hpcarbon_grid::regions::OperatorId;
use hpcarbon_grid::sim::simulate_year;
use hpcarbon_units::{CarbonIntensity, Energy, Fraction, SiliconArea};
use std::hint::black_box;

fn yield_sensitivity(c: &mut Criterion) {
    // The paper fixes yield at 0.875; this sweep quantifies the model's
    // sensitivity to that assumption.
    c.bench_function("ablation/yield_sweep_eq3", |b| {
        let area = SiliconArea::from_mm2(826.0);
        let d = ProcessNode::N7.fab_densities();
        b.iter(|| {
            for y in [0.5, 0.6, 0.7, 0.8, 0.875, 0.95] {
                black_box(processor_manufacturing(d, area, Fraction::new_unchecked(y)));
            }
        })
    });
    // Reference point: the paper's constant.
    c.bench_function("ablation/yield_default", |b| {
        let area = SiliconArea::from_mm2(826.0);
        let d = ProcessNode::N7.fab_densities();
        b.iter(|| black_box(processor_manufacturing(d, area, default_fab_yield())))
    });
}

fn pue_sensitivity(c: &mut Criterion) {
    c.bench_function("ablation/pue_sweep_eq6", |b| {
        let e = Energy::from_mwh(10.0);
        let i = CarbonIntensity::from_g_per_kwh(200.0);
        b.iter(|| {
            for pue in [1.03, 1.1, 1.2, 1.4, 1.6, 2.0] {
                black_box(operational_carbon(e, Pue::new(pue), i));
            }
        })
    });
}

fn packaging_models(c: &mut Criterion) {
    // Eq. 5 per-IC counting vs the storage ratio model.
    c.bench_function("ablation/packaging_ic_vs_ratio", |b| {
        let mfg = hpcarbon_units::CarbonMass::from_kg(20.0);
        b.iter(|| {
            black_box(packaging_from_ics(21));
            black_box(packaging_from_ratio(mfg, 0.0204));
        })
    });
}

fn parallel_vs_sequential_traces(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/trace_synthesis");
    g.sample_size(10);
    g.bench_function("sequential_7_regions", |b| {
        b.iter(|| {
            for op in OperatorId::ALL {
                black_box(simulate_year(op, 2021, 42));
            }
        })
    });
    g.bench_function("parallel_7_regions", |b| {
        b.iter(|| black_box(hpcarbon_grid::sim::simulate_all_regions(2021, 42)))
    });
    g.finish();
}

criterion_group!(
    benches,
    yield_sensitivity,
    pue_sensitivity,
    packaging_models,
    parallel_vs_sequential_traces
);
criterion_main!(benches);
