//! Benches for the carbon-shifting subsystem: trace generation (dispatch
//! vs synthetic harmonics), shifting-policy simulations on the indexed
//! hot path, and the end-to-end shifting sweep grid.

use criterion::{criterion_group, criterion_main, Criterion};
use hpcarbon_grid::{simulate_year, synthesize_year, OperatorId};
use hpcarbon_sched::{Cluster, JobTraceGenerator, Policy, Simulation};
use hpcarbon_sweep::{ScenarioGrid, Sweep, SweepConfig};
use std::hint::black_box;

fn trace_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("shifting/trace");
    g.bench_function("dispatch_year", |b| {
        b.iter(|| black_box(simulate_year(OperatorId::Eso, 2021, 7)))
    });
    g.bench_function("synthetic_year", |b| {
        b.iter(|| black_box(synthesize_year(OperatorId::Eso, 2021, 7)))
    });
    g.finish();
}

fn policy_runs(c: &mut Criterion) {
    let gb = Cluster::new("gb", simulate_year(OperatorId::Eso, 2021, 7), 96);
    let ca = Cluster::new("ca", simulate_year(OperatorId::Ciso, 2021, 7), 96);
    let jobs = JobTraceGenerator::default_rates().generate(150, 9);
    let mut g = c.benchmark_group("shifting/sim");
    for (name, policy) in [
        ("fifo", Policy::Fifo),
        (
            "greenest_window_24h",
            Policy::GreenestWindow { horizon_hours: 24 },
        ),
        (
            "temporal_shift_24h",
            Policy::TemporalShift { slack_hours: 24 },
        ),
        (
            "spatio_temporal_24h",
            Policy::SpatioTemporal { slack_hours: 24 },
        ),
    ] {
        let clusters = vec![gb.clone(), ca.clone()];
        g.bench_function(name, |b| {
            b.iter(|| {
                black_box(
                    Simulation::multi_region(clusters.clone(), policy, &jobs)
                        .run()
                        .total_carbon,
                )
            })
        });
    }
    g.finish();
}

fn shifting_sweep(c: &mut Criterion) {
    let grid = ScenarioGrid::shifting();
    let cfg = SweepConfig::fast();
    let mut g = c.benchmark_group("shifting/sweep");
    g.sample_size(3);
    g.bench_function("grid_20_scenarios", |b| {
        b.iter(|| {
            black_box(
                Sweep::over(&grid)
                    .config(cfg)
                    .run()
                    .expect("sinkless sweep cannot fail"),
            )
        })
    });
    g.finish();
}

criterion_group!(benches, trace_generation, policy_runs, shifting_sweep);
criterion_main!(benches);
