//! Benches for the embodied-carbon artifacts: Figs. 1, 2, 3 and 5.

use criterion::{criterion_group, criterion_main, Criterion};
use hpcarbon_core::db::{all_parts, PartId};
use hpcarbon_core::systems::HpcSystem;
use std::hint::black_box;

fn fig1(c: &mut Criterion) {
    c.bench_function("fig1/embodied_gpu_cpu_chart", |b| {
        b.iter(|| black_box(hpcarbon_report::figures::fig1()))
    });
    c.bench_function("fig1/single_part_embodied", |b| {
        b.iter(|| black_box(PartId::GpuA100Pcie40.spec().embodied()))
    });
}

fn fig2(c: &mut Criterion) {
    c.bench_function("fig2/memory_storage_chart", |b| {
        b.iter(|| black_box(hpcarbon_report::figures::fig2()))
    });
}

fn fig3(c: &mut Criterion) {
    c.bench_function("fig3/packaging_split_chart", |b| {
        b.iter(|| black_box(hpcarbon_report::figures::fig3()))
    });
    c.bench_function("fig3/catalog_breakdowns", |b| {
        b.iter(|| {
            for p in all_parts() {
                black_box(p.spec().embodied().packaging_share());
            }
        })
    });
}

fn fig5(c: &mut Criterion) {
    c.bench_function("fig5/system_composition_chart", |b| {
        b.iter(|| black_box(hpcarbon_report::figures::fig5()))
    });
    c.bench_function("fig5/frontier_inventory_rollup", |b| {
        let frontier = HpcSystem::frontier();
        b.iter(|| black_box(frontier.embodied_by_class()))
    });
}

criterion_group!(benches, fig1, fig2, fig3, fig5);
criterion_main!(benches);
