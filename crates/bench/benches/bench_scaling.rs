//! Benches for Fig. 4: multi-GPU scaling of the workload model.

use criterion::{criterion_group, criterion_main, Criterion};
use hpcarbon_workloads::benchmarks::Suite;
use hpcarbon_workloads::nodes::NodeGen;
use hpcarbon_workloads::perf;
use std::hint::black_box;

fn fig4(c: &mut Criterion) {
    c.bench_function("fig4/suite_scaling_1_2_4", |b| {
        b.iter(|| {
            for suite in Suite::ALL {
                for n in [1u32, 2, 4] {
                    black_box(perf::suite_scaling(suite, NodeGen::V100Node, n));
                }
            }
        })
    });
    c.bench_function("fig4/node_embodied_sweep", |b| {
        b.iter(|| {
            for n in [1u32, 2, 4] {
                black_box(NodeGen::V100Node.embodied_with_gpus(n));
            }
        })
    });
    c.bench_function("fig4/full_artifact", |b| {
        b.iter(|| black_box(hpcarbon_report::figures::fig4()))
    });
}

fn throughput_model(c: &mut Criterion) {
    let benches = hpcarbon_workloads::benchmarks::ALL_BENCHMARKS;
    c.bench_function("fig4/roofline_all_benchmarks", |b| {
        b.iter(|| {
            for bench in &benches {
                for gpu in hpcarbon_workloads::GpuModel::ALL {
                    black_box(perf::sample_time(bench, gpu));
                }
            }
        })
    });
}

criterion_group!(benches, fig4, throughput_model);
criterion_main!(benches);
