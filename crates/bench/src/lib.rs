//! Criterion benchmark crate for the sustainable-hpc workspace.
//! See the `benches/` directory; this library is intentionally empty.
