//! Diagnostics: the `{file}:{line}: {rule}: {message}` contract.
//!
//! Like the catalog validator, hpclint reports **everything at once**
//! in a deterministic order — a contributor fixes the whole batch, not
//! one diagnostic per run. Ordering is (file, line, rule id, message);
//! file paths are workspace-relative with `/` separators on every
//! platform so CI and local runs print identical bytes.

use std::fmt;

/// The closed set of rules. `docs/LINTS.md` is the operator-facing
/// catalog; the ids here are the strings used in diagnostics and in
/// `// lint: allow(<rule>)` suppressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleId {
    /// `Instant::now` / `SystemTime::now` in a deterministic crate.
    WallClockInDeterministicCrate,
    /// `HashMap` / `HashSet` in a deterministic crate.
    HashIterationOrder,
    /// `unsafe` outside the audited modules, or without `// SAFETY:`.
    UnsafeNeedsSafetyComment,
    /// `unwrap` / `expect` / `panic!` / `todo!` / `unimplemented!` in
    /// library code.
    PanicInLibrary,
    /// A frozen `Display` format string drifted from the registry.
    FrozenDisplayDrift,
    /// A `// lint: allow(…)` comment that is malformed, names an
    /// unknown rule, or lacks the required justification.
    BadSuppression,
}

/// Every rule, in diagnostic-sort order.
pub const ALL_RULES: [RuleId; 6] = [
    RuleId::WallClockInDeterministicCrate,
    RuleId::HashIterationOrder,
    RuleId::UnsafeNeedsSafetyComment,
    RuleId::PanicInLibrary,
    RuleId::FrozenDisplayDrift,
    RuleId::BadSuppression,
];

impl RuleId {
    /// The stable diagnostic / suppression id.
    pub fn id(self) -> &'static str {
        match self {
            RuleId::WallClockInDeterministicCrate => "wall-clock-in-deterministic-crate",
            RuleId::HashIterationOrder => "hash-iteration-order",
            RuleId::UnsafeNeedsSafetyComment => "unsafe-needs-safety-comment",
            RuleId::PanicInLibrary => "panic-in-library",
            RuleId::FrozenDisplayDrift => "frozen-display-drift",
            RuleId::BadSuppression => "bad-suppression",
        }
    }

    /// Resolves a suppression/CLI rule name. [`RuleId::BadSuppression`]
    /// is deliberately not nameable: a malformed suppression must not
    /// be suppressible by another suppression.
    pub fn parse(name: &str) -> Option<RuleId> {
        ALL_RULES
            .iter()
            .copied()
            .find(|r| r.id() == name && *r != RuleId::BadSuppression)
    }

    /// One-line summary used by `--list-rules`.
    pub fn summary(self) -> &'static str {
        match self {
            RuleId::WallClockInDeterministicCrate => {
                "no Instant::now / SystemTime::now outside the server/loadgen/bench allowlist"
            }
            RuleId::HashIterationOrder => {
                "no HashMap/HashSet in deterministic crates; use BTreeMap/BTreeSet or a sorted Vec"
            }
            RuleId::UnsafeNeedsSafetyComment => {
                "unsafe only in the audited modules, each block/fn preceded by // SAFETY:"
            }
            RuleId::PanicInLibrary => {
                "no unwrap/expect/panic!/todo!/unimplemented! in library code outside tests"
            }
            RuleId::FrozenDisplayDrift => {
                "frozen ApiError/CatalogError Display strings must match the committed registry"
            }
            RuleId::BadSuppression => {
                "lint: allow(...) must name a known rule and carry `-- <justification>`"
            }
        }
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// One finding, anchored to a workspace-relative file and 1-based line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Which rule fired.
    pub rule: RuleId,
    /// The human-readable finding.
    pub message: String,
}

impl Diagnostic {
    pub(crate) fn new(file: &str, line: usize, rule: RuleId, message: String) -> Diagnostic {
        Diagnostic {
            file: file.to_string(),
            line,
            rule,
            message,
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Sorts diagnostics into the reporting order the contract promises:
/// by file, then line, then rule id, then message.
pub fn sort(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.rule.id(), a.message.as_str()).cmp(&(
            b.file.as_str(),
            b.line,
            b.rule.id(),
            b.message.as_str(),
        ))
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_contract_is_line_anchored() {
        let d = Diagnostic::new(
            "crates/core/src/rfp.rs",
            42,
            RuleId::PanicInLibrary,
            "`.unwrap()` on a library path".to_string(),
        );
        assert_eq!(
            d.to_string(),
            "crates/core/src/rfp.rs:42: panic-in-library: `.unwrap()` on a library path"
        );
    }

    #[test]
    fn sort_is_file_line_rule_message() {
        let mk = |f: &str, l: usize, r: RuleId| Diagnostic::new(f, l, r, "m".to_string());
        let mut v = vec![
            mk("b.rs", 1, RuleId::PanicInLibrary),
            mk("a.rs", 9, RuleId::PanicInLibrary),
            mk("a.rs", 2, RuleId::WallClockInDeterministicCrate),
            mk("a.rs", 2, RuleId::HashIterationOrder),
        ];
        sort(&mut v);
        assert_eq!(v[0].file, "a.rs");
        assert_eq!(v[0].line, 2);
        assert_eq!(v[0].rule, RuleId::HashIterationOrder);
        assert_eq!(v[1].rule, RuleId::WallClockInDeterministicCrate);
        assert_eq!(v[3].file, "b.rs");
    }

    #[test]
    fn bad_suppression_is_not_nameable() {
        assert_eq!(RuleId::parse("bad-suppression"), None);
        assert_eq!(
            RuleId::parse("panic-in-library"),
            Some(RuleId::PanicInLibrary)
        );
        assert_eq!(RuleId::parse("no-such-rule"), None);
    }
}
