//! The frozen-`Display` registry.
//!
//! `ApiError`, `ParseError`, and `CatalogError` render with **frozen**
//! format strings: sweep CSV/JSON error cells, server error payloads,
//! and the catalog fixture tests all pin them byte-for-byte. The
//! committed registry (`crates/lint/display_registry.txt`) lists every
//! format string those `Display` impls are allowed to contain, in
//! source order; the `frozen-display-drift` rule re-extracts them from
//! the tree on every run and reports any divergence.
//!
//! File format, one entry per line:
//!
//! ```text
//! # comment
//! <TypeName> <format string literal exactly as written, quotes included>
//! ```
//!
//! Regenerate with `hpclint --dump-display` after an *intentional*
//! contract change — and expect the golden tests downstream of the
//! strings to need the same deliberate update.

use std::collections::BTreeMap;

/// Parsed registry: type name → format strings in impl order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DisplayRegistry {
    entries: BTreeMap<String, Vec<String>>,
}

impl DisplayRegistry {
    /// Parses the registry file. Errors carry the offending 1-based
    /// line for the CLI to report.
    pub fn parse(text: &str) -> Result<DisplayRegistry, String> {
        let mut entries: BTreeMap<String, Vec<String>> = BTreeMap::new();
        for (i, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let Some((ty, lit)) = line.split_once(' ') else {
                return Err(format!(
                    "display registry line {}: expected `<Type> \"<format string>\"`, got \"{line}\"",
                    i + 1
                ));
            };
            let lit = lit.trim_start();
            if !lit.starts_with('"') || !lit.ends_with('"') || lit.len() < 2 {
                return Err(format!(
                    "display registry line {}: format string must be quoted as written in source",
                    i + 1
                ));
            }
            entries
                .entry(ty.to_string())
                .or_default()
                .push(lit.to_string());
        }
        Ok(DisplayRegistry { entries })
    }

    /// The registered type names, sorted.
    pub fn types(&self) -> impl Iterator<Item = &str> {
        self.entries.keys().map(String::as_str)
    }

    /// Is `ty` a frozen type?
    pub fn contains(&self, ty: &str) -> bool {
        self.entries.contains_key(ty)
    }

    /// The frozen format strings of `ty`, in impl order.
    pub fn strings(&self, ty: &str) -> &[String] {
        self.entries.get(ty).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Renders extracted strings in registry file format — the
    /// `--dump-display` output, suitable for committing verbatim.
    pub fn render(extracted: &BTreeMap<String, Vec<String>>) -> String {
        let mut out = String::from(
            "# hpclint display registry — the frozen Display format strings.\n\
             # One `<Type> <literal>` per line, literals exactly as written in\n\
             # source (quotes included), in impl order. Regenerate with\n\
             # `hpclint --dump-display` after an intentional contract change;\n\
             # see docs/LINTS.md#frozen-display-drift.\n",
        );
        for (ty, lits) in extracted {
            out.push('\n');
            for lit in lits {
                out.push_str(ty);
                out.push(' ');
                out.push_str(lit);
                out.push('\n');
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_types_in_order_and_skips_comments() {
        let text = "# header\n\nApiError \"a {x}\"\nApiError \"b\"\nCatalogError \"{file}:{line}: {message}\"\n";
        let r = DisplayRegistry::parse(text).expect("parses");
        assert_eq!(r.strings("ApiError"), ["\"a {x}\"", "\"b\""]);
        assert_eq!(r.strings("CatalogError").len(), 1);
        assert!(r.contains("ApiError"));
        assert!(!r.contains("SimError"));
    }

    #[test]
    fn rejects_unquoted_and_malformed_lines() {
        assert!(DisplayRegistry::parse("ApiError bare-words").is_err());
        assert!(DisplayRegistry::parse("JustOneToken").is_err());
    }

    #[test]
    fn round_trips_through_render() {
        let mut m = BTreeMap::new();
        m.insert(
            "ApiError".to_string(),
            vec!["\"x {y}\"".to_string(), "\"z\"".to_string()],
        );
        let rendered = DisplayRegistry::render(&m);
        let parsed = DisplayRegistry::parse(&rendered).expect("round-trips");
        assert_eq!(parsed.strings("ApiError"), ["\"x {y}\"", "\"z\""]);
    }
}
