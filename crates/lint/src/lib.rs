//! `hpclint` — workspace-invariant static analysis for sustainable-hpc.
//!
//! The repo's headline guarantee is *byte-identical output across
//! thread counts, shards, and cache states*. Golden tests catch a
//! violation after it ships as wrong bytes; this crate catches the
//! **causes** at review time, as named, mechanically-checked rules:
//!
//! | rule | contract enforced |
//! |------|-------------------|
//! | `wall-clock-in-deterministic-crate` | no `Instant::now`/`SystemTime::now` outside server/loadgen/bench |
//! | `hash-iteration-order` | no `HashMap`/`HashSet` in deterministic crates |
//! | `unsafe-needs-safety-comment` | `unsafe` only in the audited modules, each site `// SAFETY:`-annotated |
//! | `panic-in-library` | no `unwrap`/`expect`/`panic!`/`todo!`/`unimplemented!` on library paths |
//! | `frozen-display-drift` | frozen `ApiError`/`CatalogError` `Display` strings match the committed registry |
//!
//! Diagnostics follow the house idiom — reported all at once, in
//! deterministic order, anchored `{file}:{line}: {rule}: {message}` —
//! and the inline suppression `// lint: allow(<rule>) -- <why>`
//! *requires* the justification text. The full catalog, with examples,
//! lives in `docs/LINTS.md`.
//!
//! The analysis is a hand-rolled string/char/comment-aware token
//! scanner ([`lexer`]), not a parser: the vendored-only dependency
//! policy rules out `syn`, and every invariant above is expressible
//! over a flat token stream. The linter runs clean on itself — its own
//! test suite lints `crates/lint` and the whole workspace.
//!
//! ```
//! use hpcarbon_lint::{check_source, DisplayRegistry, FileClass};
//!
//! let registry = DisplayRegistry::default();
//! let diags = check_source(
//!     &FileClass::standalone("demo.rs"),
//!     "fn f(x: Option<u32>) -> u32 { x.unwrap() }",
//!     &registry,
//! );
//! assert_eq!(diags.len(), 1);
//! assert!(diags[0].to_string().starts_with("demo.rs:1: panic-in-library:"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod context;
pub mod diag;
pub mod lexer;
pub mod registry;
pub mod rules;
pub mod suppress;

pub use context::{FileClass, FileKind, NONDETERMINISTIC_CRATES, UNSAFE_ALLOWLIST};
pub use diag::{Diagnostic, RuleId, ALL_RULES};
pub use registry::DisplayRegistry;

use std::collections::BTreeMap;
use std::path::Path;

/// Where the committed display registry lives, workspace-relative.
pub const REGISTRY_PATH: &str = "crates/lint/display_registry.txt";

/// An engine-level failure (I/O, malformed registry) — distinct from
/// diagnostics, which are findings about the *code under analysis*.
#[derive(Debug)]
pub enum EngineError {
    /// A file or directory could not be read.
    Io {
        /// The offending path.
        path: String,
        /// The underlying error.
        err: std::io::Error,
    },
    /// The display registry file is malformed.
    Registry(String),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Io { path, err } => write!(f, "{path}: {err}"),
            EngineError::Registry(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for EngineError {}

/// Lints one in-memory source file under the given classification —
/// the composable core the CLI, the tests, and the fixtures all share.
pub fn check_source(class: &FileClass, src: &str, registry: &DisplayRegistry) -> Vec<Diagnostic> {
    let lexed = lexer::lex(src);
    let mut diags = rules::check_file(class, &lexed, registry);
    diag::sort(&mut diags);
    diags
}

fn read(root: &Path, rel: &str) -> Result<String, EngineError> {
    let path = root.join(rel);
    std::fs::read_to_string(&path).map_err(|err| EngineError::Io {
        path: path.to_string_lossy().into_owned(),
        err,
    })
}

/// Loads the committed display registry from `root`.
pub fn load_registry(root: &Path) -> Result<DisplayRegistry, EngineError> {
    let text = read(root, REGISTRY_PATH)?;
    DisplayRegistry::parse(&text)
        .map_err(|e| EngineError::Registry(format!("{REGISTRY_PATH}: {e}")))
}

/// Lints the whole workspace rooted at `root`: every `.rs` file outside
/// `vendor/`, `target/`, the data `catalog/`, and fixture trees, in
/// deterministic order. Returns sorted diagnostics.
pub fn lint_workspace(
    root: &Path,
    registry: &DisplayRegistry,
) -> Result<Vec<Diagnostic>, EngineError> {
    let files = context::walk_workspace(root).map_err(|err| EngineError::Io {
        path: root.to_string_lossy().into_owned(),
        err,
    })?;
    let mut diags = Vec::new();
    for rel in &files {
        let class = FileClass::classify(rel);
        if class.kind == FileKind::TestLike {
            continue;
        }
        let src = read(root, rel)?;
        let lexed = lexer::lex(&src);
        diags.extend(rules::check_file(&class, &lexed, registry));
    }
    diag::sort(&mut diags);
    Ok(diags)
}

/// Lints explicit paths (relative to `root`), each treated as
/// **standalone deterministic library code** so every rule is live —
/// the mode the golden violation fixtures use.
pub fn lint_paths(
    root: &Path,
    rels: &[String],
    registry: &DisplayRegistry,
) -> Result<Vec<Diagnostic>, EngineError> {
    let mut diags = Vec::new();
    for rel in rels {
        let class = FileClass::standalone(rel);
        let src = read(root, rel)?;
        let lexed = lexer::lex(&src);
        diags.extend(rules::check_file(&class, &lexed, registry));
    }
    diag::sort(&mut diags);
    Ok(diags)
}

/// Re-extracts every registered-shape `Display` impl's format strings
/// from the tree and renders them in registry file format — the
/// `--dump-display` implementation. Only types already present in
/// `registry` are emitted, so adding a frozen type is an explicit edit.
pub fn dump_display(root: &Path, registry: &DisplayRegistry) -> Result<String, EngineError> {
    let files = context::walk_workspace(root).map_err(|err| EngineError::Io {
        path: root.to_string_lossy().into_owned(),
        err,
    })?;
    let mut all: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for rel in &files {
        let class = FileClass::classify(rel);
        if class.kind == FileKind::TestLike {
            continue;
        }
        let src = read(root, rel)?;
        rules::extract_display_strings(&src, &mut all);
    }
    all.retain(|ty, _| registry.contains(ty) || registry.types().next().is_none());
    Ok(DisplayRegistry::render(&all))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_source_sorts_and_renders_the_contract() {
        let reg = DisplayRegistry::default();
        let src = "fn f(x: Option<u32>) {\n    x.unwrap();\n    let t = Instant::now();\n}\n";
        let d = check_source(&FileClass::standalone("demo.rs"), src, &reg);
        assert_eq!(d.len(), 2);
        // Sorted by line: unwrap on 2 before wall clock on 3.
        assert_eq!(d[0].line, 2);
        assert_eq!(d[1].line, 3);
        assert_eq!(
            d[1].to_string(),
            "demo.rs:3: wall-clock-in-deterministic-crate: `Instant::now()` reads the wall \
             clock in a deterministic crate; take time as an input or move the read into the \
             server/loadgen/bench layer"
        );
    }
}
