//! A hand-rolled, string/char/comment-aware Rust token scanner.
//!
//! This is deliberately **not** a parser: every rule hpclint enforces
//! (see [`crate::rules`]) is expressible over a flat token stream plus
//! the comment text, so a full grammar — and with it a `syn` dependency
//! the vendored-only policy forbids — buys nothing. The scanner's one
//! job is to never confuse the inside of a string, char literal, or
//! comment with code: `let s = "unsafe { panic!() }";` must produce a
//! single string token, and `// HashMap is fine to mention here` must
//! land in the comment list, not the token stream.
//!
//! Coverage includes the literal forms real workspace code uses: line
//! and (nested) block comments, doc comments, string / raw string
//! (`r"…"`, `r#"…"#`, any hash depth) / byte string / raw byte string
//! literals, char and byte-char literals with escapes, lifetimes
//! (disambiguated from char literals), numeric literals with suffixes,
//! and multi-byte identifiers.

/// One lexed token. Whitespace and comments never appear here —
/// comments are reported separately as [`Comment`]s.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// An identifier or keyword (`unsafe`, `HashMap`, `expect`, …).
    Ident {
        /// 1-based source line.
        line: usize,
        /// The identifier text.
        text: String,
    },
    /// A single punctuation byte (`.`, `:`, `!`, `(`, `{`, …).
    /// Multi-byte operators arrive as consecutive tokens; the rules
    /// match sequences, so `::` is simply two `:` tokens.
    Punct {
        /// 1-based source line.
        line: usize,
        /// The punctuation character.
        ch: char,
    },
    /// A string literal (any flavor), with the raw source text
    /// including quotes and any `r#` framing.
    Str {
        /// 1-based source line the literal starts on.
        line: usize,
        /// The literal as written, quotes included.
        raw: String,
    },
    /// A char or byte-char literal.
    Char {
        /// 1-based source line.
        line: usize,
    },
    /// A lifetime (`'a`, `'static`).
    Lifetime {
        /// 1-based source line.
        line: usize,
    },
    /// A numeric literal (integers, floats, any radix or suffix).
    Num {
        /// 1-based source line.
        line: usize,
    },
}

impl Tok {
    /// The 1-based source line this token starts on.
    pub fn line(&self) -> usize {
        match self {
            Tok::Ident { line, .. }
            | Tok::Punct { line, .. }
            | Tok::Str { line, .. }
            | Tok::Char { line }
            | Tok::Lifetime { line }
            | Tok::Num { line } => *line,
        }
    }

    /// The identifier text, if this is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match self {
            Tok::Ident { text, .. } => Some(text.as_str()),
            _ => None,
        }
    }

    /// True when this is the punctuation character `ch`.
    pub fn is_punct(&self, want: char) -> bool {
        matches!(self, Tok::Punct { ch, .. } if *ch == want)
    }
}

/// One comment (line, block, or doc), with its text as written —
/// framing (`//`, `///`, `/* */`) included. Block comments spanning
/// several lines report the line they start on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: usize,
    /// 1-based line the comment ends on (equal to `line` for line
    /// comments).
    pub end_line: usize,
    /// The raw comment text.
    pub text: String,
}

/// The result of lexing one file.
#[derive(Debug, Default)]
pub struct LexedFile {
    /// Code tokens, in source order.
    pub tokens: Vec<Tok>,
    /// Comments, in source order.
    pub comments: Vec<Comment>,
}

struct Scanner<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
}

impl<'a> Scanner<'a> {
    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek_at(&self, off: usize) -> Option<u8> {
        self.src.get(self.pos + off).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
        }
        Some(b)
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lexes `src` into tokens and comments. The scanner never fails: byte
/// sequences it cannot classify become single punctuation tokens, which
/// at worst makes a rule not match — it cannot make the inside of a
/// string look like code.
pub fn lex(src: &str) -> LexedFile {
    let mut s = Scanner {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
    };
    let mut out = LexedFile::default();

    while let Some(b) = s.peek() {
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                s.bump();
            }
            b'/' if s.peek_at(1) == Some(b'/') => line_comment(&mut s, &mut out),
            b'/' if s.peek_at(1) == Some(b'*') => block_comment(&mut s, &mut out),
            b'r' | b'b' if starts_prefixed_literal(&s) => prefixed_literal(&mut s, &mut out),
            b'"' => string_literal(&mut s, &mut out, 0),
            b'\'' => quote(&mut s, &mut out),
            b'0'..=b'9' => number(&mut s, &mut out),
            _ if is_ident_start(b) => ident(&mut s, &mut out),
            _ => {
                let line = s.line;
                s.bump();
                out.tokens.push(Tok::Punct {
                    line,
                    ch: char::from(b),
                });
            }
        }
    }
    out
}

fn line_comment(s: &mut Scanner<'_>, out: &mut LexedFile) {
    let line = s.line;
    let start = s.pos;
    while let Some(b) = s.peek() {
        if b == b'\n' {
            break;
        }
        s.bump();
    }
    out.comments.push(Comment {
        line,
        end_line: line,
        text: String::from_utf8_lossy(&s.src[start..s.pos]).into_owned(),
    });
}

fn block_comment(s: &mut Scanner<'_>, out: &mut LexedFile) {
    let line = s.line;
    let start = s.pos;
    s.bump();
    s.bump(); // consume "/*"
    let mut depth = 1usize;
    while depth > 0 {
        match (s.peek(), s.peek_at(1)) {
            (Some(b'/'), Some(b'*')) => {
                s.bump();
                s.bump();
                depth += 1;
            }
            (Some(b'*'), Some(b'/')) => {
                s.bump();
                s.bump();
                depth -= 1;
            }
            (Some(_), _) => {
                s.bump();
            }
            (None, _) => break, // unterminated: tolerate, rustc will complain
        }
    }
    out.comments.push(Comment {
        line,
        end_line: s.line,
        text: String::from_utf8_lossy(&s.src[start..s.pos]).into_owned(),
    });
}

/// Does the scanner sit on `r"`, `r#`, `b"`, `b'`, `br"`, or `br#`?
fn starts_prefixed_literal(s: &Scanner<'_>) -> bool {
    let b0 = s.peek();
    let b1 = s.peek_at(1);
    match (b0, b1) {
        (Some(b'r'), Some(b'"' | b'#')) => true,
        (Some(b'b'), Some(b'"' | b'\'')) => true,
        (Some(b'b'), Some(b'r')) => matches!(s.peek_at(2), Some(b'"' | b'#')),
        _ => false,
    }
}

fn prefixed_literal(s: &mut Scanner<'_>, out: &mut LexedFile) {
    // Consume the prefix letters, then dispatch on what follows.
    if s.peek() == Some(b'b') {
        s.bump();
        if s.peek() == Some(b'\'') {
            // Byte-char literal b'x'.
            let line = s.line;
            char_literal_body(s);
            out.tokens.push(Tok::Char { line });
            return;
        }
    }
    if s.peek() == Some(b'r') {
        s.bump();
        let mut hashes = 0usize;
        while s.peek() == Some(b'#') {
            s.bump();
            hashes += 1;
        }
        // A lone `r#ident` is a raw identifier, not a string.
        if s.peek() != Some(b'"') {
            let line = s.line;
            let start = s.pos;
            while let Some(b) = s.peek() {
                if !is_ident_continue(b) {
                    break;
                }
                s.bump();
            }
            out.tokens.push(Tok::Ident {
                line,
                text: String::from_utf8_lossy(&s.src[start..s.pos]).into_owned(),
            });
            return;
        }
        raw_string_body(s, out, hashes);
        return;
    }
    // Plain b"…" byte string.
    string_literal(s, out, 0);
}

fn raw_string_body(s: &mut Scanner<'_>, out: &mut LexedFile, hashes: usize) {
    let line = s.line;
    let start = s.pos.saturating_sub(hashes + 1); // include r##… framing
    s.bump(); // opening quote
    loop {
        match s.bump() {
            None => break,
            Some(b'"') => {
                let mut seen = 0usize;
                while seen < hashes && s.peek() == Some(b'#') {
                    s.bump();
                    seen += 1;
                }
                if seen == hashes {
                    break;
                }
            }
            Some(_) => {}
        }
    }
    out.tokens.push(Tok::Str {
        line,
        raw: String::from_utf8_lossy(&s.src[start..s.pos]).into_owned(),
    });
}

fn string_literal(s: &mut Scanner<'_>, out: &mut LexedFile, _hashes: usize) {
    let line = s.line;
    let start = s.pos;
    s.bump(); // opening quote
    loop {
        match s.bump() {
            None | Some(b'"') => break,
            Some(b'\\') => {
                s.bump(); // escaped byte, whatever it is
            }
            Some(_) => {}
        }
    }
    out.tokens.push(Tok::Str {
        line,
        raw: String::from_utf8_lossy(&s.src[start..s.pos]).into_owned(),
    });
}

/// `'` begins either a char literal or a lifetime. The disambiguation
/// mirrors rustc's: `'\…'` and `'x'` are chars; `'ident` not followed
/// by a closing quote is a lifetime.
fn quote(s: &mut Scanner<'_>, out: &mut LexedFile) {
    let line = s.line;
    match (s.peek_at(1), s.peek_at(2)) {
        (Some(b'\\'), _) => {
            char_literal_body(s);
            out.tokens.push(Tok::Char { line });
        }
        (Some(c), Some(b'\'')) if c != b'\'' => {
            // 'x' — a simple one-byte char literal.
            s.bump();
            s.bump();
            s.bump();
            out.tokens.push(Tok::Char { line });
        }
        (Some(c), _) if c >= 0x80 => {
            // A multi-byte UTF-8 scalar ('é') is a char literal, never a
            // lifetime — scan to the closing quote.
            char_literal_body(s);
            out.tokens.push(Tok::Char { line });
        }
        (Some(c), _) if is_ident_start(c) => {
            // Lifetime: consume the quote + identifier.
            s.bump();
            while let Some(b) = s.peek() {
                if !is_ident_continue(b) {
                    break;
                }
                s.bump();
            }
            out.tokens.push(Tok::Lifetime { line });
        }
        _ => {
            // Multi-byte char literal ('\u{1F600}' handled above via the
            // escape arm; UTF-8 chars like 'é' land here): scan to the
            // closing quote.
            char_literal_body(s);
            out.tokens.push(Tok::Char { line });
        }
    }
}

fn char_literal_body(s: &mut Scanner<'_>) {
    s.bump(); // opening quote
    loop {
        match s.bump() {
            None | Some(b'\'') => break,
            Some(b'\\') => {
                s.bump();
            }
            Some(_) => {}
        }
    }
}

fn number(s: &mut Scanner<'_>, out: &mut LexedFile) {
    let line = s.line;
    // Consume digits, radix prefixes, underscores, exponents, suffixes,
    // and a fractional part. `1.method()` must not swallow the dot: only
    // take `.` when a digit follows.
    while let Some(b) = s.peek() {
        match b {
            b'e' | b'E' => {
                s.bump();
                if matches!(s.peek(), Some(b'+' | b'-')) {
                    s.bump();
                }
            }
            b'0'..=b'9' | b'a'..=b'f' | b'A'..=b'F' | b'x' | b'o' | b'_' | b'i' | b'u' => {
                s.bump();
            }
            b'.' if matches!(s.peek_at(1), Some(b'0'..=b'9')) => {
                s.bump();
            }
            _ if is_ident_continue(b) => {
                s.bump(); // suffix tail (f64, usize, …)
            }
            _ => break,
        }
    }
    out.tokens.push(Tok::Num { line });
}

fn ident(s: &mut Scanner<'_>, out: &mut LexedFile) {
    let line = s.line;
    let start = s.pos;
    while let Some(b) = s.peek() {
        if !is_ident_continue(b) {
            break;
        }
        s.bump();
    }
    out.tokens.push(Tok::Ident {
        line,
        text: String::from_utf8_lossy(&s.src[start..s.pos]).into_owned(),
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter_map(|t| t.ident().map(str::to_string))
            .collect()
    }

    #[test]
    fn code_inside_strings_is_not_tokenized() {
        let l = lex("let s = \"unsafe { panic!() } HashMap\";");
        assert_eq!(
            idents("let s = \"unsafe { panic!() } HashMap\";"),
            ["let", "s"]
        );
        assert_eq!(
            l.tokens
                .iter()
                .filter(|t| matches!(t, Tok::Str { .. }))
                .count(),
            1
        );
    }

    #[test]
    fn raw_strings_with_hashes_and_embedded_quotes() {
        let src = "let s = r#\"a \"quoted\" unsafe\"#; let t = 1;";
        assert_eq!(idents(src), ["let", "s", "let", "t"]);
    }

    #[test]
    fn comments_are_collected_not_tokenized() {
        let src = "// SAFETY: fine\nlet x = 1; /* block\nunsafe */ let y = 2;";
        let l = lex(src);
        assert_eq!(l.comments.len(), 2);
        assert_eq!(l.comments[0].line, 1);
        assert!(l.comments[0].text.contains("SAFETY:"));
        assert_eq!(l.comments[1].line, 2);
        assert_eq!(l.comments[1].end_line, 3);
        assert!(!idents(src).contains(&"unsafe".to_string()));
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner */ still comment */ let z = 3;";
        assert_eq!(idents(src), ["let", "z"]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> char { 'x' }";
        let l = lex(src);
        let lifetimes = l
            .tokens
            .iter()
            .filter(|t| matches!(t, Tok::Lifetime { .. }))
            .count();
        let chars = l
            .tokens
            .iter()
            .filter(|t| matches!(t, Tok::Char { .. }))
            .count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 1);
    }

    #[test]
    fn char_escapes_do_not_derail() {
        let src = "let q = '\\''; let n = '\\n'; let u = '\\u{1F600}'; done();";
        assert_eq!(idents(src), ["let", "q", "let", "n", "let", "u", "done"]);
    }

    #[test]
    fn byte_literals() {
        let src = "let a = b'x'; let b2 = b\"bytes\"; let c = br#\"raw \" bytes\"#; end();";
        assert_eq!(idents(src), ["let", "a", "let", "b2", "let", "c", "end"]);
    }

    #[test]
    fn raw_identifiers() {
        assert_eq!(idents("let r#type = 1;"), ["let", "type"]);
    }

    #[test]
    fn line_numbers_are_one_based_and_advance() {
        let src = "a\nb\n\nc";
        let l = lex(src);
        let lines: Vec<usize> = l.tokens.iter().map(Tok::line).collect();
        assert_eq!(lines, [1, 2, 4]);
    }

    #[test]
    fn numbers_with_method_calls_keep_the_dot() {
        let src = "let x = 1.max(2); let y = 1.5f64;";
        let l = lex(src);
        assert!(l.tokens.iter().any(|t| t.ident() == Some("max")));
        assert!(l.tokens.iter().any(|t| t.is_punct('.')));
    }

    #[test]
    fn string_raw_text_is_preserved_verbatim() {
        let src = r#"write!(f, "field \"{field}\" must be {expected}")"#;
        let l = lex(src);
        let raw = l
            .tokens
            .iter()
            .find_map(|t| match t {
                Tok::Str { raw, .. } => Some(raw.clone()),
                _ => None,
            })
            .unwrap_or_default();
        assert_eq!(raw, r#""field \"{field}\" must be {expected}""#);
    }
}
