//! File classification: which rules apply where.
//!
//! hpclint is workspace-shaped, not generic: the crate allowlists and
//! audited-module lists below *are* the policy being enforced, kept in
//! one place so a policy change is one diff reviewed next to the rule
//! catalog (`docs/LINTS.md`).

use std::path::Path;

/// Crates allowed to read wall-clock time and to use hash-ordered
/// collections: the serving/load-generation layer (latency histograms,
/// deadlines) and the criterion bench crate (timing is the product).
/// Everything else in the tree is a deterministic crate — byte-identical
/// output across threads, shards, and cache states — where both are
/// contraband.
pub const NONDETERMINISTIC_CRATES: [&str; 2] = ["server", "bench"];

/// The only modules allowed to contain `unsafe`: the hand-declared
/// epoll/eventfd/signal syscall surface, the slab (historically audited
/// here even though its current implementation is index-based safe
/// code), and the leaked-string intern table.
pub const UNSAFE_ALLOWLIST: [&str; 4] = [
    "crates/server/src/poll.rs",
    "crates/server/src/signal.rs",
    "crates/server/src/slab.rs",
    "crates/catalog/src/intern.rs",
];

/// How a file participates in linting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library source: every rule applies.
    Library,
    /// Binary source (`src/bin/…`, a crate's `src/main.rs`): everything
    /// but `panic-in-library` applies — a CLI aborting with a message is
    /// the contract, not a bug.
    Binary,
    /// Tests, benches, examples, fixtures: skipped entirely. Panics are
    /// how tests fail, and wall-clock reads are how benches measure.
    TestLike,
}

/// The lint context of one file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileClass {
    /// Workspace-relative path, `/`-separated.
    pub rel: String,
    /// The owning crate (`"server"`, `"core"`, …); `None` for the
    /// facade package at the workspace root and for standalone paths.
    pub crate_name: Option<String>,
    /// Role of the file.
    pub kind: FileKind,
}

impl FileClass {
    /// Classifies a workspace-relative path (`/`-separated).
    pub fn classify(rel: &str) -> FileClass {
        let parts: Vec<&str> = rel.split('/').collect();
        let test_like = parts
            .iter()
            .any(|p| matches!(*p, "tests" | "benches" | "examples" | "fixtures"));
        let crate_name = match parts.as_slice() {
            ["crates", name, ..] => Some((*name).to_string()),
            _ => None,
        };
        let kind = if test_like {
            FileKind::TestLike
        } else if parts.contains(&"bin") || parts.last() == Some(&"main.rs") || rel == "build.rs" {
            FileKind::Binary
        } else {
            FileKind::Library
        };
        FileClass {
            rel: rel.to_string(),
            crate_name,
            kind,
        }
    }

    /// A standalone file linted by explicit path: treated as library
    /// code in a deterministic, non-allowlisted crate so every rule is
    /// live. This is the mode the golden fixtures use.
    pub fn standalone(rel: &str) -> FileClass {
        FileClass {
            rel: rel.to_string(),
            crate_name: None,
            kind: FileKind::Library,
        }
    }

    /// Is this file in a crate whose output must be deterministic?
    pub fn deterministic(&self) -> bool {
        match &self.crate_name {
            Some(c) => !NONDETERMINISTIC_CRATES.contains(&c.as_str()),
            None => true, // facade + standalone files: deterministic
        }
    }

    /// Is this one of the audited modules where `unsafe` is permitted?
    pub fn unsafe_allowlisted(&self) -> bool {
        UNSAFE_ALLOWLIST.contains(&self.rel.as_str())
    }
}

/// Should a directory be descended into during a workspace walk?
/// `catalog/` at the workspace root is entity *data*, skipped — but
/// `crates/catalog/` is code and must be walked, so the decision is
/// depth-aware.
pub fn skip_dir(name: &str, at_root: bool) -> bool {
    if at_root && matches!(name, "catalog" | "ci") {
        return true;
    }
    matches!(
        name,
        "target" | "vendor" | "out" | ".git" | ".github" | "fixtures"
    )
}

/// Walks `root` for `.rs` files in deterministic (sorted) order,
/// returning workspace-relative `/`-separated paths.
pub fn walk_workspace(root: &Path) -> std::io::Result<Vec<String>> {
    let mut out = Vec::new();
    walk_dir(root, root, true, &mut out)?;
    out.sort();
    Ok(out)
}

fn walk_dir(root: &Path, dir: &Path, at_root: bool, out: &mut Vec<String>) -> std::io::Result<()> {
    let mut entries: Vec<std::path::PathBuf> = std::fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        if path.is_dir() {
            if !skip_dir(&name, at_root) {
                walk_dir(root, &path, false, out)?;
            }
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_string_lossy().replace('\\', "/"));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn server_is_nondeterministic_core_is_not() {
        let server = FileClass::classify("crates/server/src/event_loop.rs");
        assert!(!server.deterministic());
        assert_eq!(server.kind, FileKind::Library);
        let core = FileClass::classify("crates/core/src/rfp.rs");
        assert!(core.deterministic());
    }

    #[test]
    fn tests_benches_examples_are_skipped() {
        for p in [
            "crates/server/tests/robustness.rs",
            "crates/bench/benches/bench_serve.rs",
            "examples/scenario_sweep.rs",
            "tests/fixtures/lints/panic_paths.rs",
        ] {
            assert_eq!(FileClass::classify(p).kind, FileKind::TestLike, "{p}");
        }
    }

    #[test]
    fn binaries_are_exempt_from_panic_rule_only() {
        assert_eq!(
            FileClass::classify("src/bin/hpcarbon.rs").kind,
            FileKind::Binary
        );
        assert_eq!(
            FileClass::classify("crates/lint/src/main.rs").kind,
            FileKind::Binary
        );
        assert_eq!(FileClass::classify("src/lib.rs").kind, FileKind::Library);
    }

    #[test]
    fn unsafe_allowlist_is_exact_paths() {
        assert!(FileClass::classify("crates/server/src/poll.rs").unsafe_allowlisted());
        assert!(!FileClass::classify("crates/server/src/http.rs").unsafe_allowlisted());
        assert!(
            !FileClass::standalone("tests/fixtures/lints/unsafe_no_comment.rs")
                .unsafe_allowlisted()
        );
    }

    #[test]
    fn facade_sources_are_deterministic_library_code() {
        let f = FileClass::classify("src/lib.rs");
        assert!(f.deterministic());
        assert_eq!(f.crate_name, None);
    }
}
