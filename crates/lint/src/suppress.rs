//! Inline suppressions: `// lint: allow(<rule>) -- <justification>`.
//!
//! A suppression is a *paper trail*, not an off switch: the
//! justification after `--` is mandatory, because the reviewer of the
//! next diff needs to know **why** a panic is provably unreachable or a
//! wall-clock read is the point. A suppression covers its own line and
//! the line directly below it — trailing on the flagged line, or as a
//! dedicated comment directly above, both read naturally.
//!
//! A comment that invokes the marker but fails to parse (unknown rule,
//! missing justification) is itself a diagnostic
//! ([`RuleId::BadSuppression`]) and suppresses nothing — and that rule
//! is deliberately not nameable in `allow(…)`, so a malformed
//! suppression can never wave itself through.

use crate::diag::{Diagnostic, RuleId};
use crate::lexer::Comment;

/// The marker that turns a comment into a suppression attempt.
const MARKER: &str = "lint: allow";

/// One successfully parsed suppression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suppression {
    /// The rule being waved through.
    pub rule: RuleId,
    /// First line the suppression covers (the comment's own line).
    pub from_line: usize,
    /// Last line the suppression covers (one past the comment's end).
    pub to_line: usize,
}

impl Suppression {
    /// Does this suppression cover `rule` at `line`?
    pub fn covers(&self, rule: RuleId, line: usize) -> bool {
        self.rule == rule && (self.from_line..=self.to_line).contains(&line)
    }
}

/// Scans a file's comments for suppression attempts. Valid ones land in
/// the returned list; malformed ones become `bad-suppression`
/// diagnostics in `diags`.
pub fn collect(file: &str, comments: &[Comment], diags: &mut Vec<Diagnostic>) -> Vec<Suppression> {
    let mut out = Vec::new();
    for c in comments {
        // Doc comments never suppress: they are rendered documentation
        // (and legitimately *describe* the syntax), not annotations on
        // the next line of code.
        if c.text.starts_with("///")
            || c.text.starts_with("//!")
            || c.text.starts_with("/**")
            || c.text.starts_with("/*!")
        {
            continue;
        }
        let Some(at) = c.text.find(MARKER) else {
            continue;
        };
        match parse_one(&c.text[at + MARKER.len()..]) {
            Ok(rule) => out.push(Suppression {
                rule,
                from_line: c.line,
                to_line: c.end_line + 1,
            }),
            Err(msg) => diags.push(Diagnostic::new(file, c.line, RuleId::BadSuppression, msg)),
        }
    }
    out
}

/// Parses the tail after `lint: allow`, expecting
/// `(<rule>) -- <justification>`.
fn parse_one(tail: &str) -> Result<RuleId, String> {
    let tail = tail.trim_start();
    let Some(rest) = tail.strip_prefix('(') else {
        return Err(format!(
            "malformed suppression: expected `lint: allow(<rule>) -- <justification>`, \
             valid rules: {}",
            rule_names()
        ));
    };
    let Some(close) = rest.find(')') else {
        return Err(format!(
            "malformed suppression: unclosed `allow(` — expected \
             `lint: allow(<rule>) -- <justification>`, valid rules: {}",
            rule_names()
        ));
    };
    let name = rest[..close].trim();
    let Some(rule) = RuleId::parse(name) else {
        return Err(format!(
            "suppression names unknown rule \"{name}\" (valid rules: {})",
            rule_names()
        ));
    };
    let after = rest[close + 1..].trim_start();
    let Some(justification) = after.strip_prefix("--") else {
        return Err(format!(
            "suppression of {} is missing its justification: write \
             `lint: allow({}) -- <why this is sound>`",
            rule.id(),
            rule.id()
        ));
    };
    if justification.trim().is_empty() {
        return Err(format!(
            "suppression of {} has an empty justification after `--`",
            rule.id()
        ));
    }
    Ok(rule)
}

fn rule_names() -> String {
    crate::diag::ALL_RULES
        .iter()
        .filter(|r| **r != RuleId::BadSuppression)
        .map(|r| r.id())
        .collect::<Vec<_>>()
        .join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(src: &str) -> (Vec<Suppression>, Vec<Diagnostic>) {
        let lexed = lex(src);
        let mut diags = Vec::new();
        let sups = collect("f.rs", &lexed.comments, &mut diags);
        (sups, diags)
    }

    #[test]
    fn valid_suppression_covers_own_and_next_line() {
        let (sups, diags) = run(
            "// lint: allow(panic-in-library) -- provably non-empty by construction\nx.unwrap();\n",
        );
        assert!(diags.is_empty());
        assert_eq!(sups.len(), 1);
        assert!(sups[0].covers(RuleId::PanicInLibrary, 1));
        assert!(sups[0].covers(RuleId::PanicInLibrary, 2));
        assert!(!sups[0].covers(RuleId::PanicInLibrary, 3));
        assert!(!sups[0].covers(RuleId::HashIterationOrder, 2));
    }

    #[test]
    fn missing_justification_is_a_diagnostic_and_suppresses_nothing() {
        let (sups, diags) = run("// lint: allow(panic-in-library)\nx.unwrap();\n");
        assert!(sups.is_empty());
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, RuleId::BadSuppression);
        assert!(diags[0].message.contains("missing its justification"));
    }

    #[test]
    fn empty_justification_is_rejected() {
        let (sups, diags) = run("// lint: allow(panic-in-library) --   \nx.unwrap();\n");
        assert!(sups.is_empty());
        assert!(diags[0].message.contains("empty justification"));
    }

    #[test]
    fn unknown_rule_is_rejected_with_the_vocabulary() {
        let (sups, diags) = run("// lint: allow(made-up-rule) -- because\n");
        assert!(sups.is_empty());
        assert!(diags[0]
            .message
            .contains("unknown rule \"made-up-rule\" (valid rules: "));
        assert!(diags[0].message.contains("panic-in-library"));
    }

    #[test]
    fn bad_suppression_cannot_suppress_itself() {
        let (sups, diags) = run("// lint: allow(bad-suppression) -- nice try\n");
        assert!(sups.is_empty());
        assert_eq!(diags[0].rule, RuleId::BadSuppression);
    }

    #[test]
    fn ordinary_comments_mentioning_lint_are_ignored() {
        let (sups, diags) = run("// the lint crate checks this\n// clippy::allow is unrelated\n");
        assert!(sups.is_empty());
        assert!(diags.is_empty());
    }

    #[test]
    fn doc_comments_never_suppress_or_misfire() {
        // Rendered documentation may describe the syntax without being
        // a (mis)parsed suppression attempt.
        let (sups, diags) = run(
            "/// Suppress with `lint: allow(<rule>)`.\n//! lint: allow syntax docs\nfn f() {}\n",
        );
        assert!(sups.is_empty());
        assert!(diags.is_empty());
    }

    #[test]
    fn trailing_suppression_on_the_flagged_line() {
        let (sups, diags) =
            run("x.unwrap(); // lint: allow(panic-in-library) -- checked two lines up\n");
        assert!(diags.is_empty());
        assert!(sups[0].covers(RuleId::PanicInLibrary, 1));
    }
}
