//! `hpclint` — the CLI over [`hpcarbon_lint`].
//!
//! ```text
//! hpclint --workspace --deny all          # the CI gate
//! hpclint tests/fixtures/lints/panic_paths.rs
//! hpclint --list-rules
//! hpclint --dump-display > crates/lint/display_registry.txt
//! ```
//!
//! Exit codes: `0` clean, `1` at least one denied diagnostic, `2`
//! usage or I/O error.

use hpcarbon_lint::{
    diag, dump_display, lint_paths, lint_workspace, load_registry, Diagnostic, DisplayRegistry,
    EngineError, RuleId, ALL_RULES,
};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    root: PathBuf,
    workspace: bool,
    paths: Vec<String>,
    deny: Vec<RuleId>,
    registry_override: Option<PathBuf>,
    list_rules: bool,
    dump_display: bool,
}

const USAGE: &str = "usage: hpclint [--root DIR] (--workspace | FILE...) \
[--deny all|RULE[,RULE...]] [--registry PATH] [--list-rules] [--dump-display]";

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        workspace: false,
        paths: Vec::new(),
        deny: ALL_RULES.to_vec(),
        registry_override: None,
        list_rules: false,
        dump_display: false,
    };
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--workspace" => args.workspace = true,
            "--list-rules" => args.list_rules = true,
            "--dump-display" => args.dump_display = true,
            "--root" => {
                let v = it.next().ok_or("--root needs a directory")?;
                args.root = PathBuf::from(v);
            }
            "--registry" => {
                let v = it.next().ok_or("--registry needs a path")?;
                args.registry_override = Some(PathBuf::from(v));
            }
            "--deny" => {
                let v = it.next().ok_or("--deny needs `all` or a rule list")?;
                args.deny = parse_deny(v)?;
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other if other.starts_with('-') => {
                return Err(format!("unknown flag {other}\n{USAGE}"));
            }
            path => args.paths.push(path.to_string()),
        }
    }
    if !args.list_rules && !args.dump_display && !args.workspace && args.paths.is_empty() {
        return Err(format!("nothing to lint\n{USAGE}"));
    }
    if args.workspace && !args.paths.is_empty() {
        return Err("pass either --workspace or explicit files, not both".to_string());
    }
    Ok(args)
}

fn parse_deny(v: &str) -> Result<Vec<RuleId>, String> {
    if v == "all" {
        return Ok(ALL_RULES.to_vec());
    }
    // A malformed suppression is a meta-error, not a finding one can
    // opt out of — it stays denied under every `--deny` narrowing.
    let mut out = vec![RuleId::BadSuppression];
    for name in v.split(',') {
        let name = name.trim();
        let found = ALL_RULES.iter().copied().find(|r| r.id() == name);
        match found {
            Some(r) => out.push(r),
            None => {
                return Err(format!(
                    "unknown rule \"{name}\" (valid: all, {})",
                    ALL_RULES.map(|r| r.id()).join(", ")
                ))
            }
        }
    }
    Ok(out)
}

fn load_effective_registry(args: &Args) -> Result<DisplayRegistry, EngineError> {
    match &args.registry_override {
        Some(path) => {
            let text = std::fs::read_to_string(path).map_err(|err| EngineError::Io {
                path: path.to_string_lossy().into_owned(),
                err,
            })?;
            DisplayRegistry::parse(&text)
                .map_err(|e| EngineError::Registry(format!("{}: {e}", path.display())))
        }
        None if args.workspace || args.dump_display => load_registry(&args.root),
        // Explicit-path mode without --registry: fall back to the
        // committed registry when present, else an empty one, so a
        // fixture run doesn't require the workspace layout.
        None => Ok(load_registry(&args.root).unwrap_or_default()),
    }
}

fn run() -> Result<ExitCode, String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = parse_args(&argv)?;

    if args.list_rules {
        for r in ALL_RULES {
            println!("{}: {}", r.id(), r.summary());
        }
        return Ok(ExitCode::SUCCESS);
    }

    let registry = load_effective_registry(&args).map_err(|e| e.to_string())?;

    if args.dump_display {
        let rendered = dump_display(&args.root, &registry).map_err(|e| e.to_string())?;
        print!("{rendered}");
        return Ok(ExitCode::SUCCESS);
    }

    let diags = if args.workspace {
        lint_workspace(&args.root, &registry)
    } else {
        lint_paths(&args.root, &args.paths, &registry)
    }
    .map_err(|e| e.to_string())?;

    let denied = report(&diags, &args.deny);
    if denied > 0 {
        eprintln!(
            "hpclint: {denied} denied diagnostic{} ({} total)",
            if denied == 1 { "" } else { "s" },
            diags.len()
        );
        Ok(ExitCode::FAILURE)
    } else {
        eprintln!("hpclint: clean");
        Ok(ExitCode::SUCCESS)
    }
}

/// Prints every diagnostic (the contract: all at once, sorted) and
/// returns how many hit a denied rule.
fn report(diags: &[Diagnostic], deny: &[RuleId]) -> usize {
    let mut sorted = diags.to_vec();
    diag::sort(&mut sorted);
    let mut denied = 0usize;
    for d in &sorted {
        println!("{d}");
        if deny.contains(&d.rule) {
            denied += 1;
        }
    }
    denied
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("hpclint: {msg}");
            ExitCode::from(2)
        }
    }
}
