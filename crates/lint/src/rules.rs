//! The five workspace-invariant rules.
//!
//! Each rule is a pure function over the token stream of one file plus
//! its [`FileClass`]; none of them parse Rust. That buys robustness
//! (strings/comments can never fool them — the lexer already stripped
//! those) at the price of token-level judgment: `.expect(` flags any
//! method named `expect`, `HashMap` flags the identifier wherever it
//! appears. The workspace is kept clean of such collisions (e.g. the
//! JSON parser's internal `expect` byte-matcher is named
//! `expect_byte`), and `docs/LINTS.md` documents the limits.

use crate::context::{FileClass, FileKind, UNSAFE_ALLOWLIST};
use crate::diag::{Diagnostic, RuleId};
use crate::lexer::{Comment, LexedFile, Tok};
use crate::registry::DisplayRegistry;
use crate::suppress;
use std::collections::BTreeMap;

/// Runs every applicable rule over one lexed file, applies inline
/// suppressions, and returns the surviving diagnostics (unsorted; the
/// caller batches and sorts across files).
pub fn check_file(
    class: &FileClass,
    lexed: &LexedFile,
    registry: &DisplayRegistry,
) -> Vec<Diagnostic> {
    if class.kind == FileKind::TestLike {
        return Vec::new();
    }
    let mut diags = Vec::new();
    let sups = suppress::collect(&class.rel, &lexed.comments, &mut diags);
    let toks = mask_cfg_test(&lexed.tokens);

    if class.deterministic() {
        wall_clock(class, &toks, &mut diags);
        hash_iteration(class, &toks, &mut diags);
    }
    unsafe_audit(class, &toks, &lexed.comments, &mut diags);
    if class.kind == FileKind::Library {
        panic_in_library(class, &toks, &mut diags);
    }
    display_drift(class, &toks, registry, &mut diags);

    diags.retain(|d| {
        d.rule == RuleId::BadSuppression || !sups.iter().any(|s| s.covers(d.rule, d.line))
    });
    diags
}

/// Drops tokens inside `#[cfg(test)]` items (the attribute itself, any
/// stacked attributes after it, and the guarded item's body). Tests are
/// where panics and wall-clock reads are legitimate; the rules must not
/// see them.
fn mask_cfg_test(tokens: &[Tok]) -> Vec<&Tok> {
    let all: Vec<&Tok> = tokens.iter().collect();
    let mut out = Vec::with_capacity(all.len());
    let mut i = 0usize;
    while i < all.len() {
        if is_cfg_test_attr(&all, i) {
            i += 7; // past `# [ cfg ( test ) ]`
                    // Skip any further stacked attributes (`#[allow(…)]` …).
            while i < all.len() && all[i].is_punct('#') {
                i = skip_bracket_group(&all, i + 1);
            }
            i = skip_item(&all, i);
        } else {
            out.push(all[i]);
            i += 1;
        }
    }
    out
}

fn is_cfg_test_attr(tokens: &[&Tok], i: usize) -> bool {
    tokens.len() > i + 6
        && tokens[i].is_punct('#')
        && tokens[i + 1].is_punct('[')
        && tokens[i + 2].ident() == Some("cfg")
        && tokens[i + 3].is_punct('(')
        && tokens[i + 4].ident() == Some("test")
        && tokens[i + 5].is_punct(')')
        && tokens[i + 6].is_punct(']')
}

/// `i` points just past a `[`-opening `#`; returns the index after the
/// matching `]`.
fn skip_bracket_group(tokens: &[&Tok], mut i: usize) -> usize {
    if i >= tokens.len() || !tokens[i].is_punct('[') {
        return i;
    }
    let mut depth = 0usize;
    while i < tokens.len() {
        if tokens[i].is_punct('[') {
            depth += 1;
        } else if tokens[i].is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    i
}

/// Skips one item: to the `;` that ends a braceless item, or to the
/// `}` matching the item's first `{`, whichever comes first.
fn skip_item(tokens: &[&Tok], mut i: usize) -> usize {
    while i < tokens.len() {
        if tokens[i].is_punct(';') {
            return i + 1;
        }
        if tokens[i].is_punct('{') {
            let mut depth = 0usize;
            while i < tokens.len() {
                if tokens[i].is_punct('{') {
                    depth += 1;
                } else if tokens[i].is_punct('}') {
                    depth -= 1;
                    if depth == 0 {
                        return i + 1;
                    }
                }
                i += 1;
            }
            return i;
        }
        i += 1;
    }
    i
}

/// `wall-clock-in-deterministic-crate`: `Instant::now` /
/// `SystemTime::now` sequences.
fn wall_clock(class: &FileClass, toks: &[&Tok], diags: &mut Vec<Diagnostic>) {
    for w in toks.windows(4) {
        let ty = match w[0].ident() {
            Some(t @ ("Instant" | "SystemTime")) => t,
            _ => continue,
        };
        if w[1].is_punct(':') && w[2].is_punct(':') && w[3].ident() == Some("now") {
            diags.push(Diagnostic::new(
                &class.rel,
                w[0].line(),
                RuleId::WallClockInDeterministicCrate,
                format!(
                    "`{ty}::now()` reads the wall clock in a deterministic crate; \
                     take time as an input or move the read into the server/loadgen/bench layer"
                ),
            ));
        }
    }
}

/// `hash-iteration-order`: any `HashMap` / `HashSet` identifier.
fn hash_iteration(class: &FileClass, toks: &[&Tok], diags: &mut Vec<Diagnostic>) {
    for t in toks {
        let name = match t.ident() {
            Some(n @ ("HashMap" | "HashSet")) => n,
            _ => continue,
        };
        diags.push(Diagnostic::new(
            &class.rel,
            t.line(),
            RuleId::HashIterationOrder,
            format!(
                "`{name}` has nondeterministic iteration order; use `BTreeMap`/`BTreeSet` \
                 or a sorted `Vec` in deterministic crates"
            ),
        ));
    }
}

/// `unsafe-needs-safety-comment`: location allowlist + `// SAFETY:`
/// within the three lines above (or trailing on the same line).
fn unsafe_audit(
    class: &FileClass,
    toks: &[&Tok],
    comments: &[Comment],
    diags: &mut Vec<Diagnostic>,
) {
    for t in toks {
        if t.ident() != Some("unsafe") {
            continue;
        }
        let line = t.line();
        if !class.unsafe_allowlisted() {
            diags.push(Diagnostic::new(
                &class.rel,
                line,
                RuleId::UnsafeNeedsSafetyComment,
                format!(
                    "unsafe code is confined to the audited modules ({}); this file is not one of them",
                    UNSAFE_ALLOWLIST.join(", ")
                ),
            ));
        }
        let covered = comments
            .iter()
            .any(|c| c.text.contains("SAFETY:") && c.end_line <= line && c.end_line + 3 >= line);
        if !covered {
            diags.push(Diagnostic::new(
                &class.rel,
                line,
                RuleId::UnsafeNeedsSafetyComment,
                "`unsafe` without a `// SAFETY:` comment on the preceding lines stating why \
                 the invariants hold"
                    .to_string(),
            ));
        }
    }
}

/// `panic-in-library`: `.unwrap()`, `.expect(`, and the aborting
/// macros, outside `#[cfg(test)]`.
fn panic_in_library(class: &FileClass, toks: &[&Tok], diags: &mut Vec<Diagnostic>) {
    for (i, t) in toks.iter().enumerate() {
        if let Some(name @ ("unwrap" | "expect")) = t.ident() {
            let dotted = i > 0 && toks[i - 1].is_punct('.');
            let called = toks.get(i + 1).is_some_and(|n| n.is_punct('('));
            if dotted && called {
                diags.push(Diagnostic::new(
                    &class.rel,
                    t.line(),
                    RuleId::PanicInLibrary,
                    format!(
                        "`.{name}(…)` panics on a library path; return a typed error, rewrite \
                         infallibly, or justify with `// lint: allow(panic-in-library) -- …`"
                    ),
                ));
            }
        }
        if let Some(mac @ ("panic" | "todo" | "unimplemented")) = t.ident() {
            if toks.get(i + 1).is_some_and(|n| n.is_punct('!')) {
                diags.push(Diagnostic::new(
                    &class.rel,
                    t.line(),
                    RuleId::PanicInLibrary,
                    format!("`{mac}!` aborts a library path; return a typed error instead"),
                ));
            }
        }
    }
}

/// One extracted `Display` impl: the type name, the line the `impl`
/// starts on, and every `write!`/`writeln!` format string inside it
/// (line, raw literal as written).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DisplayImpl {
    /// The implemented type's name (`ApiError`, …).
    pub type_name: String,
    /// Line of the `impl` keyword.
    pub impl_line: usize,
    /// Format strings: (line, raw literal including quotes).
    pub strings: Vec<(usize, String)>,
}

/// Extracts every `impl … Display for <Type>` block's format strings.
/// Shared by the rule and by `hpclint --dump-display`.
pub fn display_impls(toks: &[&Tok]) -> Vec<DisplayImpl> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].ident() != Some("impl") {
            i += 1;
            continue;
        }
        let impl_line = toks[i].line();
        // Scan the header (everything before the body's `{`); find
        // `Display` and the type ident after `for`.
        let mut j = i + 1;
        let mut saw_display = false;
        let mut after_for = false;
        let mut type_name: Option<String> = None;
        while j < toks.len() && !toks[j].is_punct('{') {
            match toks[j].ident() {
                Some("Display") if !after_for => saw_display = true,
                Some("for") => after_for = true,
                Some(name) if after_for => type_name = Some(name.to_string()),
                _ => {}
            }
            // A `where` clause or generic bound after the type keeps the
            // last ident heuristic honest enough for this tree; stop at
            // `where` so bounds don't overwrite the type name.
            if toks[j].ident() == Some("where") {
                break;
            }
            j += 1;
        }
        // Find the body braces.
        while j < toks.len() && !toks[j].is_punct('{') {
            j += 1;
        }
        let body_start = j;
        let body_end = skip_item(toks, body_start);
        if let (true, Some(ty)) = (saw_display, type_name) {
            let mut strings = Vec::new();
            let mut k = body_start;
            while k < body_end.min(toks.len()) {
                if matches!(toks[k].ident(), Some("write" | "writeln"))
                    && toks.get(k + 1).is_some_and(|t| t.is_punct('!'))
                    && toks.get(k + 2).is_some_and(|t| t.is_punct('('))
                {
                    // First string literal before the macro's `)` is the
                    // format string.
                    let mut depth = 0usize;
                    let mut m = k + 2;
                    while m < toks.len() {
                        if toks[m].is_punct('(') {
                            depth += 1;
                        } else if toks[m].is_punct(')') {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        } else if let Tok::Str { line, raw } = toks[m] {
                            strings.push((*line, raw.clone()));
                            break;
                        }
                        m += 1;
                    }
                    k = m;
                }
                k += 1;
            }
            out.push(DisplayImpl {
                type_name: ty,
                impl_line,
                strings,
            });
            i = body_end.max(i + 1);
        } else {
            i += 1;
        }
    }
    out
}

/// `frozen-display-drift`: compare each registered type's extracted
/// format strings against the committed registry. Only the **first**
/// divergence per impl is reported — an insertion shifts every later
/// string, and one precise diagnostic beats a cascade.
fn display_drift(
    class: &FileClass,
    toks: &[&Tok],
    registry: &DisplayRegistry,
    diags: &mut Vec<Diagnostic>,
) {
    for imp in display_impls(toks) {
        if !registry.contains(&imp.type_name) {
            continue;
        }
        let want = registry.strings(&imp.type_name);
        let got = &imp.strings;
        let n = want.len().max(got.len());
        for idx in 0..n {
            match (want.get(idx), got.get(idx)) {
                (Some(w), Some((line, g))) if w != g => {
                    diags.push(Diagnostic::new(
                        &class.rel,
                        *line,
                        RuleId::FrozenDisplayDrift,
                        format!(
                            "Display format string {g} drifted from the frozen registry for \
                             {} (expected {w}); if the contract change is intentional, \
                             regenerate with `hpclint --dump-display`",
                            imp.type_name
                        ),
                    ));
                    break;
                }
                (None, Some((line, g))) => {
                    diags.push(Diagnostic::new(
                        &class.rel,
                        *line,
                        RuleId::FrozenDisplayDrift,
                        format!(
                            "Display format string {g} is not in the frozen registry for {} \
                             ({} strings frozen, {} found)",
                            imp.type_name,
                            want.len(),
                            got.len()
                        ),
                    ));
                    break;
                }
                (Some(w), None) => {
                    diags.push(Diagnostic::new(
                        &class.rel,
                        imp.impl_line,
                        RuleId::FrozenDisplayDrift,
                        format!(
                            "Display for {} lost frozen format string {w} \
                             ({} strings frozen, {} found)",
                            imp.type_name,
                            want.len(),
                            got.len()
                        ),
                    ));
                    break;
                }
                _ => {}
            }
        }
    }
}

/// Extracts display strings from raw source for `--dump-display`:
/// type → literals in impl order. Types seen in several files merge in
/// file-walk order (in practice each frozen type has one impl).
pub fn extract_display_strings(src: &str, into: &mut BTreeMap<String, Vec<String>>) {
    let lexed = crate::lexer::lex(src);
    let toks: Vec<&Tok> = lexed.tokens.iter().collect();
    for imp in display_impls(&toks) {
        into.entry(imp.type_name)
            .or_default()
            .extend(imp.strings.into_iter().map(|(_, raw)| raw));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn check(rel: &str, src: &str) -> Vec<Diagnostic> {
        let reg = DisplayRegistry::parse("ApiError \"frozen {x}\"\n").expect("registry");
        let mut d = check_file(&FileClass::classify(rel), &lex(src), &reg);
        crate::diag::sort(&mut d);
        d
    }

    fn check_standalone(src: &str) -> Vec<Diagnostic> {
        let reg = DisplayRegistry::parse("ApiError \"frozen {x}\"\n").expect("registry");
        let mut d = check_file(&FileClass::standalone("fixture.rs"), &lex(src), &reg);
        crate::diag::sort(&mut d);
        d
    }

    #[test]
    fn wall_clock_fires_in_deterministic_crates_only() {
        let src = "fn f() { let t = Instant::now(); }";
        let det = check("crates/core/src/rfp.rs", src);
        assert_eq!(det.len(), 1);
        assert_eq!(det[0].rule, RuleId::WallClockInDeterministicCrate);
        assert_eq!(det[0].line, 1);
        assert!(check("crates/server/src/event_loop.rs", src).is_empty());
        assert!(check("crates/bench/src/lib.rs", src).is_empty());
    }

    #[test]
    fn system_time_is_flagged_too() {
        let d = check("crates/grid/src/trace.rs", "let t = SystemTime::now();");
        assert!(d[0].message.contains("SystemTime::now()"));
    }

    #[test]
    fn hash_collections_fire_per_token() {
        let src = "use std::collections::HashMap;\nfn f(m: &HashMap<u32, u32>) {}\n";
        let d = check("crates/catalog/src/provider.rs", src);
        assert_eq!(d.len(), 2);
        assert_eq!(d[0].line, 1);
        assert_eq!(d[1].line, 2);
        assert!(check("crates/server/src/cache.rs", src).is_empty());
    }

    #[test]
    fn unsafe_needs_comment_and_location() {
        let bare = "fn f() { unsafe { g() } }";
        let d = check_standalone(bare);
        assert_eq!(d.len(), 2, "{d:?}"); // outside allowlist + no SAFETY
        let commented = "// SAFETY: g has no invariants\nfn f() { unsafe { g() } }";
        let d = check("crates/server/src/poll.rs", commented);
        assert!(d.is_empty(), "{d:?}");
        let far = "// SAFETY: too far away\n\n\n\n\nfn f() { unsafe { g() } }";
        let d = check("crates/server/src/poll.rs", far);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn panic_rule_catches_all_five_forms() {
        let src = "fn f(x: Option<u32>) -> u32 {\n    let a = x.unwrap();\n    let b = x.expect(\"msg\");\n    if a > b { panic!(\"no\") }\n    todo!()\n}\nfn g() { unimplemented!() }\n";
        let d = check("crates/core/src/rfp.rs", src);
        assert_eq!(d.len(), 5, "{d:?}");
        assert!(d.iter().all(|x| x.rule == RuleId::PanicInLibrary));
        assert_eq!(
            d.iter().map(|x| x.line).collect::<Vec<_>>(),
            [2, 3, 4, 5, 7]
        );
    }

    #[test]
    fn panic_rule_skips_cfg_test_and_binaries() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { None::<u32>.unwrap(); }\n}\n";
        assert!(check("crates/core/src/rfp.rs", src).is_empty());
        let bin = "fn main() { std::fs::read(\"x\").unwrap(); }";
        assert!(check("src/bin/hpcarbon.rs", bin).is_empty());
    }

    #[test]
    fn expect_requires_dot_and_call() {
        // A method *named* expect on self is still flagged (token-level
        // rule), but a bare path call is not.
        assert_eq!(
            check("crates/api/src/json.rs", "self.expect(b'{')?;").len(),
            1
        );
        assert!(check("crates/api/src/json.rs", "expect(b'{');").is_empty());
        assert!(check("crates/api/src/json.rs", "let unwrap = 3; unwrap + 1;").is_empty());
    }

    #[test]
    fn suppression_waves_through_with_justification() {
        let src = "fn f(x: Option<u32>) -> u32 {\n    // lint: allow(panic-in-library) -- checked non-empty above\n    x.unwrap()\n}\n";
        assert!(check("crates/core/src/rfp.rs", src).is_empty());
        let bad = "fn f(x: Option<u32>) -> u32 {\n    // lint: allow(panic-in-library)\n    x.unwrap()\n}\n";
        let d = check("crates/core/src/rfp.rs", bad);
        assert_eq!(d.len(), 2); // bad-suppression + the unsuppressed unwrap
        assert_eq!(d[0].rule, RuleId::BadSuppression);
        assert_eq!(d[1].rule, RuleId::PanicInLibrary);
    }

    #[test]
    fn display_drift_first_divergence_only() {
        let src = "impl std::fmt::Display for ApiError {\n    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {\n        write!(f, \"drifted {x}\")\n    }\n}\n";
        let d = check("crates/api/src/error.rs", src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, RuleId::FrozenDisplayDrift);
        assert_eq!(d[0].line, 3);
        assert!(d[0].message.contains("\"drifted {x}\""));
        assert!(d[0].message.contains("expected \"frozen {x}\""));
    }

    #[test]
    fn display_matching_registry_is_clean() {
        let src = "impl std::fmt::Display for ApiError {\n    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {\n        write!(f, \"frozen {x}\")\n    }\n}\n";
        assert!(check("crates/api/src/error.rs", src).is_empty());
    }

    #[test]
    fn display_lost_string_anchors_to_impl() {
        let src = "impl std::fmt::Display for ApiError {\n    fn fmt(&self, _f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {\n        Ok(())\n    }\n}\n";
        let d = check("crates/api/src/error.rs", src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 1);
        assert!(d[0].message.contains("lost frozen format string"));
    }

    #[test]
    fn unregistered_display_impls_are_ignored() {
        let src = "impl std::fmt::Display for SomethingElse {\n    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {\n        write!(f, \"whatever\")\n    }\n}\n";
        assert!(check("crates/api/src/error.rs", src).is_empty());
    }

    #[test]
    fn test_like_files_are_exempt_entirely() {
        let src = "fn f() { None::<u32>.unwrap(); let t = Instant::now(); }";
        assert!(check("crates/server/tests/robustness.rs", src).is_empty());
        assert!(check("examples/scenario_sweep.rs", src).is_empty());
    }
}
