//! End-to-end tests of the `hpclint` binary over the golden violation
//! fixtures in `tests/fixtures/lints/`. Each fixture exists to be
//! rejected: these tests pin the exact `{file}:{line}:` anchors and the
//! nonzero exit code, so a rule that silently stops firing turns a
//! fixture green and fails here.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn hpclint(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_hpclint"))
        .arg("--root")
        .arg(repo_root())
        .args(args)
        .output()
        .expect("spawn hpclint")
}

fn lines(out: &Output) -> Vec<String> {
    String::from_utf8_lossy(&out.stdout)
        .lines()
        .map(str::to_string)
        .collect()
}

/// Asserts the fixture is rejected (exit 1) and that the diagnostics
/// carry exactly the expected `line: rule` anchors, in order.
fn assert_rejected(fixture: &str, expected: &[(u32, &str)]) {
    let rel = format!("tests/fixtures/lints/{fixture}");
    let out = hpclint(&[&rel]);
    assert_eq!(out.status.code(), Some(1), "{fixture} should be denied");
    let got = lines(&out);
    assert_eq!(
        got.len(),
        expected.len(),
        "{fixture}: diagnostic count\n{}",
        got.join("\n")
    );
    for (diag, (line, rule)) in got.iter().zip(expected) {
        let prefix = format!("{rel}:{line}: {rule}:");
        assert!(
            diag.starts_with(&prefix),
            "{fixture}: expected `{prefix}…`, got `{diag}`"
        );
    }
}

#[test]
fn wall_clock_fixture_is_rejected_at_pinned_lines() {
    assert_rejected(
        "wall_clock.rs",
        &[
            (6, "wall-clock-in-deterministic-crate"),
            (7, "wall-clock-in-deterministic-crate"),
        ],
    );
}

#[test]
fn hash_iteration_fixture_is_rejected_at_pinned_lines() {
    assert_rejected(
        "hash_iteration.rs",
        &[(5, "hash-iteration-order"), (8, "hash-iteration-order")],
    );
}

#[test]
fn unsafe_fixture_is_rejected_for_location_and_missing_comment() {
    assert_rejected(
        "unsafe_no_comment.rs",
        &[
            (8, "unsafe-needs-safety-comment"),
            (8, "unsafe-needs-safety-comment"),
            (13, "unsafe-needs-safety-comment"),
        ],
    );
}

#[test]
fn panic_fixture_catches_all_five_forms() {
    assert_rejected(
        "panic_paths.rs",
        &[
            (6, "panic-in-library"),
            (7, "panic-in-library"),
            (9, "panic-in-library"),
            (11, "panic-in-library"),
            (15, "panic-in-library"),
        ],
    );
}

#[test]
fn display_drift_fixture_reports_first_divergence() {
    let rel = "tests/fixtures/lints/display_drift.rs";
    let out = hpclint(&[rel]);
    assert_eq!(out.status.code(), Some(1));
    let got = lines(&out);
    assert_eq!(got.len(), 1, "{}", got.join("\n"));
    assert!(got[0].starts_with(&format!("{rel}:9: frozen-display-drift:")));
    assert!(got[0].contains("expected \"storage what-if: {e}\""));
    assert!(got[0].contains("--dump-display"));
}

#[test]
fn bad_suppression_fixture_rejects_all_three_shapes() {
    assert_rejected(
        "bad_suppression.rs",
        &[
            (8, "bad-suppression"),
            (9, "panic-in-library"), // the malformed suppression waves nothing through
            (12, "bad-suppression"),
            (16, "bad-suppression"),
        ],
    );
}

#[test]
fn deny_filter_narrows_but_bad_suppressions_always_deny() {
    // Denying only wall-clock lets the panic fixture pass…
    let out = hpclint(&[
        "--deny",
        "wall-clock-in-deterministic-crate",
        "tests/fixtures/lints/panic_paths.rs",
    ]);
    assert_eq!(out.status.code(), Some(0), "narrowed deny should pass");
    // …but a malformed suppression is an error in any configuration.
    let out = hpclint(&[
        "--deny",
        "wall-clock-in-deterministic-crate",
        "tests/fixtures/lints/bad_suppression.rs",
    ]);
    assert_eq!(out.status.code(), Some(1));
}

#[test]
fn list_rules_names_every_rule() {
    let out = hpclint(&["--list-rules"]);
    assert_eq!(out.status.code(), Some(0));
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    for rule in [
        "wall-clock-in-deterministic-crate",
        "hash-iteration-order",
        "unsafe-needs-safety-comment",
        "panic-in-library",
        "frozen-display-drift",
        "bad-suppression",
    ] {
        assert!(text.contains(rule), "--list-rules missing {rule}");
    }
}

#[test]
fn usage_errors_exit_two() {
    let out = hpclint(&["--deny", "no-such-rule", "--workspace"]);
    assert_eq!(out.status.code(), Some(2));
    let out = hpclint(&["tests/fixtures/lints/does_not_exist.rs"]);
    assert_eq!(out.status.code(), Some(2));
}
