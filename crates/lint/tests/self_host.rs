//! The linter's own contracts, enforced by the linter.
//!
//! Three gates ride here: `crates/lint` lints itself clean (a linter
//! that can't pass its own rules has no authority), the whole
//! workspace lints clean (the CI invariant, testable without CI), and
//! the committed display registry matches what `--dump-display`
//! re-extracts from the tree (so the frozen-string list can't rot).

use hpcarbon_lint::{lint_workspace, load_registry, RuleId};
use std::path::{Path, PathBuf};

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn the_linter_lints_itself_clean() {
    let root = repo_root();
    let registry = load_registry(&root).expect("registry loads");
    let diags = lint_workspace(&root, &registry).expect("workspace lints");
    let own: Vec<_> = diags
        .iter()
        .filter(|d| d.file.starts_with("crates/lint/"))
        .collect();
    assert!(own.is_empty(), "hpclint flagged its own sources:\n{own:?}");
}

#[test]
fn the_whole_workspace_lints_clean() {
    let root = repo_root();
    let registry = load_registry(&root).expect("registry loads");
    let diags = lint_workspace(&root, &registry).expect("workspace lints");
    let rendered: Vec<String> = diags.iter().map(ToString::to_string).collect();
    assert!(
        diags.is_empty(),
        "workspace has lint violations:\n{}",
        rendered.join("\n")
    );
}

#[test]
fn committed_registry_matches_dump_display() {
    let root = repo_root();
    let registry = load_registry(&root).expect("registry loads");
    let regenerated = hpcarbon_lint::dump_display(&root, &registry).expect("dump");
    let committed = std::fs::read_to_string(root.join(hpcarbon_lint::REGISTRY_PATH))
        .expect("committed registry");
    assert_eq!(
        committed, regenerated,
        "display_registry.txt is stale; regenerate with `hpclint --dump-display`"
    );
}

#[test]
fn every_workspace_suppression_parses() {
    // The workspace being clean (above) already implies no
    // bad-suppression diagnostics, but assert it by name so a future
    // relaxation of the clean gate can't silently drop this guarantee.
    let root = repo_root();
    let registry = load_registry(&root).expect("registry loads");
    let diags = lint_workspace(&root, &registry).expect("workspace lints");
    assert!(diags.iter().all(|d| d.rule != RuleId::BadSuppression));
}
