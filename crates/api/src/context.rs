//! Shared immutable evaluation context for batch estimation.
//!
//! Evaluating one request re-derives heavyweight inputs that are pure
//! functions of a *few* request fields: the region-year intensity trace
//! (a dispatch simulation plus a `WindowIndex` build), its distribution
//! stats, the as-built system inventory, and the generated job trace.
//! A scenario sweep evaluates thousands-to-millions of requests drawn
//! from a handful of distinct key tuples, so almost every derivation is
//! a repeat. [`EstimateContext`] hoists them: built once per batch from
//! the key sets the requests actually use, then consulted by
//! [`crate::Estimator`] with a provider fallback for any key it does
//! not hold.
//!
//! ## Byte-safety
//!
//! Context hits must be indistinguishable from provider calls. That
//! holds because every cached value is produced by calling the *same*
//! provider with the *same* arguments the estimator would have used
//! (providers are pure by contract — see [`crate::providers`]), and the
//! derived stats are pure functions of the trace. A context can
//! therefore never change reported bytes, only the time it takes to
//! produce them; `crates/api` unit tests assert report equality with
//! and without a context.
//!
//! ## Memory
//!
//! The context holds `O(distinct keys)` data, not `O(requests)`:
//! traces and job lists are stored behind [`Arc`]s and shared into
//! every evaluation (clusters hold `Arc<IntensityTrace>`, simulations
//! borrow the job slice). A million-scenario sweep over two regions,
//! two trace sources and a few seeds holds a handful of traces total.

use crate::providers::{EmbodiedSource, IntensityProvider, JobSource};
use crate::request::EstimateRequest;
use crate::types::{SystemId, TraceSource};
use hpcarbon_grid::regions::OperatorId;
use hpcarbon_grid::trace::IntensityTrace;
use hpcarbon_sched::Job;
use hpcarbon_sim::par::{par_map_workers, worker_count};
use hpcarbon_sim::rng::SimRng;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Identifies one region-year trace: `(region, source, year, seed)`,
/// where `seed` is the request's `trace` substream seed.
pub type TraceKey = (OperatorId, TraceSource, i32, u64);

/// Identifies one generated job trace: `(count, seed)`, where `seed` is
/// the request's `jobs` substream seed.
pub type JobKey = (usize, u64);

/// Distribution stats of one trace, precomputed so the per-request path
/// skips the percentile sort over 8760 hourly values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceStats {
    /// Fig. 6(a) boxplot median (gCO₂/kWh).
    pub median_g_per_kwh: f64,
    /// Fig. 6(b) coefficient of variation (%).
    pub cov_pct: f64,
}

impl TraceStats {
    /// Computes the stats of `trace` — the exact expressions the
    /// estimator evaluates on a context miss.
    pub fn of(trace: &IntensityTrace) -> TraceStats {
        TraceStats {
            median_g_per_kwh: trace.boxplot().median,
            cov_pct: trace.cov_percent(),
        }
    }
}

/// The seed substream keys one request's evaluation draws on. Pure in
/// the request seed (substream forking never consumes state), so the
/// same request always maps to the same keys — the property that makes
/// precomputation transparent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestKeys {
    /// The primary region-year trace key.
    pub trace: TraceKey,
    /// The partner region's trace key, when the request engages one.
    pub partner_trace: Option<TraceKey>,
    /// The job-trace key.
    pub jobs: JobKey,
    /// The system inventory key.
    pub system: SystemId,
}

impl RequestKeys {
    /// Derives the keys `req`'s evaluation will look up.
    pub fn of(req: &EstimateRequest) -> RequestKeys {
        let rng = SimRng::seed_from(req.seed);
        let trace_seed = rng.substream("trace").seed();
        let jobs_seed = rng.substream("jobs").seed();
        let partner_trace = req
            .partner
            .unwrap_or_else(|| req.policy.is_multi_region())
            .then(|| (partner_region(req.region), req.source, req.year, trace_seed));
        RequestKeys {
            trace: (req.region, req.source, req.year, trace_seed),
            partner_trace,
            jobs: (req.jobs, jobs_seed),
            system: req.system,
        }
    }
}

/// The partner site a multi-region evaluation pairs with `region`: the
/// greenest complement region (GB, or CA when the request already is
/// GB). Must stay in lockstep with `Estimator::evaluate`.
pub fn partner_region(region: OperatorId) -> OperatorId {
    if region == OperatorId::Eso {
        OperatorId::Ciso
    } else {
        OperatorId::Eso
    }
}

/// Precomputed immutable inputs shared across one batch of evaluations.
///
/// Build one with [`crate::Estimator::context_for`] (which uses the
/// estimator's own providers) and attach it via
/// [`crate::EstimatorBuilder::context`]; or let
/// [`crate::Estimator::estimate_batch`] build one automatically.
#[derive(Debug, Default)]
pub struct EstimateContext {
    traces: BTreeMap<TraceKey, Arc<IntensityTrace>>,
    stats: BTreeMap<TraceKey, TraceStats>,
    systems: BTreeMap<SystemId, hpcarbon_core::systems::HpcSystem>,
    jobs: BTreeMap<JobKey, Arc<Vec<Job>>>,
}

impl EstimateContext {
    /// An empty context: every lookup misses to the provider. Useful as
    /// a neutral default in plumbing that always carries a context.
    pub fn empty() -> EstimateContext {
        EstimateContext::default()
    }

    /// Builds a context covering every key in `reqs`, deriving values
    /// from the given providers. Distinct trace keys are simulated in
    /// parallel over `threads` workers (they dominate build time: one
    /// dispatch simulation plus a `WindowIndex` each); pass 1 for a
    /// serial reference build — the result is identical either way.
    pub fn build(
        reqs: &[EstimateRequest],
        intensity: &dyn IntensityProvider,
        embodied: &dyn EmbodiedSource,
        jobs: &dyn JobSource,
        threads: Option<usize>,
    ) -> EstimateContext {
        let mut trace_keys = BTreeSet::new();
        let mut job_keys = BTreeSet::new();
        let mut system_keys = BTreeSet::new();
        for req in reqs {
            let k = RequestKeys::of(req);
            trace_keys.insert(k.trace);
            if let Some(p) = k.partner_trace {
                trace_keys.insert(p);
            }
            job_keys.insert(k.jobs);
            system_keys.insert(k.system);
        }
        Self::build_from_keys(
            trace_keys,
            job_keys,
            system_keys,
            intensity,
            embodied,
            jobs,
            threads,
        )
    }

    /// Builds a context directly from key sets, without materializing
    /// the requests that will use it. This is the O(distinct keys) path
    /// for callers like the sweep engine whose grids are combinatorial:
    /// the key sets fall out of the dimension lists, so a
    /// million-scenario sweep never allocates a million requests just
    /// to discover a handful of keys. Semantics are identical to
    /// [`EstimateContext::build`] on any request set deriving exactly
    /// these keys.
    #[allow(clippy::too_many_arguments)]
    pub fn build_from_keys(
        trace_keys: BTreeSet<TraceKey>,
        job_keys: BTreeSet<JobKey>,
        system_keys: BTreeSet<SystemId>,
        intensity: &dyn IntensityProvider,
        embodied: &dyn EmbodiedSource,
        jobs: &dyn JobSource,
        threads: Option<usize>,
    ) -> EstimateContext {
        // File-sourced keys never consult a provider: the estimator
        // resolves them from its registered trace files (which are
        // already parsed and indexed — there is nothing to precompute),
        // so they are simply absent from the context and miss through.
        let keys: Vec<TraceKey> = trace_keys
            .into_iter()
            .filter(|&(_, source, _, _)| source != TraceSource::File)
            .collect();
        let workers = threads
            .map(|n| n.max(1))
            .unwrap_or_else(|| worker_count(keys.len()));
        let built = par_map_workers(&keys, workers, |_, &(region, source, year, seed)| {
            let trace = intensity.year_trace(region, source, year, seed);
            let stats = TraceStats::of(&trace);
            (trace, stats)
        });
        let mut traces = BTreeMap::new();
        let mut stats = BTreeMap::new();
        for (key, (trace, stat)) in keys.into_iter().zip(built) {
            traces.insert(key, trace);
            stats.insert(key, stat);
        }
        EstimateContext {
            traces,
            stats,
            systems: system_keys
                .into_iter()
                .map(|id| (id, embodied.build_system(id)))
                .collect(),
            jobs: job_keys
                .into_iter()
                .map(|(n, seed)| ((n, seed), jobs.job_trace(n, seed)))
                .collect(),
        }
    }

    /// The trace for `key`, if precomputed.
    pub fn trace(&self, key: &TraceKey) -> Option<Arc<IntensityTrace>> {
        self.traces.get(key).cloned()
    }

    /// The stats of `key`'s trace, if precomputed.
    pub fn trace_stats(&self, key: &TraceKey) -> Option<TraceStats> {
        self.stats.get(key).copied()
    }

    /// The as-built inventory of `system`, if precomputed.
    pub fn system(&self, system: SystemId) -> Option<&hpcarbon_core::systems::HpcSystem> {
        self.systems.get(&system)
    }

    /// The job trace for `key`, if precomputed.
    pub fn job_trace(&self, key: &JobKey) -> Option<Arc<Vec<Job>>> {
        self.jobs.get(key).cloned()
    }

    /// Number of distinct traces held.
    pub fn trace_count(&self) -> usize {
        self.traces.len()
    }

    /// Number of distinct job traces held.
    pub fn job_trace_count(&self) -> usize {
        self.jobs.len()
    }

    /// Number of distinct system inventories held.
    pub fn system_count(&self) -> usize {
        self.systems.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::providers::{CatalogEmbodied, DispatchIntensity, GeneratedJobs};
    use hpcarbon_sched::Policy;

    fn req(seed: u64) -> EstimateRequest {
        let mut r = EstimateRequest::paper_baseline(SystemId::Frontier, OperatorId::Eso);
        r.seed = seed;
        r.jobs = 10;
        r
    }

    #[test]
    fn keys_are_pure_in_the_request() {
        assert_eq!(RequestKeys::of(&req(7)), RequestKeys::of(&req(7)));
        assert_ne!(
            RequestKeys::of(&req(7)).trace,
            RequestKeys::of(&req(8)).trace
        );
    }

    #[test]
    fn partner_key_tracks_policy_and_override() {
        let fifo = req(1);
        assert_eq!(RequestKeys::of(&fifo).partner_trace, None);
        let mut multi = req(1);
        multi.policy = Policy::SpatioTemporal { slack_hours: 24 };
        let k = RequestKeys::of(&multi).partner_trace.unwrap();
        assert_eq!(k.0, OperatorId::Ciso);
        assert_eq!(k.3, RequestKeys::of(&multi).trace.3);
        let mut forced = req(1);
        forced.partner = Some(true);
        assert!(RequestKeys::of(&forced).partner_trace.is_some());
        let mut off = multi.clone();
        off.partner = Some(false);
        assert_eq!(RequestKeys::of(&off).partner_trace, None);
    }

    #[test]
    fn build_deduplicates_keys() {
        // Same seed twice, one distinct: 2 trace keys, 2 job keys, 1 system.
        let reqs = [req(7), req(7), req(9)];
        let ctx = EstimateContext::build(
            &reqs,
            &DispatchIntensity,
            &CatalogEmbodied,
            &GeneratedJobs,
            Some(1),
        );
        assert_eq!(ctx.trace_count(), 2);
        assert_eq!(ctx.job_trace_count(), 2);
        assert_eq!(ctx.system_count(), 1);
        let key = RequestKeys::of(&reqs[0]);
        let trace = ctx.trace(&key.trace).unwrap();
        assert_eq!(ctx.trace_stats(&key.trace).unwrap(), TraceStats::of(&trace));
        assert_eq!(ctx.job_trace(&key.jobs).unwrap().len(), 10);
        assert!(ctx.system(SystemId::Frontier).is_some());
        assert!(ctx.system(SystemId::Lumi).is_none());
    }

    #[test]
    fn parallel_build_matches_serial() {
        let reqs = [req(1), req(2), req(3), req(4)];
        let serial = EstimateContext::build(
            &reqs,
            &DispatchIntensity,
            &CatalogEmbodied,
            &GeneratedJobs,
            Some(1),
        );
        let parallel = EstimateContext::build(
            &reqs,
            &DispatchIntensity,
            &CatalogEmbodied,
            &GeneratedJobs,
            Some(4),
        );
        for (key, t) in &serial.traces {
            let p = parallel.trace(key).unwrap();
            assert_eq!(t.series().values(), p.series().values());
            assert_eq!(serial.trace_stats(key), parallel.trace_stats(key));
        }
        assert_eq!(serial.jobs.len(), parallel.jobs.len());
    }

    #[test]
    fn file_keys_are_never_sent_to_the_provider() {
        // DispatchIntensity panics on File keys by contract; the build
        // must filter them rather than forward them.
        let mut file_req = req(7);
        file_req.source = TraceSource::File;
        let ctx = EstimateContext::build(
            &[file_req.clone(), req(9)],
            &DispatchIntensity,
            &CatalogEmbodied,
            &GeneratedJobs,
            Some(1),
        );
        assert_eq!(ctx.trace_count(), 1);
        assert!(ctx.trace(&RequestKeys::of(&file_req).trace).is_none());
    }

    #[test]
    fn empty_context_misses_everything() {
        let ctx = EstimateContext::empty();
        assert!(ctx.trace(&RequestKeys::of(&req(1)).trace).is_none());
        assert!(ctx.system(SystemId::Frontier).is_none());
    }
}
