//! The request dimensions: which system, storage variant, PUE model,
//! trace source, and upgrade path an estimate is asked about.
//!
//! These types were born in the sweep engine's scenario grid and moved
//! here when the API became the single front door; `hpcarbon_sweep`
//! re-exports them, so grid declarations and estimate requests share one
//! vocabulary.

use crate::error::ApiError;
use hpcarbon_core::systems::HpcSystem;
use hpcarbon_workloads::benchmarks::Suite;
use hpcarbon_workloads::nodes::NodeGen;

/// Which Table 2 system the request deploys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SystemId {
    /// Frontier (Oak Ridge).
    Frontier,
    /// LUMI (Kajaani).
    Lumi,
    /// Perlmutter (Berkeley).
    Perlmutter,
}

impl SystemId {
    /// All Table 2 systems, paper order.
    pub const ALL: [SystemId; 3] = [SystemId::Frontier, SystemId::Lumi, SystemId::Perlmutter];

    /// Builds the system inventory from the Table 1/2 catalog.
    pub fn build(self) -> HpcSystem {
        match self {
            SystemId::Frontier => HpcSystem::frontier(),
            SystemId::Lumi => HpcSystem::lumi(),
            SystemId::Perlmutter => HpcSystem::perlmutter(),
        }
    }

    /// Display label (also the JSON value).
    pub fn label(self) -> &'static str {
        match self {
            SystemId::Frontier => "frontier",
            SystemId::Lumi => "lumi",
            SystemId::Perlmutter => "perlmutter",
        }
    }
}

/// Storage-architecture variant applied to the system before costing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageVariant {
    /// The as-built inventory.
    Baseline,
    /// The Fig. 5 discussion's what-if: replace the HDD capacity tier with
    /// flash at equal capacity. Fails soft on systems with no HDD tier.
    AllFlash,
}

impl StorageVariant {
    /// Both variants.
    pub const ALL: [StorageVariant; 2] = [StorageVariant::Baseline, StorageVariant::AllFlash];

    /// Display label (also the JSON value).
    pub fn label(self) -> &'static str {
        match self {
            StorageVariant::Baseline => "baseline",
            StorageVariant::AllFlash => "all-flash",
        }
    }
}

/// Facility PUE model for the request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PueSpec {
    /// Constant year-round PUE (the paper's assumption).
    Constant(f64),
    /// Seasonal PUE: sinusoidal around `mean` with the given swing
    /// (summer chiller peak, winter free cooling).
    Seasonal {
        /// Annual mean PUE.
        mean: f64,
        /// Seasonal half-swing; the winter minimum `mean - amplitude`
        /// must stay ≥ 1.0.
        amplitude: f64,
    },
}

impl PueSpec {
    /// The annual-mean PUE value.
    pub fn mean_value(self) -> f64 {
        match self {
            PueSpec::Constant(v) => v,
            PueSpec::Seasonal { mean, .. } => mean,
        }
    }

    /// Checks physical validity (no PUE below 1.0, finite values).
    pub fn validate(self) -> Result<(), ApiError> {
        let ok = match self {
            PueSpec::Constant(v) => v.is_finite() && v >= 1.0,
            PueSpec::Seasonal { mean, amplitude } => {
                mean.is_finite()
                    && amplitude.is_finite()
                    && amplitude >= 0.0
                    && mean - amplitude >= 1.0
            }
        };
        if ok {
            Ok(())
        } else {
            Err(ApiError::InvalidPue(self))
        }
    }

    /// Compact display label (`1.20` or `1.20±0.10`).
    pub fn label(self) -> String {
        match self {
            PueSpec::Constant(v) => format!("{v:.2}"),
            PueSpec::Seasonal { mean, amplitude } => format!("{mean:.2}±{amplitude:.2}"),
        }
    }
}

/// Where a request's intensity trace comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TraceSource {
    /// The calibrated dispatch simulator
    /// ([`hpcarbon_grid::sim::simulate_year`]) — the paper's trace set.
    Paper,
    /// The synthetic harmonic generator
    /// ([`hpcarbon_grid::synth::synthesize_year`]) — cheap deterministic
    /// region-years beyond the shipped traces.
    Synthetic,
    /// A measured region-year ingested from a trace file
    /// ([`hpcarbon_grid::tracefile`]) and registered with the estimator
    /// up front. Requests with this source fail if no file was loaded
    /// for their region.
    File,
}

impl TraceSource {
    /// The *generated* sources, paper first. [`TraceSource::File`] is
    /// deliberately absent: it needs an out-of-band file registration, so
    /// sweep grids and vocabulary loops must opt into it explicitly.
    pub const ALL: [TraceSource; 2] = [TraceSource::Paper, TraceSource::Synthetic];

    /// Display label (also the JSON value).
    pub fn label(self) -> &'static str {
        match self {
            TraceSource::Paper => "paper",
            TraceSource::Synthetic => "synthetic",
            TraceSource::File => "file",
        }
    }
}

/// Which forecast model the scheduler plans on. `None` in a request means
/// perfect knowledge (policies argmin over the actual trace — the oracle
/// numbers the paper reports); `Some` makes policies argmin over the
/// forecast while carbon is still realized against the actual trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ForecastModel {
    /// Perfect knowledge, run through the forecast plumbing: the planning
    /// trace is the actual trace, so realized savings must equal oracle
    /// savings byte-for-byte. Exists to validate the machinery.
    Oracle,
    /// 24-hour persistence: tomorrow looks like today
    /// ([`hpcarbon_grid::forecast::persistence_forecast`]).
    Persistence,
    /// Day-ahead harmonic fit
    /// ([`hpcarbon_grid::forecast::day_ahead_harmonic_forecast`]).
    DayAhead,
    /// Noisy oracle with multiplicative Gaussian error
    /// ([`hpcarbon_grid::forecast::noisy_oracle_forecast`]), seeded from
    /// the request's forecast substream.
    Noisy {
        /// Relative error σ, in whole percent.
        error_pct: u32,
    },
}

impl ForecastModel {
    /// Display label (also the JSON value): `oracle`, `persistence`,
    /// `day-ahead`, or `noisy:<pct>`.
    pub fn label(self) -> String {
        match self {
            ForecastModel::Oracle => "oracle".to_string(),
            ForecastModel::Persistence => "persistence".to_string(),
            ForecastModel::DayAhead => "day-ahead".to_string(),
            ForecastModel::Noisy { error_pct } => format!("noisy:{error_pct}"),
        }
    }
}

/// One upgrade question evaluated alongside the deployment estimate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UpgradePath {
    /// Currently deployed node generation.
    pub from: NodeGen,
    /// Candidate replacement.
    pub to: NodeGen,
    /// Workload mix driving performance/power.
    pub suite: Suite,
}

impl UpgradePath {
    /// Compact display label (`p100->a100/NLP`).
    pub fn label(self) -> String {
        format!(
            "{}->{}/{}",
            node_label(self.from),
            node_label(self.to),
            self.suite.label()
        )
    }
}

/// The short node-generation name used in labels and JSON (`p100`, …).
pub fn node_label(n: NodeGen) -> &'static str {
    match n {
        NodeGen::P100Node => "p100",
        NodeGen::V100Node => "v100",
        NodeGen::A100Node => "a100",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_stable_json_values() {
        assert_eq!(SystemId::Frontier.label(), "frontier");
        assert_eq!(StorageVariant::AllFlash.label(), "all-flash");
        assert_eq!(TraceSource::Synthetic.label(), "synthetic");
        assert_eq!(TraceSource::File.label(), "file");
        assert_eq!(node_label(NodeGen::V100Node), "v100");
    }

    #[test]
    fn forecast_labels() {
        assert_eq!(ForecastModel::Oracle.label(), "oracle");
        assert_eq!(ForecastModel::Persistence.label(), "persistence");
        assert_eq!(ForecastModel::DayAhead.label(), "day-ahead");
        assert_eq!(ForecastModel::Noisy { error_pct: 15 }.label(), "noisy:15");
    }

    #[test]
    fn file_source_stays_out_of_the_grid_vocabulary() {
        assert!(!TraceSource::ALL.contains(&TraceSource::File));
    }

    #[test]
    fn pue_validation() {
        assert!(PueSpec::Constant(1.2).validate().is_ok());
        assert!(PueSpec::Constant(0.8).validate().is_err());
        assert!(PueSpec::Seasonal {
            mean: 1.2,
            amplitude: 0.1
        }
        .validate()
        .is_ok());
        assert!(PueSpec::Seasonal {
            mean: 1.1,
            amplitude: 0.5
        }
        .validate()
        .is_err());
        assert!(PueSpec::Constant(f64::NAN).validate().is_err());
    }

    #[test]
    fn pue_labels() {
        assert_eq!(PueSpec::Constant(1.2).label(), "1.20");
        assert_eq!(
            PueSpec::Seasonal {
                mean: 1.2,
                amplitude: 0.1
            }
            .label(),
            "1.20±0.10"
        );
    }
}
