//! A minimal hand-rolled JSON reader/writer.
//!
//! The offline dependency set has no serde, so the request parser and the
//! report round-trip are built on this ~200-line recursive-descent parser.
//! It accepts exactly the JSON grammar (RFC 8259) with two deliberate
//! strictnesses that serve the API's versioning rule:
//!
//! - **objects preserve key order** (emission is deterministic), and
//! - **duplicate keys are an error** (a request must mean one thing).
//!
//! Writing goes through [`esc`] / [`fmt_f64`]; metric formatting matches
//! the sweep table's fixed `{:.4}` idiom so parse → re-emit is stable.

use crate::error::ParseError;

/// A parsed JSON value. Objects keep their textual key order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always held as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in key order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// The value's type name, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "a boolean",
            Json::Num(_) => "a number",
            Json::Str(_) => "a string",
            Json::Arr(_) => "an array",
            Json::Obj(_) => "an object",
        }
    }

    /// Looks a key up in an object value; `None` for absent keys (and for
    /// non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Parses one JSON document; trailing non-whitespace is an error.
pub fn parse(src: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: src.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the JSON document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError::Json {
            at: self.pos,
            msg: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected \"{lit}\"")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect_byte(b'{')?;
        let mut fields: Vec<(String, Json)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if fields.iter().any(|(k, _)| *k == key) {
                return Err(self.err(format!("duplicate key \"{key}\"")));
            }
            self.skip_ws();
            self.expect_byte(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 1;
                                let lo = self.hex4()?;
                                if !(0xdc00..0xe000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let cp = 0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00);
                                char::from_u32(cp).ok_or_else(|| self.err("invalid code point"))?
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("invalid code point"))?
                            };
                            out.push(c);
                            // hex4 leaves pos one past the last digit, and
                            // the trailing `continue` skips the +1 below.
                            continue;
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control byte in string")),
                Some(c) if c < 0x80 => {
                    // ASCII fast path — the overwhelmingly common case;
                    // avoids re-validating the remaining buffer per char.
                    out.push(c as char);
                    self.pos += 1;
                }
                Some(first) => {
                    // One multibyte UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8 by construction); its
                    // length is encoded in the lead byte, so only this
                    // scalar's bytes are decoded, never the whole tail.
                    let len = match first {
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let bytes = &self.bytes[self.pos..self.pos + len];
                    // The byte stream came from a &str, so this is
                    // already-valid UTF-8: lossy decoding borrows it
                    // unchanged and the fallbacks are unreachable — this
                    // path cannot panic.
                    let s = String::from_utf8_lossy(bytes);
                    out.push(s.chars().next().unwrap_or(char::REPLACEMENT_CHARACTER));
                    self.pos += len;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(c @ b'0'..=b'9') => u32::from(c - b'0'),
                Some(c @ b'a'..=b'f') => u32::from(c - b'a') + 10,
                Some(c @ b'A'..=b'F') => u32::from(c - b'A') + 10,
                _ => return Err(self.err("expected four hex digits after \\u")),
            };
            v = (v << 4) | d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: a lone 0 or a nonzero-led digit run.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("expected a digit")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected a digit after the decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected a digit in the exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        // The scanned span holds only ASCII sign/digit/dot/exponent
        // bytes, so lossy decoding borrows it verbatim — no panic path.
        let text = String::from_utf8_lossy(&self.bytes[start..self.pos]);
        // Rust's f64 parse never fails on valid JSON number syntax — it
        // returns ±inf on overflow. JSON cannot represent non-finite
        // values, and letting one in would make every emitter downstream
        // (`fmt_f64`, `fmt_metric`) produce invalid documents, so reject
        // it here.
        match text.parse::<f64>() {
            Ok(v) if v.is_finite() => Ok(Json::Num(v)),
            _ => Err(self.err("number out of range for a finite f64")),
        }
    }
}

/// Escapes and quotes a string for JSON emission.
pub fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Emits a request-layer number: shortest-round-trip `Display`, which is
/// stable under parse → re-emit (`1.2` stays `1.2`, `200` stays `200`).
pub fn fmt_f64(v: f64) -> String {
    format!("{v}")
}

/// Emits a report metric in the sweep table's fixed `{:.4}` idiom;
/// `null` when undefined. Fixed precision keeps parse → re-emit stable
/// and 1-vs-N-thread outputs byte-comparable.
pub fn fmt_metric(v: Option<f64>) -> String {
    match v {
        Some(v) => format!("{v:.4}"),
        None => "null".to_string(),
    }
}

// ---- Typed decode helpers shared by the request and report decoders.
// Each takes the schema-level field name so errors read `upgrade.from`,
// not a bare JSON path. ----

pub(crate) fn as_object<'a>(
    j: &'a Json,
    field: &'static str,
) -> Result<&'a [(String, Json)], ParseError> {
    match j {
        Json::Obj(fields) => Ok(fields),
        _ => Err(ParseError::BadType {
            field,
            expected: "an object",
        }),
    }
}

pub(crate) fn reject_unknown(fields: &[(String, Json)], known: &[&str]) -> Result<(), ParseError> {
    for (k, _) in fields {
        if !known.contains(&k.as_str()) {
            return Err(ParseError::UnknownField { field: k.clone() });
        }
    }
    Ok(())
}

pub(crate) fn as_str<'a>(field: &'static str, j: &'a Json) -> Result<&'a str, ParseError> {
    match j {
        Json::Str(s) => Ok(s),
        _ => Err(ParseError::BadType {
            field,
            expected: "a string",
        }),
    }
}

pub(crate) fn require_str<'a>(j: &'a Json, field: &'static str) -> Result<&'a str, ParseError> {
    match j.get(field) {
        Some(v) => as_str(field, v),
        None => Err(ParseError::MissingField { field }),
    }
}

pub(crate) fn as_num(field: &'static str, j: &Json) -> Result<f64, ParseError> {
    match j {
        Json::Num(v) => Ok(*v),
        _ => Err(ParseError::BadType {
            field,
            expected: "a number",
        }),
    }
}

pub(crate) fn as_opt_num(field: &'static str, j: &Json) -> Result<Option<f64>, ParseError> {
    match j {
        Json::Null => Ok(None),
        other => as_num(field, other).map(Some),
    }
}

pub(crate) fn as_integer(field: &'static str, j: &Json) -> Result<f64, ParseError> {
    let v = as_num(field, j)?;
    if v.fract() != 0.0 || !v.is_finite() {
        return Err(ParseError::BadNumber {
            field,
            reason: "must be an integer",
        });
    }
    Ok(v)
}

pub(crate) fn as_u64(field: &'static str, j: &Json) -> Result<u64, ParseError> {
    let v = as_integer(field, j)?;
    // Exclusive upper bound: `u64::MAX as f64` rounds *up* to 2^64, so an
    // inclusive check would let 2^64 saturate to u64::MAX instead of
    // failing. Every f64 strictly below 2^64 converts losslessly enough
    // (it is an integer by the check above).
    if v < 0.0 || v >= u64::MAX as f64 {
        return Err(ParseError::BadNumber {
            field,
            reason: "must be a non-negative integer below 2^64",
        });
    }
    Ok(v as u64)
}

pub(crate) fn as_u32(field: &'static str, j: &Json) -> Result<u32, ParseError> {
    let v = as_integer(field, j)?;
    if !(0.0..=f64::from(u32::MAX)).contains(&v) {
        return Err(ParseError::BadNumber {
            field,
            reason: "must fit an unsigned 32-bit integer",
        });
    }
    Ok(v as u32)
}

pub(crate) fn as_i32(field: &'static str, j: &Json) -> Result<i32, ParseError> {
    let v = as_integer(field, j)?;
    if !(f64::from(i32::MIN)..=f64::from(i32::MAX)).contains(&v) {
        return Err(ParseError::BadNumber {
            field,
            reason: "must fit a signed 32-bit integer",
        });
    }
    Ok(v as i32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse("-12.5e1").unwrap(), Json::Num(-125.0));
        assert_eq!(parse("\"hi\"").unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let j = parse(r#"{"a": [1, {"b": null}], "c": "x"}"#).unwrap();
        assert_eq!(j.get("c"), Some(&Json::Str("x".into())));
        match j.get("a") {
            Some(Json::Arr(items)) => {
                assert_eq!(items[0], Json::Num(1.0));
                assert_eq!(items[1].get("b"), Some(&Json::Null));
            }
            other => panic!("expected array, got {other:?}"),
        }
    }

    #[test]
    fn escapes_round_trip() {
        let original = "a\"b\\c\nd\tε";
        let emitted = esc(original);
        match parse(&emitted).unwrap() {
            Json::Str(s) => assert_eq!(s, original),
            other => panic!("expected string, got {other:?}"),
        }
        // Unicode escapes decode too, including surrogate pairs.
        assert_eq!(
            parse(r#""\u00e9\ud83d\ude00""#).unwrap(),
            Json::Str("é😀".into())
        );
    }

    #[test]
    fn overflowing_numbers_are_rejected_not_infinity() {
        // f64 parse returns inf on overflow; JSON cannot express inf, so
        // the parser must reject rather than let emitters produce
        // invalid documents.
        for bad in ["1e999", "-1e999", "123456789e999999"] {
            assert!(parse(bad).is_err(), "{bad} must not parse");
        }
        // Large but finite is fine.
        assert_eq!(parse("1e308").unwrap(), Json::Num(1e308));
    }

    #[test]
    fn long_multibyte_strings_round_trip() {
        // Exercises the per-scalar decode path (no whole-tail rescans).
        let original: String = "αβγ→é😀x".repeat(500);
        let emitted = esc(&original);
        match parse(&emitted).unwrap() {
            Json::Str(s) => assert_eq!(s, original),
            other => panic!("expected string, got {other:?}"),
        }
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "tru",
            "01",
            "1.",
            "\"\\x\"",
            "1 2",
            "{\"a\":1,\"a\":2}",
            "\"unterminated",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn duplicate_keys_are_rejected() {
        let e = parse(r#"{"seed": 1, "seed": 2}"#).unwrap_err();
        assert!(e.to_string().contains("duplicate key"), "{e}");
    }

    #[test]
    fn object_key_order_is_preserved() {
        match parse(r#"{"z": 1, "a": 2}"#).unwrap() {
            Json::Obj(fields) => {
                let keys: Vec<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
                assert_eq!(keys, ["z", "a"]);
            }
            other => panic!("expected object, got {other:?}"),
        }
    }

    #[test]
    fn number_formats() {
        assert_eq!(fmt_f64(1.2), "1.2");
        assert_eq!(fmt_f64(200.0), "200");
        assert_eq!(fmt_metric(Some(1.23456)), "1.2346");
        assert_eq!(fmt_metric(None), "null");
    }
}
