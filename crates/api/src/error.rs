//! The one error type of the front door.
//!
//! Before this crate existed every layer failed with its own enum —
//! `ScenarioError` in the sweep, `SimError` in the scheduler,
//! `WhatIfError` in the embodied what-ifs, `AnalysisError` in the grid
//! analyses — and every consumer re-wrapped them differently. [`ApiError`]
//! unifies them behind one surface: anything an [`crate::Estimator`] can
//! fail with, plus the parse/validation failures of the request layer.
//!
//! Display strings for the wrapped layer errors are kept **byte-for-byte
//! identical** to the old `ScenarioError` renderings, because the sweep's
//! CSV/JSON error cells are part of the stable output contract.

use crate::types::PueSpec;
use hpcarbon_core::whatif::WhatIfError;
use hpcarbon_grid::analysis::AnalysisError;
use hpcarbon_sched::SimError;

/// Why a request could not be parsed into an [`crate::EstimateRequest`].
///
/// Every variant names the offending field, and [`ParseError::UnknownValue`]
/// lists the accepted values — the CLI and the JSON decoder share these, so
/// a typo'd `--from x100` and a typo'd `"system": "fronteer"` produce the
/// same kind of actionable message.
#[derive(Debug, Clone, PartialEq)]
pub enum ParseError {
    /// The input is not syntactically valid JSON.
    Json {
        /// Byte offset of the failure.
        at: usize,
        /// What the parser expected.
        msg: String,
    },
    /// An object carries a field the schema does not define (the
    /// versioning rule: unknown fields are rejected, never ignored).
    UnknownField {
        /// The unrecognized key.
        field: String,
    },
    /// A required field is absent.
    MissingField {
        /// The absent key.
        field: &'static str,
    },
    /// A field holds the wrong JSON type.
    BadType {
        /// The offending key.
        field: &'static str,
        /// The type the schema expects.
        expected: &'static str,
    },
    /// An enumerated field holds a value outside its vocabulary.
    UnknownValue {
        /// The offending key.
        field: &'static str,
        /// The rejected value.
        value: String,
        /// The accepted values.
        expected: &'static [&'static str],
    },
    /// A numeric field is outside its domain (negative count,
    /// non-integer hour, fraction outside (0, 1], …).
    BadNumber {
        /// The offending key.
        field: &'static str,
        /// Why the number is rejected.
        reason: &'static str,
    },
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Json { at, msg } => write!(f, "invalid JSON at byte {at}: {msg}"),
            ParseError::UnknownField { field } => {
                write!(f, "unknown field \"{field}\" (unknown fields are rejected)")
            }
            ParseError::MissingField { field } => write!(f, "missing required field \"{field}\""),
            ParseError::BadType { field, expected } => {
                write!(f, "field \"{field}\" must be {expected}")
            }
            ParseError::UnknownValue {
                field,
                value,
                expected,
            } => {
                write!(
                    f,
                    "unknown {field} \"{value}\" (valid values: {})",
                    expected.join(", ")
                )
            }
            ParseError::BadNumber { field, reason } => {
                write!(f, "field \"{field}\" {reason}")
            }
        }
    }
}

impl std::error::Error for ParseError {}

/// Everything the estimation API can fail with.
#[derive(Debug, Clone, PartialEq)]
pub enum ApiError {
    /// The PUE model is unphysical.
    InvalidPue(PueSpec),
    /// The storage what-if does not apply to this system.
    WhatIf(WhatIfError),
    /// The scheduling run is infeasible.
    Sched(SimError),
    /// A multi-trace grid analysis is infeasible.
    Analysis(AnalysisError),
    /// The request declares a schema version this build does not speak.
    Schema {
        /// The version the request declares.
        found: u64,
        /// The version this build supports.
        supported: u32,
    },
    /// The request could not be parsed.
    Parse(ParseError),
    /// A parsed request fails semantic validation.
    InvalidRequest {
        /// The offending field.
        field: &'static str,
        /// Why it is rejected.
        reason: &'static str,
    },
}

impl ApiError {
    /// A stable machine-readable label for the error's variant.
    ///
    /// The serving layer puts this next to the human-readable message in
    /// its JSON error payloads (`{"error": {"kind": ..., "message":
    /// ...}}`), so clients can branch on the failure class without
    /// parsing prose. The vocabulary is part of the wire contract —
    /// extend it, never rename it.
    pub fn kind(&self) -> &'static str {
        match self {
            ApiError::InvalidPue(_) => "invalid-pue",
            ApiError::WhatIf(_) => "what-if",
            ApiError::Sched(_) => "sched",
            ApiError::Analysis(_) => "analysis",
            ApiError::Schema { .. } => "schema",
            ApiError::Parse(_) => "parse",
            ApiError::InvalidRequest { .. } => "invalid-request",
        }
    }
}

impl std::fmt::Display for ApiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            // The first three renderings are the sweep's historical
            // `ScenarioError` strings; CSV/JSON error cells depend on them.
            ApiError::WhatIf(e) => write!(f, "storage what-if: {e}"),
            ApiError::Sched(e) => write!(f, "scheduling: {e}"),
            ApiError::InvalidPue(p) => write!(f, "invalid PUE model {p:?}"),
            ApiError::Analysis(e) => write!(f, "grid analysis: {e}"),
            ApiError::Schema { found, supported } => write!(
                f,
                "unsupported schema_version {found} (this build supports {supported})"
            ),
            ApiError::Parse(e) => write!(f, "{e}"),
            ApiError::InvalidRequest { field, reason } => {
                write!(f, "invalid request: field \"{field}\" {reason}")
            }
        }
    }
}

impl std::error::Error for ApiError {}

impl From<WhatIfError> for ApiError {
    fn from(e: WhatIfError) -> ApiError {
        ApiError::WhatIf(e)
    }
}

impl From<SimError> for ApiError {
    fn from(e: SimError) -> ApiError {
        ApiError::Sched(e)
    }
}

impl From<AnalysisError> for ApiError {
    fn from(e: AnalysisError) -> ApiError {
        ApiError::Analysis(e)
    }
}

impl From<ParseError> for ApiError {
    fn from(e: ParseError) -> ApiError {
        ApiError::Parse(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcarbon_core::db::PartId;

    #[test]
    fn legacy_scenario_error_strings_are_preserved() {
        // These exact strings appear in sweep CSV/JSON error cells.
        assert_eq!(
            ApiError::from(WhatIfError::NoSourceUnits(PartId::Hdd16tb)).to_string(),
            "storage what-if: system holds no Hdd16tb"
        );
        assert!(ApiError::InvalidPue(PueSpec::Constant(0.8))
            .to_string()
            .starts_with("invalid PUE model Constant"));
        assert!(ApiError::from(SimError::OversizedJob { job: 3, gpus: 512 })
            .to_string()
            .starts_with("scheduling: "));
    }

    #[test]
    fn unknown_value_lists_the_vocabulary() {
        let e = ParseError::UnknownValue {
            field: "--from",
            value: "x100".into(),
            expected: &["p100", "v100", "a100"],
        };
        assert_eq!(
            e.to_string(),
            "unknown --from \"x100\" (valid values: p100, v100, a100)"
        );
    }

    #[test]
    fn kinds_are_stable_wire_labels() {
        // The serving layer's error payloads carry these; renaming one is
        // a wire-contract break.
        assert_eq!(
            ApiError::InvalidPue(PueSpec::Constant(0.5)).kind(),
            "invalid-pue"
        );
        assert_eq!(
            ApiError::from(WhatIfError::NoSourceUnits(PartId::Hdd16tb)).kind(),
            "what-if"
        );
        assert_eq!(
            ApiError::Schema {
                found: 2,
                supported: 1
            }
            .kind(),
            "schema"
        );
        assert_eq!(
            ApiError::from(ParseError::MissingField { field: "region" }).kind(),
            "parse"
        );
        assert_eq!(
            ApiError::InvalidRequest {
                field: "jobs",
                reason: "must be at least 1"
            }
            .kind(),
            "invalid-request"
        );
    }

    #[test]
    fn analysis_errors_unify() {
        let e = ApiError::from(AnalysisError::YearMismatch);
        assert_eq!(
            e.to_string(),
            "grid analysis: all traces must cover the same year"
        );
    }
}
