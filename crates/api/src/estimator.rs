//! The estimator: one validated request in, one footprint report out.
//!
//! [`Estimator::estimate`] runs the paper's full pipeline (Eqs. 1–6)
//! against the configured providers:
//!
//! 1. embodied composition, with the storage what-if applied;
//! 2. the regional grid year from the [`IntensityProvider`];
//! 3. a scheduling run on a cluster powered by that grid (multi-region
//!    policies get a partner site), plus shift savings against the
//!    run-at-arrival baseline;
//! 4. PUE-adjusted annual accounting of one reference node;
//! 5. the upgrade question at the region's median intensity.
//!
//! ## Determinism
//!
//! Estimation is a **pure function of the request and the providers**.
//! All randomness forks off the request's seed through fixed substream
//! labels (`trace`, `jobs`) — never thread-local or shared state — and
//! [`Estimator::estimate_batch`] fans requests over
//! [`hpcarbon_sim::par::par_map_workers`], which returns results in input
//! order. Batch output (and its JSON emission) is therefore
//! **byte-identical for every thread count**; `tests/api_roundtrip.rs`
//! and the CI smoke job diff 1-thread against 4-thread runs.

use crate::context::{EstimateContext, RequestKeys, TraceStats};
use crate::error::ApiError;
use crate::providers::{
    CatalogEmbodied, DispatchIntensity, EmbodiedSource, GeneratedJobs, IntensityProvider,
    JobSource, PueProvider, RequestPue,
};
use crate::report::{FootprintReport, Verdict};
use crate::request::{EstimateRequest, ValidRequest};
use crate::types::{ForecastModel, PueSpec, StorageVariant, TraceSource};
use hpcarbon_core::db::PartId;
use hpcarbon_core::operational::Pue;
use hpcarbon_core::systems::HpcSystem;
use hpcarbon_core::whatif::swap_storage_tier;
use hpcarbon_grid::forecast::{
    day_ahead_harmonic_forecast, noisy_oracle_forecast, persistence_forecast,
};
use hpcarbon_grid::regions::OperatorId;
use hpcarbon_grid::trace::IntensityTrace;
use hpcarbon_power::pue_model::{account_with_seasonal_pue, SeasonalPue};
use hpcarbon_sched::{shift_savings, summarize_shift_savings, Cluster, Simulation};
use hpcarbon_sim::par::{par_map_workers, worker_count};
use hpcarbon_sim::rng::SimRng;
use hpcarbon_units::{CarbonIntensity, TimeSpan};
use hpcarbon_upgrade::savings::UpgradeScenario;
use hpcarbon_upgrade::{Recommendation, UpgradeAdvisor};
use hpcarbon_workloads::power::node_active_power;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Assembles an [`Estimator`] from providers; every axis defaults to the
/// in-repo models.
pub struct EstimatorBuilder {
    intensity: Box<dyn IntensityProvider>,
    embodied: Box<dyn EmbodiedSource>,
    pue: Box<dyn PueProvider>,
    jobs: Box<dyn JobSource>,
    context: Option<Arc<EstimateContext>>,
    threads: Option<usize>,
    trace_files: BTreeMap<OperatorId, Arc<IntensityTrace>>,
}

impl EstimatorBuilder {
    /// Swaps the intensity provider.
    pub fn intensity(mut self, p: impl IntensityProvider + 'static) -> EstimatorBuilder {
        self.intensity = Box::new(p);
        self
    }

    /// Swaps the embodied-inventory source.
    pub fn embodied(mut self, p: impl EmbodiedSource + 'static) -> EstimatorBuilder {
        self.embodied = Box::new(p);
        self
    }

    /// Swaps the PUE provider.
    pub fn pue(mut self, p: impl PueProvider + 'static) -> EstimatorBuilder {
        self.pue = Box::new(p);
        self
    }

    /// Swaps the job source.
    pub fn jobs(mut self, p: impl JobSource + 'static) -> EstimatorBuilder {
        self.jobs = Box::new(p);
        self
    }

    /// Attaches a prebuilt [`EstimateContext`]. Every evaluation consults
    /// it before falling back to the providers; because the context is
    /// built *from* the providers (see [`Estimator::context_for`]),
    /// attaching one can never change reported bytes — only latency.
    pub fn context(mut self, ctx: Arc<EstimateContext>) -> EstimatorBuilder {
        self.context = Some(ctx);
        self
    }

    /// Forces the batch worker count (1 = serial reference run); the
    /// default uses the available parallelism.
    pub fn threads(mut self, n: usize) -> EstimatorBuilder {
        self.threads = Some(n.max(1));
        self
    }

    /// Registers a measured trace (typically loaded with
    /// [`hpcarbon_grid::load_trace_file`]) as the region's
    /// [`TraceSource::File`] trace. Requests asking for `"trace": "file"`
    /// in this region resolve to it — bypassing the intensity provider —
    /// and requests for regions without a registered file fail with a
    /// typed error. Registering a region twice replaces the earlier
    /// trace.
    pub fn trace_file(
        mut self,
        region: OperatorId,
        trace: impl Into<Arc<IntensityTrace>>,
    ) -> EstimatorBuilder {
        self.trace_files.insert(region, trace.into());
        self
    }

    /// Finishes the build.
    pub fn build(self) -> Estimator {
        Estimator {
            intensity: self.intensity,
            embodied: self.embodied,
            pue: self.pue,
            jobs: self.jobs,
            context: self.context,
            threads: self.threads,
            trace_files: self.trace_files,
        }
    }
}

/// The single front door to the estimation stack.
///
/// ```
/// use hpcarbon_api::{Estimator, EstimateRequest, SystemId};
/// use hpcarbon_grid::regions::OperatorId;
///
/// let est = Estimator::builder().build();
/// let req = EstimateRequest::paper_baseline(SystemId::Frontier, OperatorId::Eso);
/// let report = est.estimate(&req).unwrap();
/// assert!(report.embodied.total_t > 1000.0);
/// assert!(report.operational.sched_kg > 0.0);
/// ```
pub struct Estimator {
    intensity: Box<dyn IntensityProvider>,
    embodied: Box<dyn EmbodiedSource>,
    pue: Box<dyn PueProvider>,
    jobs: Box<dyn JobSource>,
    context: Option<Arc<EstimateContext>>,
    threads: Option<usize>,
    trace_files: BTreeMap<OperatorId, Arc<IntensityTrace>>,
}

impl Estimator {
    /// Starts a builder with the default providers ([`DispatchIntensity`],
    /// [`CatalogEmbodied`], [`RequestPue`], [`GeneratedJobs`]).
    pub fn builder() -> EstimatorBuilder {
        EstimatorBuilder {
            intensity: Box::new(DispatchIntensity),
            embodied: Box::new(CatalogEmbodied),
            pue: Box::new(RequestPue),
            jobs: Box::new(GeneratedJobs),
            context: None,
            threads: None,
            trace_files: BTreeMap::new(),
        }
    }

    /// Builds an [`EstimateContext`] covering every key `reqs` will look
    /// up, derived from **this estimator's own providers** — the
    /// property that makes attaching it transparent. Distinct traces
    /// build in parallel over the estimator's configured thread count.
    pub fn context_for(&self, reqs: &[EstimateRequest]) -> EstimateContext {
        EstimateContext::build(
            reqs,
            self.intensity.as_ref(),
            self.embodied.as_ref(),
            self.jobs.as_ref(),
            self.threads,
        )
    }

    /// Validates and evaluates one request.
    ///
    /// # Errors
    /// [`ApiError`] when the request is invalid or the combination is
    /// infeasible (storage what-if without a source tier, oversized
    /// shifting slack, …). Errors are values — batch callers record the
    /// error row and keep going.
    pub fn estimate(&self, req: &EstimateRequest) -> Result<FootprintReport, ApiError> {
        let valid = req.validate()?;
        self.estimate_valid(&valid)
    }

    /// The attached context, if any.
    fn attached(&self) -> Option<&EstimateContext> {
        self.context.as_deref()
    }

    /// Evaluates an already-validated request, skipping re-validation —
    /// the entry point for callers that need the [`ValidRequest`] anyway
    /// (the serving layer derives its cache key from it). Same pipeline,
    /// same bytes as [`Estimator::estimate`].
    ///
    /// # Errors
    /// [`ApiError`] when the (valid) combination is infeasible at
    /// evaluation time — storage what-if without a source tier,
    /// oversized shifting slack, a provider returning an unphysical PUE.
    pub fn estimate_valid(&self, valid: &ValidRequest) -> Result<FootprintReport, ApiError> {
        self.evaluate(valid, self.attached())
    }

    /// Evaluates a batch in parallel, one result per request, **in
    /// request order**. Infeasible requests become error entries; the
    /// batch always completes. Output is byte-identical for every
    /// configured thread count.
    ///
    /// Unless a context is already attached, multi-request batches
    /// hoist their shared setup (traces, inventories, job traces) into
    /// a per-call [`EstimateContext`] first — a pure cache, so batch
    /// bytes are unchanged by it.
    pub fn estimate_batch(
        &self,
        reqs: &[EstimateRequest],
    ) -> Vec<Result<FootprintReport, ApiError>> {
        let workers = self.threads.unwrap_or_else(|| worker_count(reqs.len()));
        let built = if self.context.is_none() && reqs.len() > 1 {
            Some(self.context_for(reqs))
        } else {
            None
        };
        let ctx = self.attached().or(built.as_ref());
        par_map_workers(reqs, workers, |_, req| match req.validate() {
            Ok(valid) => self.evaluate(&valid, ctx),
            Err(e) => Err(e),
        })
    }

    /// The trace for `key`: file-sourced keys resolve from the registered
    /// trace files (never a provider); everything else is a context hit
    /// or the intensity provider.
    ///
    /// # Errors
    /// [`ApiError::InvalidRequest`] when a file-sourced key has no
    /// registered trace for its region, or the registered trace covers a
    /// different year than the request asks for.
    fn trace_for(
        &self,
        ctx: Option<&EstimateContext>,
        key: &crate::context::TraceKey,
    ) -> Result<Arc<IntensityTrace>, ApiError> {
        if key.1 == TraceSource::File {
            let trace = self
                .trace_files
                .get(&key.0)
                .ok_or(ApiError::InvalidRequest {
                    field: "trace",
                    reason: "no trace file registered for this region",
                })?;
            if trace.series().year() != key.2 {
                return Err(ApiError::InvalidRequest {
                    field: "year",
                    reason: "does not match the registered trace file's year",
                });
            }
            return Ok(Arc::clone(trace));
        }
        Ok(ctx
            .and_then(|c| c.trace(key))
            .unwrap_or_else(|| self.intensity.year_trace(key.0, key.1, key.2, key.3)))
    }

    /// The five-layer pipeline. Mirrors the historical
    /// `sweep::run_scenario` computation exactly — the sweep now delegates
    /// here, and its CSV/JSON output is a frozen contract. Every `ctx`
    /// lookup falls back to the provider computing the identical value,
    /// so a context changes latency, never bytes.
    fn evaluate(
        &self,
        v: &ValidRequest,
        ctx: Option<&EstimateContext>,
    ) -> Result<FootprintReport, ApiError> {
        let r = v.request();
        let pue = self.pue.resolve(r.pue);
        // Providers cannot smuggle an unphysical model past the gate.
        pue.validate()?;
        let keys = RequestKeys::of(r);

        // Layer 1: embodied composition, with the storage what-if applied.
        let built_system;
        let base: &HpcSystem = match ctx.and_then(|c| c.system(r.system)) {
            Some(s) => s,
            None => {
                built_system = self.embodied.build_system(r.system);
                &built_system
            }
        };
        let (embodied_t, storage_delta_pct) = match r.storage {
            StorageVariant::Baseline => (base.embodied_total().as_t(), None),
            StorageVariant::AllFlash => {
                let ssd = self.embodied.part_spec(PartId::Ssd3_2tb);
                let w = swap_storage_tier(base, PartId::Hdd16tb, ssd)?;
                let delta = w.relative_change() * 100.0;
                (w.system.embodied_total().as_t(), Some(delta))
            }
        };

        // Layer 2: the regional grid year, from this request's own stream.
        let trace = self.trace_for(ctx, &keys.trace)?;
        let stats = ctx
            .and_then(|c| c.trace_stats(&keys.trace))
            .unwrap_or_else(|| TraceStats::of(&trace));
        let median = CarbonIntensity::from_g_per_kwh(stats.median_g_per_kwh);

        // Layer 3: the scheduling run on a cluster powered by that grid,
        // and its carbon savings against the run-at-arrival baseline.
        let mut cluster = Cluster::new(r.region.info().short, trace.clone(), r.cluster_gpus);
        cluster.pue = pue.mean_value();
        let mut clusters = vec![cluster];
        // By default multi-region policies get a partner site (otherwise
        // the spatial axis would silently degenerate to the temporal one
        // in these single-region requests) and single-region policies
        // don't; `request.partner` forces it either way so a policy
        // comparison can hold the topology fixed. The partner is the
        // greenest complement region (GB, or CA when the request already
        // is GB), built from the same provider, seed stream and PUE — so
        // the estimate stays a pure function of the request and the
        // providers. `RequestKeys::of` encodes both rules.
        if let Some(pk) = keys.partner_trace {
            let partner_trace = self.trace_for(ctx, &pk)?;
            let mut partner = Cluster::new(pk.0.info().short, partner_trace, r.cluster_gpus);
            partner.pue = pue.mean_value();
            clusters.push(partner);
        }
        let jobs = ctx
            .and_then(|c| c.job_trace(&keys.jobs))
            .unwrap_or_else(|| self.jobs.job_trace(keys.jobs.0, keys.jobs.1));
        // The oracle run: policies plan on the actual trace — perfect
        // future knowledge, the numbers the paper reports.
        let oracle_sim = Simulation::multi_region(clusters.clone(), r.policy, &jobs).try_run()?;
        let oracle_savings = summarize_shift_savings(&shift_savings(&oracle_sim, &jobs, &clusters));
        // Under a forecast, decisions re-run against the planning trace
        // while carbon stays realized against the actual trace, and the
        // oracle numbers ride along for the realized-vs-oracle columns.
        // Each cluster forecasts its own grid off the request's
        // `forecast` substream, forked per cluster position so the
        // partner's noise is independent of the primary's.
        let (sim, savings, oracle) = match r.forecast {
            None => (oracle_sim, oracle_savings, None),
            Some(model) => {
                let base = SimRng::seed_from(r.seed).substream("forecast");
                let planned: Vec<Cluster> = clusters
                    .iter()
                    .enumerate()
                    .map(|(i, c)| {
                        let f = forecast_trace(model, &c.trace, base.fork(i as u64).seed());
                        c.clone().with_forecast(f)
                    })
                    .collect();
                let sim = Simulation::multi_region(planned.clone(), r.policy, &jobs).try_run()?;
                let savings = summarize_shift_savings(&shift_savings(&sim, &jobs, &planned));
                (sim, savings, Some(oracle_savings))
            }
        };

        // Layer 4: PUE-adjusted annual accounting of one reference node.
        let usage = r.usage;
        let year = TimeSpan::from_years(1.0);
        let it_energy = node_active_power(r.upgrade.from, r.upgrade.suite) * usage.value() * year;
        let node_annual_kg = match pue {
            PueSpec::Constant(v) => (median * Pue::new(v).apply(it_energy)).as_kg(),
            PueSpec::Seasonal { mean, amplitude } => {
                // validate() above guarantees SeasonalPue's invariants.
                let seasonal = SeasonalPue::new(mean, amplitude);
                account_with_seasonal_pue(&trace, &seasonal, 0, it_energy, year).as_kg()
            }
        };

        // Layer 5: the upgrade question at the region's median intensity.
        let upgrade = UpgradeScenario {
            old: r.upgrade.from,
            new: r.upgrade.to,
            suite: r.upgrade.suite,
            usage,
            pue: Pue::new(pue.mean_value()),
        };
        let verdict = match UpgradeAdvisor::with_five_year_horizon().recommend(&upgrade, median) {
            Recommendation::Upgrade { .. } => Verdict::Upgrade,
            Recommendation::ExtendLifetime { .. } => Verdict::Extend,
            Recommendation::KeepHardware => Verdict::Keep,
        };

        Ok(FootprintReport {
            schema_version: crate::request::SCHEMA_VERSION,
            request: r.clone(),
            embodied: crate::report::EmbodiedSection {
                total_t: embodied_t,
                storage_delta_pct,
            },
            grid: crate::report::GridSection {
                median_g_per_kwh: stats.median_g_per_kwh,
                cov_pct: stats.cov_pct,
            },
            operational: crate::report::OperationalSection {
                sched_kg: sim.total_carbon.as_kg(),
                sched_kwh: sim.total_energy.as_kwh(),
                mean_wait_h: sim.mean_wait_hours,
                max_wait_h: sim.max_wait_hours,
            },
            shift: crate::report::ShiftSection {
                saved_kg: savings.saved_kg,
                saved_pct: savings.saved_pct,
                oracle_saved_kg: oracle.as_ref().map(|o| o.saved_kg),
                oracle_saved_pct: oracle.as_ref().map(|o| o.saved_pct),
            },
            upgrade: crate::report::UpgradeSection {
                node_annual_kg,
                break_even_y: upgrade.break_even(median).map(|t| t.as_years()),
                asymptotic_pct: upgrade.asymptotic_savings_percent(),
                verdict,
            },
        })
    }
}

/// Builds the planning trace for one cluster's actual grid under
/// `model`. The oracle shares the actual trace's `Arc`, so its planned
/// run is bit-for-bit the perfect-knowledge run.
fn forecast_trace(
    model: ForecastModel,
    actual: &Arc<IntensityTrace>,
    seed: u64,
) -> Arc<IntensityTrace> {
    match model {
        ForecastModel::Oracle => Arc::clone(actual),
        ForecastModel::Persistence => Arc::new(persistence_forecast(actual)),
        ForecastModel::DayAhead => Arc::new(day_ahead_harmonic_forecast(actual)),
        ForecastModel::Noisy { error_pct } => {
            Arc::new(noisy_oracle_forecast(actual, error_pct, seed))
        }
    }
}

impl Default for Estimator {
    fn default() -> Estimator {
        Estimator::builder().build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::providers::FlatIntensity;
    use crate::types::{SystemId, UpgradePath};
    use hpcarbon_grid::regions::OperatorId;
    use hpcarbon_sched::{Job, Policy};
    use hpcarbon_workloads::benchmarks::Suite;
    use hpcarbon_workloads::nodes::NodeGen;

    fn req() -> EstimateRequest {
        let mut r = EstimateRequest::paper_baseline(SystemId::Frontier, OperatorId::Eso);
        r.jobs = 40;
        r
    }

    #[test]
    fn baseline_estimate_is_physical() {
        let rep = Estimator::default().estimate(&req()).unwrap();
        assert!(rep.embodied.total_t > 1000.0);
        assert!(rep.embodied.storage_delta_pct.is_none());
        assert!(rep.grid.median_g_per_kwh > 0.0);
        assert!(rep.operational.sched_kg > 0.0);
        assert!(rep.upgrade.node_annual_kg > 0.0);
        assert_eq!(rep.upgrade.verdict, Verdict::Upgrade);
    }

    #[test]
    fn estimate_is_deterministic() {
        let est = Estimator::default();
        let a = est.estimate(&req()).unwrap();
        let b = est.estimate(&req()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn batch_is_thread_count_invariant() {
        let reqs: Vec<EstimateRequest> = [2021u64, 7, 13]
            .into_iter()
            .map(|seed| {
                let mut r = req();
                r.seed = seed;
                r
            })
            .collect();
        let serial = Estimator::builder()
            .threads(1)
            .build()
            .estimate_batch(&reqs);
        let parallel = Estimator::builder()
            .threads(8)
            .build()
            .estimate_batch(&reqs);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn infeasible_requests_fail_soft_in_batches() {
        let mut bad = req();
        bad.system = SystemId::Perlmutter;
        bad.storage = crate::types::StorageVariant::AllFlash;
        let out = Estimator::default().estimate_batch(&[req(), bad]);
        assert!(out[0].is_ok());
        assert!(matches!(out[1], Err(ApiError::WhatIf(_))));
    }

    #[test]
    fn oversized_slack_is_a_sched_error() {
        let mut r = req();
        r.policy = Policy::TemporalShift { slack_hours: 9000 };
        assert!(matches!(
            Estimator::default().estimate(&r).unwrap_err(),
            ApiError::Sched(hpcarbon_sched::SimError::ShiftSlackExceedsTrace { .. })
        ));
    }

    #[test]
    fn custom_intensity_provider_plugs_in() {
        let mut r = req();
        r.upgrade = UpgradePath {
            from: NodeGen::V100Node,
            to: NodeGen::A100Node,
            suite: Suite::Nlp,
        };
        let flat = Estimator::builder()
            .intensity(FlatIntensity::new(250.0))
            .build()
            .estimate(&r)
            .unwrap();
        assert_eq!(flat.grid.median_g_per_kwh, 250.0);
        assert_eq!(flat.grid.cov_pct, 0.0);
        // Synthetic vs paper makes no difference to a flat provider.
        r.source = TraceSource::Synthetic;
        let flat2 = Estimator::builder()
            .intensity(FlatIntensity::new(250.0))
            .build()
            .estimate(&r)
            .unwrap();
        assert_eq!(flat.operational.sched_kg, flat2.operational.sched_kg);
    }

    #[test]
    fn partner_override_fixes_the_topology() {
        let est = Estimator::default();
        // Forcing the partner onto a single-region policy changes the
        // cluster set (jobs spread over two sites), so the default and
        // forced runs must differ…
        let default_fifo = est.estimate(&req()).unwrap();
        let mut forced = req();
        forced.partner = Some(true);
        let forced_fifo = est.estimate(&forced).unwrap();
        assert_ne!(
            default_fifo.operational.sched_kg,
            forced_fifo.operational.sched_kg
        );
        // …while Some(false) on a single-region policy computes exactly
        // the default numbers (only the echoed request differs).
        let mut off = req();
        off.partner = Some(false);
        let off_fifo = est.estimate(&off).unwrap();
        assert_eq!(off_fifo.operational, default_fifo.operational);
        assert_eq!(off_fifo.shift, default_fifo.shift);
        assert_eq!(off_fifo.upgrade, default_fifo.upgrade);
        // A multi-region policy with the partner forced off still runs
        // (the spatial axis degenerates to a single site).
        let mut lone = req();
        lone.policy = Policy::SpatioTemporal { slack_hours: 24 };
        lone.partner = Some(false);
        assert!(est.estimate(&lone).is_ok());
    }

    #[test]
    fn context_never_changes_reported_bytes() {
        let est = Estimator::builder().threads(1).build();
        let mut reqs: Vec<EstimateRequest> = Vec::new();
        for seed in [2021u64, 7] {
            for policy in [Policy::Fifo, Policy::SpatioTemporal { slack_hours: 24 }] {
                let mut r = req();
                r.seed = seed;
                r.policy = policy;
                reqs.push(r);
            }
        }
        let ctx = std::sync::Arc::new(est.context_for(&reqs));
        assert_eq!(ctx.trace_count(), 4); // 2 seeds × {Eso, Ciso partner}
        let with_ctx = Estimator::builder()
            .threads(1)
            .context(ctx)
            .build()
            .estimate_batch(&reqs);
        let without = est.estimate_batch(&reqs);
        assert_eq!(with_ctx, without);
        // Single estimates consult the attached context too.
        let single = Estimator::builder()
            .context(std::sync::Arc::new(est.context_for(&reqs[..1])))
            .build()
            .estimate(&reqs[0])
            .unwrap();
        assert_eq!(Some(&single), with_ctx[0].as_ref().ok());
    }

    #[test]
    fn oracle_forecast_realizes_the_oracle_numbers() {
        // The acceptance property of the whole forecast layer: perfect
        // knowledge through the forecast plumbing must reproduce the
        // forecast-free run exactly, with the oracle columns echoing the
        // realized ones.
        let est = Estimator::default();
        let mut shifted = req();
        shifted.policy = Policy::TemporalShift { slack_hours: 24 };
        let plain = est.estimate(&shifted).unwrap();
        assert_eq!(plain.shift.oracle_saved_kg, None);
        assert_eq!(plain.shift.oracle_saved_pct, None);
        let mut oracle = shifted.clone();
        oracle.forecast = Some(ForecastModel::Oracle);
        let rep = est.estimate(&oracle).unwrap();
        assert_eq!(rep.operational, plain.operational);
        assert_eq!(rep.shift.saved_kg, plain.shift.saved_kg);
        assert_eq!(rep.shift.saved_pct, plain.shift.saved_pct);
        assert_eq!(rep.shift.oracle_saved_kg, Some(plain.shift.saved_kg));
        assert_eq!(rep.shift.oracle_saved_pct, Some(plain.shift.saved_pct));
    }

    #[test]
    fn imperfect_forecasts_realize_at_most_the_oracle() {
        let est = Estimator::default();
        let mut r = req();
        r.policy = Policy::TemporalShift { slack_hours: 24 };
        for model in [
            ForecastModel::Persistence,
            ForecastModel::DayAhead,
            ForecastModel::Noisy { error_pct: 50 },
        ] {
            r.forecast = Some(model);
            let rep = est.estimate(&r).unwrap();
            let oracle = rep.shift.oracle_saved_kg.unwrap();
            // Planning on an imperfect forecast cannot beat perfect
            // knowledge (up to the greedy argmin's queueing tolerance).
            let slack = 0.01 * oracle.abs() + 1e-6;
            assert!(
                rep.shift.saved_kg <= oracle + slack,
                "{model:?}: realized {} > oracle {oracle}",
                rep.shift.saved_kg
            );
        }
    }

    #[test]
    fn forecast_estimates_are_deterministic() {
        let est = Estimator::default();
        let mut r = req();
        r.policy = Policy::TemporalShift { slack_hours: 24 };
        r.forecast = Some(ForecastModel::Noisy { error_pct: 20 });
        let a = est.estimate(&r).unwrap();
        let b = est.estimate(&r).unwrap();
        assert_eq!(a, b);
        // A different request seed moves the noise stream.
        let mut reseeded = r.clone();
        reseeded.seed = 7;
        let c = est.estimate(&reseeded).unwrap();
        assert_ne!(a.shift.saved_kg, c.shift.saved_kg);
    }

    #[test]
    fn file_source_resolves_from_registered_traces() {
        let measured = hpcarbon_grid::synth::synthesize_year(OperatorId::Eso, 2021, 5);
        let expected_median = measured.boxplot().median;
        let est = Estimator::builder()
            .trace_file(OperatorId::Eso, measured)
            .build();
        let mut r = req();
        r.source = TraceSource::File;
        let rep = est.estimate(&r).unwrap();
        assert_eq!(rep.grid.median_g_per_kwh, expected_median);
        // A region without a registered file is a typed request error.
        let mut miss = r.clone();
        miss.region = OperatorId::Ciso;
        assert!(matches!(
            est.estimate(&miss).unwrap_err(),
            ApiError::InvalidRequest { field: "trace", .. }
        ));
        // A year the registered trace does not cover is rejected, not
        // silently served from the wrong year.
        let mut wrong_year = r.clone();
        wrong_year.year = 2022;
        assert!(matches!(
            est.estimate(&wrong_year).unwrap_err(),
            ApiError::InvalidRequest { field: "year", .. }
        ));
        // File requests never consult the provider (DispatchIntensity
        // would panic), including in batches with a hoisted context.
        let out = est.estimate_batch(&[r.clone(), miss]);
        assert!(out[0].is_ok());
        assert!(out[1].is_err());
    }

    #[test]
    fn custom_job_source_plugs_in() {
        struct NoJobs;
        impl crate::providers::JobSource for NoJobs {
            fn job_trace(&self, _count: usize, _seed: u64) -> std::sync::Arc<Vec<Job>> {
                std::sync::Arc::new(Vec::new())
            }
        }
        let rep = Estimator::builder()
            .jobs(NoJobs)
            .build()
            .estimate(&req())
            .unwrap();
        assert_eq!(rep.operational.sched_kg, 0.0);
        assert_eq!(rep.operational.sched_kwh, 0.0);
    }

    #[test]
    fn pue_provider_overrides_are_revalidated() {
        struct BrokenPue;
        impl crate::providers::PueProvider for BrokenPue {
            fn resolve(&self, _req: PueSpec) -> PueSpec {
                PueSpec::Constant(0.5)
            }
        }
        let e = Estimator::builder()
            .pue(BrokenPue)
            .build()
            .estimate(&req())
            .unwrap_err();
        assert!(matches!(e, ApiError::InvalidPue(_)));
    }
}
