//! The response: a structured footprint report with a stable JSON form.
//!
//! A [`FootprintReport`] carries everything the paper's pipeline produces
//! for one request — the embodied breakdown, the grid-year statistics,
//! the scheduled operational carbon, the shift savings, and the upgrade
//! verdict — plus the request itself, echoed back verbatim for
//! provenance. JSON emission is hand-rolled in the `sweep::table` idiom
//! (fixed `{:.4}` metric formatting, deterministic field order), so
//! parse → re-emit is byte-stable and batch outputs can be `diff`ed
//! across thread counts.

use crate::error::{ApiError, ParseError};
use crate::json::{
    as_num, as_object, as_opt_num, as_u64, esc, fmt_metric, parse as parse_json, reject_unknown,
    require_str, Json,
};
use crate::request::{EstimateRequest, SCHEMA_VERSION};

/// The upgrade advisor's five-year-horizon verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Replace the hardware now; embodied cost amortizes in time.
    Upgrade,
    /// Keep running the old hardware past the horizon, then revisit.
    Extend,
    /// Keep the hardware; the upgrade never pays off at this grid.
    Keep,
}

impl Verdict {
    /// Stable label (also the JSON value and the sweep's CSV cell).
    pub fn label(self) -> &'static str {
        match self {
            Verdict::Upgrade => "upgrade",
            Verdict::Extend => "extend",
            Verdict::Keep => "keep",
        }
    }

    fn parse(field: &'static str, s: &str) -> Result<Verdict, ParseError> {
        match s {
            "upgrade" => Ok(Verdict::Upgrade),
            "extend" => Ok(Verdict::Extend),
            "keep" => Ok(Verdict::Keep),
            _ => Err(ParseError::UnknownValue {
                field,
                value: s.to_string(),
                expected: &["upgrade", "extend", "keep"],
            }),
        }
    }
}

/// Embodied carbon of the (possibly transformed) inventory.
#[derive(Debug, Clone, PartialEq)]
pub struct EmbodiedSection {
    /// Total embodied carbon, tCO₂.
    pub total_t: f64,
    /// Relative embodied change of the storage what-if, % (`None` for
    /// the baseline variant).
    pub storage_delta_pct: Option<f64>,
}

/// Statistics of the simulated regional grid year.
#[derive(Debug, Clone, PartialEq)]
pub struct GridSection {
    /// Median annual carbon intensity, gCO₂/kWh.
    pub median_g_per_kwh: f64,
    /// Coefficient of variation of the intensity trace, %.
    pub cov_pct: f64,
}

/// Operational results of the scheduled job trace.
#[derive(Debug, Clone, PartialEq)]
pub struct OperationalSection {
    /// Total operational carbon, kgCO₂.
    pub sched_kg: f64,
    /// Total facility energy, kWh.
    pub sched_kwh: f64,
    /// Mean queue wait, hours.
    pub mean_wait_h: f64,
    /// Max queue wait, hours.
    pub max_wait_h: f64,
}

/// Carbon-aware shifting savings versus running every job at arrival.
///
/// Without a forecast on the request, `saved_*` are the perfect-knowledge
/// (oracle) numbers and the `oracle_*` fields are `None` — emission omits
/// them, so pre-forecast documents keep their exact bytes. With a
/// forecast, `saved_*` are the *realized* savings (decisions planned on
/// the forecast, carbon paid on the actual trace) and `oracle_*` carry
/// the perfect-knowledge numbers for comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct ShiftSection {
    /// Carbon saved, kgCO₂ (negative when deferral backfired).
    pub saved_kg: f64,
    /// The same savings as a percentage of the baseline.
    pub saved_pct: f64,
    /// Perfect-knowledge savings, kgCO₂ (`None` without a forecast).
    pub oracle_saved_kg: Option<f64>,
    /// Perfect-knowledge savings, % (`None` without a forecast).
    pub oracle_saved_pct: Option<f64>,
}

/// The upgrade question at the region's median intensity.
#[derive(Debug, Clone, PartialEq)]
pub struct UpgradeSection {
    /// Annual carbon of one reference node under the request's PUE
    /// model, kgCO₂.
    pub node_annual_kg: f64,
    /// Break-even time, years (`None` when the upgrade never pays off).
    pub break_even_y: Option<f64>,
    /// Asymptotic energy saving, %.
    pub asymptotic_pct: f64,
    /// Advisor verdict at a five-year horizon.
    pub verdict: Verdict,
}

/// One estimate's full answer, including the request that produced it.
#[derive(Debug, Clone, PartialEq)]
pub struct FootprintReport {
    /// Schema version of this report (matches the request schema).
    pub schema_version: u32,
    /// The request, echoed back verbatim.
    pub request: EstimateRequest,
    /// Embodied breakdown.
    pub embodied: EmbodiedSection,
    /// Grid-year statistics.
    pub grid: GridSection,
    /// Scheduled operational results.
    pub operational: OperationalSection,
    /// Shift savings.
    pub shift: ShiftSection,
    /// Upgrade break-even and verdict.
    pub upgrade: UpgradeSection,
}

impl FootprintReport {
    /// Emits the report as a multi-line JSON object (no trailing
    /// newline). Field order and number formatting are fixed, so
    /// emission is deterministic and parse → re-emit is byte-stable.
    pub fn to_json(&self) -> String {
        self.to_json_padded("")
    }

    fn to_json_padded(&self, pad: &str) -> String {
        let m = fmt_metric;
        // The oracle columns appear only when the request engaged a
        // forecast, so forecast-free reports keep their exact bytes.
        let shift = match (self.shift.oracle_saved_kg, self.shift.oracle_saved_pct) {
            (None, None) => format!(
                "{{\"saved_kg\": {}, \"saved_pct\": {}}}",
                m(Some(self.shift.saved_kg)),
                m(Some(self.shift.saved_pct)),
            ),
            (kg, pct) => format!(
                "{{\"saved_kg\": {}, \"saved_pct\": {}, \"oracle_saved_kg\": {}, \"oracle_saved_pct\": {}}}",
                m(Some(self.shift.saved_kg)),
                m(Some(self.shift.saved_pct)),
                m(kg),
                m(pct),
            ),
        };
        format!(
            "{pad}{{\n\
             {pad}  \"schema_version\": {},\n\
             {pad}  \"request\": {},\n\
             {pad}  \"embodied\": {{\"total_t\": {}, \"storage_delta_pct\": {}}},\n\
             {pad}  \"grid\": {{\"median_g_per_kwh\": {}, \"cov_pct\": {}}},\n\
             {pad}  \"operational\": {{\"sched_kg\": {}, \"sched_kwh\": {}, \"mean_wait_h\": {}, \"max_wait_h\": {}}},\n\
             {pad}  \"shift\": {},\n\
             {pad}  \"upgrade\": {{\"node_annual_kg\": {}, \"break_even_y\": {}, \"asymptotic_pct\": {}, \"verdict\": {}}}\n\
             {pad}}}",
            self.schema_version,
            self.request.to_json(),
            m(Some(self.embodied.total_t)),
            m(self.embodied.storage_delta_pct),
            m(Some(self.grid.median_g_per_kwh)),
            m(Some(self.grid.cov_pct)),
            m(Some(self.operational.sched_kg)),
            m(Some(self.operational.sched_kwh)),
            m(Some(self.operational.mean_wait_h)),
            m(Some(self.operational.max_wait_h)),
            shift,
            m(Some(self.upgrade.node_annual_kg)),
            m(self.upgrade.break_even_y),
            m(Some(self.upgrade.asymptotic_pct)),
            esc(self.upgrade.verdict.label()),
        )
    }

    /// Parses one report document (strict: unknown fields rejected, the
    /// embedded request re-decoded through the request schema).
    pub fn from_json(src: &str) -> Result<FootprintReport, ApiError> {
        Self::from_json_value(&parse_json(src)?)
    }

    fn from_json_value(j: &Json) -> Result<FootprintReport, ApiError> {
        let fields = as_object(j, "report")?;
        reject_unknown(
            fields,
            &[
                "schema_version",
                "request",
                "embodied",
                "grid",
                "operational",
                "shift",
                "upgrade",
            ],
        )?;
        let section = |key: &'static str| -> Result<&Json, ParseError> {
            j.get(key).ok_or(ParseError::MissingField { field: key })
        };
        let version = as_u64("schema_version", section("schema_version")?)?;
        if version != u64::from(SCHEMA_VERSION) {
            return Err(ApiError::Schema {
                found: version,
                supported: SCHEMA_VERSION,
            });
        }
        let request = EstimateRequest::from_json_value(section("request")?)?;

        let embodied = section("embodied")?;
        reject_unknown(
            as_object(embodied, "embodied")?,
            &["total_t", "storage_delta_pct"],
        )?;
        let embodied = EmbodiedSection {
            total_t: as_num(
                "embodied.total_t",
                embodied.get("total_t").ok_or(ParseError::MissingField {
                    field: "embodied.total_t",
                })?,
            )?,
            storage_delta_pct: match embodied.get("storage_delta_pct") {
                Some(v) => as_opt_num("embodied.storage_delta_pct", v)?,
                None => None,
            },
        };

        let grid = section("grid")?;
        reject_unknown(as_object(grid, "grid")?, &["median_g_per_kwh", "cov_pct"])?;
        let num = |obj: &Json, field: &'static str, key: &str| -> Result<f64, ParseError> {
            as_num(
                field,
                obj.get(key).ok_or(ParseError::MissingField { field })?,
            )
        };
        let grid = GridSection {
            median_g_per_kwh: num(grid, "grid.median_g_per_kwh", "median_g_per_kwh")?,
            cov_pct: num(grid, "grid.cov_pct", "cov_pct")?,
        };

        let op = section("operational")?;
        reject_unknown(
            as_object(op, "operational")?,
            &["sched_kg", "sched_kwh", "mean_wait_h", "max_wait_h"],
        )?;
        let operational = OperationalSection {
            sched_kg: num(op, "operational.sched_kg", "sched_kg")?,
            sched_kwh: num(op, "operational.sched_kwh", "sched_kwh")?,
            mean_wait_h: num(op, "operational.mean_wait_h", "mean_wait_h")?,
            max_wait_h: num(op, "operational.max_wait_h", "max_wait_h")?,
        };

        let shift = section("shift")?;
        reject_unknown(
            as_object(shift, "shift")?,
            &[
                "saved_kg",
                "saved_pct",
                "oracle_saved_kg",
                "oracle_saved_pct",
            ],
        )?;
        let shift = ShiftSection {
            saved_kg: num(shift, "shift.saved_kg", "saved_kg")?,
            saved_pct: num(shift, "shift.saved_pct", "saved_pct")?,
            oracle_saved_kg: match shift.get("oracle_saved_kg") {
                Some(v) => as_opt_num("shift.oracle_saved_kg", v)?,
                None => None,
            },
            oracle_saved_pct: match shift.get("oracle_saved_pct") {
                Some(v) => as_opt_num("shift.oracle_saved_pct", v)?,
                None => None,
            },
        };

        let up = section("upgrade")?;
        reject_unknown(
            as_object(up, "upgrade")?,
            &[
                "node_annual_kg",
                "break_even_y",
                "asymptotic_pct",
                "verdict",
            ],
        )?;
        let upgrade = UpgradeSection {
            node_annual_kg: num(up, "upgrade.node_annual_kg", "node_annual_kg")?,
            break_even_y: match up.get("break_even_y") {
                Some(v) => as_opt_num("upgrade.break_even_y", v)?,
                None => None,
            },
            asymptotic_pct: num(up, "upgrade.asymptotic_pct", "asymptotic_pct")?,
            verdict: Verdict::parse("upgrade.verdict", require_str(up, "verdict")?)?,
        };

        Ok(FootprintReport {
            schema_version: SCHEMA_VERSION,
            request,
            embodied,
            grid,
            operational,
            shift,
            upgrade,
        })
    }
}

/// Emits a batch result as a JSON array, one entry per request in
/// request order; infeasible requests become `{"error": "..."}` rows so
/// the array always aligns with the input batch. Ends with a newline
/// (the CLI writes it to files that CI `cmp`s).
///
/// Generic over how the reports are held (`FootprintReport` for the
/// CLI's owned batches, `Arc<FootprintReport>` for the server's cached
/// rows) — the emitted bytes are identical either way, which is what
/// lets a caching layer share reports without re-cloning them per
/// response.
pub fn batch_to_json<R: std::borrow::Borrow<FootprintReport>>(
    results: &[Result<R, ApiError>],
) -> String {
    if results.is_empty() {
        return "[]\n".to_string();
    }
    let mut out = String::from("[\n");
    for (i, r) in results.iter().enumerate() {
        match r {
            Ok(rep) => out.push_str(&rep.borrow().to_json_padded("  ")),
            Err(e) => out.push_str(&format!("  {{\"error\": {}}}", esc(&e.to_string()))),
        }
        if i + 1 < results.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

/// Parses a batch emission back; error rows come back as `Err` with the
/// emitted message (the typed cause is not reconstructable from text).
pub fn batch_from_json(src: &str) -> Result<Vec<Result<FootprintReport, String>>, ApiError> {
    let items = match parse_json(src)? {
        Json::Arr(items) => items,
        _ => {
            return Err(ParseError::BadType {
                field: "report document",
                expected: "an array of report objects",
            }
            .into())
        }
    };
    items
        .iter()
        .map(|j| match j.get("error") {
            Some(Json::Str(msg)) => Ok(Err(msg.clone())),
            _ => FootprintReport::from_json_value(j).map(Ok),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::Estimator;
    use crate::types::SystemId;
    use hpcarbon_grid::regions::OperatorId;

    fn report() -> FootprintReport {
        let mut r = EstimateRequest::paper_baseline(SystemId::Frontier, OperatorId::Eso);
        r.jobs = 40;
        Estimator::default().estimate(&r).unwrap()
    }

    #[test]
    fn report_round_trips_byte_identically() {
        let rep = report();
        let json = rep.to_json();
        let back = FootprintReport::from_json(&json).unwrap();
        assert_eq!(back.request, rep.request);
        assert_eq!(back.upgrade.verdict, rep.upgrade.verdict);
        // Re-emission of the parsed report reproduces the bytes.
        assert_eq!(back.to_json(), json);
    }

    #[test]
    fn batch_emission_aligns_errors_with_requests() {
        let ok = report();
        let results = vec![
            Ok(ok.clone()),
            Err(ApiError::InvalidRequest {
                field: "jobs",
                reason: "must be at least 1",
            }),
            Ok(ok),
        ];
        let json = batch_to_json(&results);
        let back = batch_from_json(&json).unwrap();
        assert_eq!(back.len(), 3);
        assert!(back[0].is_ok());
        assert!(back[1].as_ref().unwrap_err().contains("jobs"));
        assert!(back[2].is_ok());
        assert_eq!(batch_to_json::<FootprintReport>(&[]), "[]\n");
        // Arc-held reports emit the same bytes as owned ones (the
        // serving layer's cached rows depend on this).
        let owned = vec![Ok(report())];
        let arced: Vec<Result<std::sync::Arc<FootprintReport>, ApiError>> = owned
            .iter()
            .map(|r| r.clone().map(std::sync::Arc::new))
            .collect();
        assert_eq!(batch_to_json(&owned), batch_to_json(&arced));
    }

    #[test]
    fn forecast_reports_round_trip_with_oracle_columns() {
        // Forecast-free reports must not mention the oracle columns…
        let plain = report();
        assert!(!plain.to_json().contains("oracle_saved"));
        // …and forecast-engaged reports carry and round-trip them.
        let mut r = EstimateRequest::paper_baseline(SystemId::Frontier, OperatorId::Eso);
        r.jobs = 40;
        r.policy = hpcarbon_sched::Policy::TemporalShift { slack_hours: 24 };
        r.forecast = Some(crate::types::ForecastModel::Persistence);
        let rep = Estimator::default().estimate(&r).unwrap();
        let json = rep.to_json();
        assert!(json.contains("\"oracle_saved_kg\": "));
        assert!(json.contains("\"oracle_saved_pct\": "));
        let back = FootprintReport::from_json(&json).unwrap();
        assert!(back.shift.oracle_saved_kg.is_some());
        assert!(back.shift.oracle_saved_pct.is_some());
        // Byte-stable round trip (values re-emit at the wire precision).
        assert_eq!(back.to_json(), json);
    }

    #[test]
    fn strict_parsing_rejects_unknown_report_fields() {
        let rep = report();
        let tampered = rep
            .to_json()
            .replace("\"shift\":", "\"vibes\": 1,\n  \"shift\":");
        assert!(matches!(
            FootprintReport::from_json(&tampered).unwrap_err(),
            ApiError::Parse(ParseError::UnknownField { .. })
        ));
    }

    #[test]
    fn verdict_vocabulary() {
        for v in [Verdict::Upgrade, Verdict::Extend, Verdict::Keep] {
            assert_eq!(Verdict::parse("upgrade.verdict", v.label()).unwrap(), v);
        }
        assert!(Verdict::parse("upgrade.verdict", "sell").is_err());
    }
}
