//! # hpcarbon-api
//!
//! The **single front door** to the carbon-estimation stack: a versioned
//! `EstimateRequest → FootprintReport` API with pluggable providers.
//!
//! Every consumer — the `hpcarbon` CLI, the sweep engine, examples, and
//! anything serving estimates at scale — goes through the same three
//! steps:
//!
//! 1. build an [`EstimateRequest`] (in code, or from JSON with the strict
//!    schema-versioned decoder);
//! 2. assemble an [`Estimator`] with [`Estimator::builder`], swapping in
//!    custom [`IntensityProvider`] / [`EmbodiedSource`] / [`PueProvider`]
//!    implementations where the defaults don't fit;
//! 3. call [`Estimator::estimate`] (or [`Estimator::estimate_batch`] for
//!    parallel fan-out) and read the [`FootprintReport`].
//!
//! ```
//! use hpcarbon_api::{EstimateRequest, Estimator, FlatIntensity, SystemId};
//! use hpcarbon_grid::regions::OperatorId;
//!
//! // The default estimator answers with the paper's models…
//! let est = Estimator::builder().build();
//! let req = EstimateRequest::paper_baseline(SystemId::Lumi, OperatorId::Eso);
//! let report = est.estimate(&req).unwrap();
//! assert!(report.embodied.total_t > 0.0);
//!
//! // …and any axis can be swapped: here, a flat 100 gCO₂/kWh grid.
//! let flat = Estimator::builder().intensity(FlatIntensity::new(100.0)).build();
//! assert_eq!(flat.estimate(&req).unwrap().grid.median_g_per_kwh, 100.0);
//! ```
//!
//! ## Versioning
//!
//! Requests and reports carry a `schema_version` ([`SCHEMA_VERSION`]).
//! The decoder gates on it **before** anything else, and rejects unknown
//! fields at every nesting level — so adding fields in a future version
//! can never be silently misread by an old build. The schema is specified
//! in `DESIGN.md` §8.
//!
//! ## Determinism
//!
//! Estimation is a pure function of the request and the providers; batch
//! evaluation returns results in request order. Emitted batch JSON is
//! **byte-identical for every thread count** — the contract CI enforces
//! by diffing 1-thread against 4-thread runs.
//!
//! ## Serving and caching
//!
//! Two properties make this API safe to put behind a caching server
//! (`hpcarbon-server`):
//!
//! - provider traits are `Send + Sync`, so one [`Estimator`] can be
//!   shared by a pool of worker threads;
//! - [`request::ValidRequest::canonical_json`] gives every validated
//!   request a canonical byte form that is injective over request
//!   semantics — with estimation pure, equal canonical bytes imply
//!   byte-identical report emissions, so a cache keyed on them can never
//!   change a response. The determinism-under-caching contract is
//!   specified in `DESIGN.md` §9.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod context;
pub mod error;
pub mod estimator;
pub mod json;
pub mod parse;
pub mod providers;
pub mod report;
pub mod request;
pub mod types;

pub use context::{EstimateContext, JobKey, RequestKeys, TraceKey, TraceStats};
pub use error::{ApiError, ParseError};
pub use estimator::{Estimator, EstimatorBuilder};
pub use providers::{
    CatalogEmbodied, DispatchIntensity, EmbodiedSource, FlatIntensity, GeneratedJobs,
    IntensityProvider, JobSource, PueProvider, RequestPue,
};
pub use report::{
    batch_from_json, batch_to_json, EmbodiedSection, FootprintReport, GridSection,
    OperationalSection, ShiftSection, UpgradeSection, Verdict,
};
pub use request::{EstimateRequest, ValidRequest, POLICY_VALUES, SCHEMA_VERSION};
pub use types::{ForecastModel, PueSpec, StorageVariant, SystemId, TraceSource, UpgradePath};
