//! The versioned request: what to estimate, fully specified.
//!
//! [`EstimateRequest`] is the typed form of one estimation question —
//! system, storage what-if, region and trace source, PUE model,
//! scheduling policy (with its slack), upgrade path, usage level, seed,
//! and workload size. It can be built in code (start from
//! [`EstimateRequest::paper_baseline`]) or decoded from JSON with the
//! **strict** schema rules of §8 of `DESIGN.md`:
//!
//! - `schema_version` is checked first; an unsupported version is an
//!   [`ApiError::Schema`], whatever else the document says;
//! - unknown fields are **rejected**, never ignored, at every nesting
//!   level ([`ParseError::UnknownField`]) — the versioning rule that
//!   makes adding fields in a future `schema_version` safe;
//! - everything except `schema_version`, `system` and `region` is
//!   optional and defaults to the paper baseline.
//!
//! [`EstimateRequest::validate`] performs the semantic checks (physical
//! PUE, non-empty workload) and yields a [`ValidRequest`], the only type
//! the estimator evaluates.

use crate::error::{ApiError, ParseError};
use crate::json::{
    as_i32, as_num, as_object, as_str, as_u32, as_u64, esc, fmt_f64, parse as parse_json,
    reject_unknown, require_str, Json,
};
use crate::parse;
use crate::types::{ForecastModel, PueSpec, StorageVariant, SystemId, TraceSource, UpgradePath};
use hpcarbon_grid::regions::OperatorId;
use hpcarbon_sched::Policy;
use hpcarbon_units::Fraction;
use hpcarbon_upgrade::savings::UsageLevel;
use hpcarbon_workloads::benchmarks::Suite;
use hpcarbon_workloads::nodes::NodeGen;

/// The request/report schema version this build speaks.
pub const SCHEMA_VERSION: u32 = 1;

/// Accepted `policy.name` values.
pub const POLICY_VALUES: [&str; 7] = [
    "fifo",
    "threshold-defer",
    "greenest-window",
    "lowest-intensity-region",
    "region-and-time",
    "temporal-shift",
    "spatio-temporal",
];

/// One fully specified estimation question (schema version 1).
#[derive(Debug, Clone, PartialEq)]
pub struct EstimateRequest {
    /// Schema version; must equal [`SCHEMA_VERSION`].
    pub schema_version: u32,
    /// Deployed system.
    pub system: SystemId,
    /// Storage-architecture what-if.
    pub storage: StorageVariant,
    /// Grid region powering the facility.
    pub region: OperatorId,
    /// Where the region's intensity trace comes from.
    pub source: TraceSource,
    /// Facility PUE model.
    pub pue: PueSpec,
    /// Scheduling policy (shifting slack lives inside the policy).
    pub policy: Policy,
    /// Whether the greenest-complement partner site joins the cluster
    /// set. `None` (the default) lets the policy decide — multi-region
    /// policies get the partner, single-region policies don't;
    /// `Some(true)` / `Some(false)` force it either way, so a policy
    /// comparison can hold the topology fixed across rows.
    pub partner: Option<bool>,
    /// Which forecast the scheduler plans on. `None` (the default) is
    /// perfect knowledge — policies argmin over the actual trace;
    /// `Some` makes them argmin over the forecast while carbon is
    /// realized against the actual trace, and the report gains
    /// realized-vs-oracle columns.
    pub forecast: Option<ForecastModel>,
    /// Upgrade question evaluated at the region's median intensity.
    pub upgrade: UpgradePath,
    /// Fraction of time the reference node is busy serving work.
    pub usage: Fraction,
    /// Seed of the request's random streams.
    pub seed: u64,
    /// Simulated grid year.
    pub year: i32,
    /// Jobs in the scheduling trace.
    pub jobs: usize,
    /// GPUs in the simulated cluster.
    pub cluster_gpus: u32,
}

impl EstimateRequest {
    /// The paper-baseline request for a system in a region: as-built
    /// storage, the paper trace set, constant PUE 1.2, FIFO scheduling,
    /// the V100 → A100 NLP upgrade question at medium usage, seed 2021,
    /// a 2021 grid year, 120 jobs on 96 GPUs.
    pub fn paper_baseline(system: SystemId, region: OperatorId) -> EstimateRequest {
        EstimateRequest {
            schema_version: SCHEMA_VERSION,
            system,
            storage: StorageVariant::Baseline,
            region,
            source: TraceSource::Paper,
            pue: PueSpec::Constant(1.2),
            policy: Policy::Fifo,
            partner: None,
            forecast: None,
            upgrade: UpgradePath {
                from: NodeGen::V100Node,
                to: NodeGen::A100Node,
                suite: Suite::Nlp,
            },
            usage: UsageLevel::Medium.fraction(),
            seed: 2021,
            year: 2021,
            jobs: 120,
            cluster_gpus: 96,
        }
    }

    /// Semantic validation: schema version, physical PUE, non-empty
    /// workload, plausible year. The returned [`ValidRequest`] is the
    /// only input [`crate::Estimator::estimate`] evaluates.
    pub fn validate(&self) -> Result<ValidRequest, ApiError> {
        if self.schema_version != SCHEMA_VERSION {
            return Err(ApiError::Schema {
                found: u64::from(self.schema_version),
                supported: SCHEMA_VERSION,
            });
        }
        self.pue.validate()?;
        if self.jobs == 0 {
            return Err(ApiError::InvalidRequest {
                field: "jobs",
                reason: "must be at least 1",
            });
        }
        if self.cluster_gpus == 0 {
            return Err(ApiError::InvalidRequest {
                field: "cluster_gpus",
                reason: "must be at least 1",
            });
        }
        if !(1900..=2100).contains(&self.year) {
            return Err(ApiError::InvalidRequest {
                field: "year",
                reason: "must be between 1900 and 2100",
            });
        }
        Ok(ValidRequest { req: self.clone() })
    }

    /// Decodes one request from a JSON document.
    pub fn from_json(src: &str) -> Result<EstimateRequest, ApiError> {
        Self::from_json_value(&parse_json(src)?)
    }

    /// Decodes one request from a parsed JSON value (strict: schema gate
    /// first, then unknown fields rejected).
    pub fn from_json_value(j: &Json) -> Result<EstimateRequest, ApiError> {
        let fields = as_object(j, "request")?;
        // The schema gate runs before strictness: a future-version
        // request fails with Schema, not with UnknownField complaints
        // about fields this build has never heard of.
        let version = match j.get("schema_version") {
            None => {
                return Err(ParseError::MissingField {
                    field: "schema_version",
                }
                .into())
            }
            Some(v) => as_u64("schema_version", v)?,
        };
        if version != u64::from(SCHEMA_VERSION) {
            return Err(ApiError::Schema {
                found: version,
                supported: SCHEMA_VERSION,
            });
        }
        const KNOWN: [&str; 15] = [
            "schema_version",
            "system",
            "storage",
            "region",
            "trace",
            "pue",
            "policy",
            "partner",
            "forecast",
            "upgrade",
            "usage",
            "seed",
            "year",
            "jobs",
            "cluster_gpus",
        ];
        reject_unknown(fields, &KNOWN)?;

        let system = parse::system("system", require_str(j, "system")?)?;
        let region = parse::region("region", require_str(j, "region")?)?;
        let mut req = EstimateRequest::paper_baseline(system, region);

        if let Some(v) = j.get("storage") {
            req.storage = parse::storage("storage", as_str("storage", v)?)?;
        }
        if let Some(v) = j.get("trace") {
            req.source = parse::trace_source("trace", as_str("trace", v)?)?;
        }
        if let Some(v) = j.get("pue") {
            req.pue = pue_from_json(v)?;
        }
        if let Some(v) = j.get("policy") {
            req.policy = policy_from_json(v)?;
        }
        if let Some(v) = j.get("partner") {
            req.partner = match v {
                Json::Bool(b) => Some(*b),
                _ => {
                    return Err(ParseError::BadType {
                        field: "partner",
                        expected: "a boolean",
                    }
                    .into())
                }
            };
        }
        if let Some(v) = j.get("forecast") {
            req.forecast = Some(parse::forecast_model("forecast", as_str("forecast", v)?)?);
        }
        if let Some(v) = j.get("upgrade") {
            req.upgrade = upgrade_from_json(v)?;
        }
        if let Some(v) = j.get("usage") {
            let raw = as_num("usage", v)?;
            req.usage = Fraction::new(raw).ok_or(ParseError::BadNumber {
                field: "usage",
                reason: "must be a fraction in [0, 1]",
            })?;
        }
        if let Some(v) = j.get("seed") {
            req.seed = as_u64("seed", v)?;
        }
        if let Some(v) = j.get("year") {
            req.year = as_i32("year", v)?;
        }
        if let Some(v) = j.get("jobs") {
            req.jobs = as_u64("jobs", v)? as usize;
        }
        if let Some(v) = j.get("cluster_gpus") {
            req.cluster_gpus = as_u32("cluster_gpus", v)?;
        }
        Ok(req)
    }

    /// Decodes a batch: a single request object, or an array of them.
    pub fn batch_from_json(src: &str) -> Result<Vec<EstimateRequest>, ApiError> {
        match parse_json(src)? {
            Json::Arr(items) => items.iter().map(Self::from_json_value).collect(),
            obj @ Json::Obj(_) => Ok(vec![Self::from_json_value(&obj)?]),
            _ => Err(ParseError::BadType {
                field: "request document",
                expected: "an object or an array of objects",
            }
            .into()),
        }
    }

    /// Emits the request as a single-line JSON object, canonical field
    /// order, shortest-round-trip numbers. Parse → emit is stable.
    pub fn to_json(&self) -> String {
        let mut parts: Vec<String> = vec![
            format!("\"schema_version\": {}", self.schema_version),
            format!("\"system\": {}", esc(self.system.label())),
            format!("\"storage\": {}", esc(self.storage.label())),
            format!("\"region\": {}", esc(parse::region_name(self.region))),
            format!("\"trace\": {}", esc(self.source.label())),
            format!("\"pue\": {}", pue_to_json(self.pue)),
            format!("\"policy\": {}", policy_to_json(self.policy)),
        ];
        // `partner` and `forecast` are tri-state: their perfect-knowledge
        // / policy-decides defaults are encoded by the field's absence,
        // so parse → emit stays byte-stable and pre-forecast documents
        // keep their exact canonical bytes.
        if let Some(p) = self.partner {
            parts.push(format!("\"partner\": {p}"));
        }
        if let Some(f) = self.forecast {
            parts.push(format!("\"forecast\": {}", esc(&f.label())));
        }
        parts.extend([
            format!("\"upgrade\": {}", upgrade_to_json(self.upgrade)),
            format!("\"usage\": {}", fmt_f64(self.usage.value())),
            format!("\"seed\": {}", self.seed),
            format!("\"year\": {}", self.year),
            format!("\"jobs\": {}", self.jobs),
            format!("\"cluster_gpus\": {}", self.cluster_gpus),
        ]);
        format!("{{{}}}", parts.join(", "))
    }
}

/// A semantically validated request — the estimator's only input type.
///
/// Obtained exclusively through [`EstimateRequest::validate`], so holding
/// one proves the PUE model is physical, the workload is non-empty, and
/// the schema version is supported.
#[derive(Debug, Clone, PartialEq)]
pub struct ValidRequest {
    req: EstimateRequest,
}

impl std::ops::Deref for ValidRequest {
    type Target = EstimateRequest;

    fn deref(&self) -> &EstimateRequest {
        &self.req
    }
}

impl ValidRequest {
    /// The validated request.
    pub fn request(&self) -> &EstimateRequest {
        &self.req
    }

    /// The canonical byte form of the validated request: its single-line
    /// JSON emission (fixed field order, shortest-round-trip numbers,
    /// `partner` omitted when unset).
    ///
    /// Canonicalization is **injective over request semantics** — two
    /// requests share canonical bytes exactly when every field is equal —
    /// and estimation is a pure function of the request and the
    /// providers, so equal canonical bytes imply byte-identical
    /// [`crate::FootprintReport`] emissions. That makes this string the
    /// cache key of the serving layer: a response answered from cache is
    /// indistinguishable from a freshly computed one.
    pub fn canonical_json(&self) -> String {
        self.req.to_json()
    }
}

// ---- PUE ----

fn pue_from_json(j: &Json) -> Result<PueSpec, ParseError> {
    match j {
        Json::Num(v) => Ok(PueSpec::Constant(*v)),
        Json::Obj(fields) => {
            reject_unknown(fields, &["mean", "amplitude"])?;
            let mean = match j.get("mean") {
                Some(v) => as_num("pue.mean", v)?,
                None => return Err(ParseError::MissingField { field: "pue.mean" }),
            };
            let amplitude = match j.get("amplitude") {
                Some(v) => as_num("pue.amplitude", v)?,
                None => 0.0,
            };
            // A zero-amplitude "seasonal" model IS the constant model;
            // normalizing here keeps `{"mean": 1.2}` and `1.2` on the
            // same (median-based) accounting path in the estimator.
            if amplitude == 0.0 {
                Ok(PueSpec::Constant(mean))
            } else {
                Ok(PueSpec::Seasonal { mean, amplitude })
            }
        }
        _ => Err(ParseError::BadType {
            field: "pue",
            expected: "a number or an object with mean/amplitude",
        }),
    }
}

fn pue_to_json(p: PueSpec) -> String {
    match p {
        PueSpec::Constant(v) => fmt_f64(v),
        PueSpec::Seasonal { mean, amplitude } => format!(
            "{{\"mean\": {}, \"amplitude\": {}}}",
            fmt_f64(mean),
            fmt_f64(amplitude)
        ),
    }
}

// ---- Policy ----

fn policy_from_json(j: &Json) -> Result<Policy, ParseError> {
    let (name, fields): (&str, &[(String, Json)]) = match j {
        Json::Str(s) => (s.as_str(), &[]),
        Json::Obj(fields) => {
            let name = match j.get("name") {
                Some(v) => as_str("policy.name", v)?,
                None => {
                    return Err(ParseError::MissingField {
                        field: "policy.name",
                    })
                }
            };
            (name, fields)
        }
        _ => {
            return Err(ParseError::BadType {
                field: "policy",
                expected: "a string or an object with a name",
            })
        }
    };
    let get_num = |key: &'static str, default: f64| -> Result<f64, ParseError> {
        match j.get(key.split('.').next_back().unwrap_or(key)) {
            Some(v) => as_num(key, v),
            None => Ok(default),
        }
    };
    let get_u32 = |key: &'static str, default: u32| -> Result<u32, ParseError> {
        match j.get(key.split('.').next_back().unwrap_or(key)) {
            Some(v) => as_u32(key, v),
            None => Ok(default),
        }
    };
    let policy = match name.to_ascii_lowercase().as_str() {
        "fifo" => {
            reject_unknown(fields, &["name"])?;
            Policy::Fifo
        }
        "threshold-defer" => {
            reject_unknown(fields, &["name", "threshold_g_per_kwh"])?;
            Policy::ThresholdDefer {
                threshold_g_per_kwh: get_num("policy.threshold_g_per_kwh", 150.0)?,
            }
        }
        "greenest-window" => {
            reject_unknown(fields, &["name", "horizon_hours"])?;
            Policy::GreenestWindow {
                horizon_hours: get_u32("policy.horizon_hours", 24)?,
            }
        }
        "lowest-intensity-region" => {
            reject_unknown(fields, &["name"])?;
            Policy::LowestIntensityRegion
        }
        "region-and-time" => {
            reject_unknown(fields, &["name", "horizon_hours"])?;
            Policy::RegionAndTime {
                horizon_hours: get_u32("policy.horizon_hours", 24)?,
            }
        }
        "temporal-shift" => {
            reject_unknown(fields, &["name", "slack_hours"])?;
            Policy::TemporalShift {
                slack_hours: get_u32("policy.slack_hours", 24)?,
            }
        }
        "spatio-temporal" => {
            reject_unknown(fields, &["name", "slack_hours"])?;
            Policy::SpatioTemporal {
                slack_hours: get_u32("policy.slack_hours", 24)?,
            }
        }
        other => {
            return Err(ParseError::UnknownValue {
                field: "policy.name",
                value: other.to_string(),
                expected: &POLICY_VALUES,
            })
        }
    };
    Ok(policy)
}

fn policy_to_json(p: Policy) -> String {
    match p {
        Policy::Fifo => esc("fifo"),
        Policy::LowestIntensityRegion => esc("lowest-intensity-region"),
        Policy::ThresholdDefer {
            threshold_g_per_kwh,
        } => format!(
            "{{\"name\": \"threshold-defer\", \"threshold_g_per_kwh\": {}}}",
            fmt_f64(threshold_g_per_kwh)
        ),
        Policy::GreenestWindow { horizon_hours } => {
            format!("{{\"name\": \"greenest-window\", \"horizon_hours\": {horizon_hours}}}")
        }
        Policy::RegionAndTime { horizon_hours } => {
            format!("{{\"name\": \"region-and-time\", \"horizon_hours\": {horizon_hours}}}")
        }
        Policy::TemporalShift { slack_hours } => {
            format!("{{\"name\": \"temporal-shift\", \"slack_hours\": {slack_hours}}}")
        }
        Policy::SpatioTemporal { slack_hours } => {
            format!("{{\"name\": \"spatio-temporal\", \"slack_hours\": {slack_hours}}}")
        }
    }
}

// ---- Upgrade path ----

fn upgrade_from_json(j: &Json) -> Result<UpgradePath, ParseError> {
    let fields = as_object(j, "upgrade")?;
    reject_unknown(fields, &["from", "to", "suite"])?;
    let node = |field: &'static str, key: &str| -> Result<NodeGen, ParseError> {
        match j.get(key) {
            Some(v) => parse::node_gen(field, as_str(field, v)?),
            None => Err(ParseError::MissingField { field }),
        }
    };
    let from = node("upgrade.from", "from")?;
    let to = node("upgrade.to", "to")?;
    let suite = match j.get("suite") {
        Some(v) => parse::suite("upgrade.suite", as_str("upgrade.suite", v)?)?,
        None => Suite::Nlp,
    };
    Ok(UpgradePath { from, to, suite })
}

fn upgrade_to_json(u: UpgradePath) -> String {
    format!(
        "{{\"from\": {}, \"to\": {}, \"suite\": {}}}",
        esc(parse::node_name(u.from)),
        esc(parse::node_name(u.to)),
        esc(parse::suite_name(u.suite))
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_request_gets_paper_defaults() {
        let r = EstimateRequest::from_json(
            r#"{"schema_version": 1, "system": "frontier", "region": "eso"}"#,
        )
        .unwrap();
        assert_eq!(
            r,
            EstimateRequest::paper_baseline(SystemId::Frontier, OperatorId::Eso)
        );
        assert!(r.validate().is_ok());
    }

    #[test]
    fn full_request_round_trips_through_json() {
        let src = r#"{
            "schema_version": 1,
            "system": "perlmutter",
            "storage": "baseline",
            "region": "ciso",
            "trace": "synthetic",
            "pue": {"mean": 1.3, "amplitude": 0.1},
            "policy": {"name": "temporal-shift", "slack_hours": 48},
            "upgrade": {"from": "p100", "to": "a100", "suite": "vision"},
            "usage": 0.6,
            "seed": 7,
            "year": 2021,
            "jobs": 64,
            "cluster_gpus": 128
        }"#;
        let r = EstimateRequest::from_json(src).unwrap();
        assert_eq!(r.policy, Policy::TemporalShift { slack_hours: 48 });
        assert_eq!(r.source, TraceSource::Synthetic);
        let emitted = r.to_json();
        let back = EstimateRequest::from_json(&emitted).unwrap();
        assert_eq!(back, r);
        // Emission is stable: emit(parse(emit(x))) == emit(x).
        assert_eq!(back.to_json(), emitted);
    }

    #[test]
    fn schema_gate_fires_before_unknown_fields() {
        // A v2 request with fields this build has never heard of must
        // fail with Schema, not UnknownField.
        let e = EstimateRequest::from_json(
            r#"{"schema_version": 2, "system": "frontier", "region": "eso", "novel_axis": 1}"#,
        )
        .unwrap_err();
        assert_eq!(
            e,
            ApiError::Schema {
                found: 2,
                supported: 1
            }
        );
    }

    #[test]
    fn unknown_fields_are_rejected_at_every_level() {
        let top = EstimateRequest::from_json(
            r#"{"schema_version": 1, "system": "frontier", "region": "eso", "colour": "green"}"#,
        )
        .unwrap_err();
        assert!(matches!(
            top,
            ApiError::Parse(ParseError::UnknownField { .. })
        ));
        let nested = EstimateRequest::from_json(
            r#"{"schema_version": 1, "system": "frontier", "region": "eso",
                "upgrade": {"from": "v100", "to": "a100", "budget": 4}}"#,
        )
        .unwrap_err();
        assert!(matches!(
            nested,
            ApiError::Parse(ParseError::UnknownField { .. })
        ));
    }

    #[test]
    fn batch_accepts_object_or_array() {
        let one = EstimateRequest::batch_from_json(
            r#"{"schema_version":1,"system":"lumi","region":"kn"}"#,
        )
        .unwrap();
        assert_eq!(one.len(), 1);
        let two = EstimateRequest::batch_from_json(
            r#"[{"schema_version":1,"system":"lumi","region":"kn"},
                {"schema_version":1,"system":"frontier","region":"eso"}]"#,
        )
        .unwrap();
        assert_eq!(two.len(), 2);
        assert!(EstimateRequest::batch_from_json("42").is_err());
    }

    #[test]
    fn validation_rejects_empty_workloads_and_bad_pue() {
        let mut r = EstimateRequest::paper_baseline(SystemId::Frontier, OperatorId::Eso);
        r.jobs = 0;
        assert!(matches!(
            r.validate().unwrap_err(),
            ApiError::InvalidRequest { field: "jobs", .. }
        ));
        let mut r = EstimateRequest::paper_baseline(SystemId::Frontier, OperatorId::Eso);
        r.cluster_gpus = 0;
        assert!(matches!(
            r.validate().unwrap_err(),
            ApiError::InvalidRequest {
                field: "cluster_gpus",
                ..
            }
        ));
        let mut r = EstimateRequest::paper_baseline(SystemId::Frontier, OperatorId::Eso);
        r.pue = PueSpec::Constant(0.5);
        assert!(matches!(r.validate().unwrap_err(), ApiError::InvalidPue(_)));
        let mut r = EstimateRequest::paper_baseline(SystemId::Frontier, OperatorId::Eso);
        r.year = 1492;
        assert!(matches!(
            r.validate().unwrap_err(),
            ApiError::InvalidRequest { field: "year", .. }
        ));
    }

    #[test]
    fn every_policy_shape_round_trips() {
        let policies = [
            Policy::Fifo,
            Policy::ThresholdDefer {
                threshold_g_per_kwh: 150.0,
            },
            Policy::GreenestWindow { horizon_hours: 24 },
            Policy::LowestIntensityRegion,
            Policy::RegionAndTime { horizon_hours: 24 },
            Policy::TemporalShift { slack_hours: 6 },
            Policy::SpatioTemporal { slack_hours: 24 },
        ];
        for p in policies {
            let j = policy_to_json(p);
            let back = policy_from_json(&parse_json(&j).unwrap()).unwrap();
            assert_eq!(back, p, "{j}");
        }
    }

    #[test]
    fn partner_field_is_tristate_and_round_trips() {
        // Absent = None = policy decides; emission omits the field.
        let r = EstimateRequest::from_json(
            r#"{"schema_version": 1, "system": "frontier", "region": "eso"}"#,
        )
        .unwrap();
        assert_eq!(r.partner, None);
        assert!(!r.to_json().contains("partner"));
        // Present = forced; emission keeps it and parse → emit is stable.
        for forced in [true, false] {
            let src = format!(
                r#"{{"schema_version": 1, "system": "frontier", "region": "eso", "partner": {forced}}}"#
            );
            let r = EstimateRequest::from_json(&src).unwrap();
            assert_eq!(r.partner, Some(forced));
            let emitted = r.to_json();
            assert!(emitted.contains(&format!("\"partner\": {forced}")));
            assert_eq!(EstimateRequest::from_json(&emitted).unwrap(), r);
        }
        // Non-boolean partner is a typed error.
        assert!(matches!(
            EstimateRequest::from_json(
                r#"{"schema_version": 1, "system": "frontier", "region": "eso", "partner": 1}"#,
            )
            .unwrap_err(),
            ApiError::Parse(ParseError::BadType {
                field: "partner",
                ..
            })
        ));
    }

    #[test]
    fn forecast_field_is_tristate_and_round_trips() {
        // Absent = None = perfect knowledge; emission omits the field,
        // so pre-forecast documents keep their canonical bytes.
        let r = EstimateRequest::from_json(
            r#"{"schema_version": 1, "system": "frontier", "region": "eso"}"#,
        )
        .unwrap();
        assert_eq!(r.forecast, None);
        assert!(!r.to_json().contains("forecast"));
        // Every forecast shape round-trips through emission.
        for (name, model) in [
            ("oracle", ForecastModel::Oracle),
            ("persistence", ForecastModel::Persistence),
            ("day-ahead", ForecastModel::DayAhead),
            ("noisy:15", ForecastModel::Noisy { error_pct: 15 }),
        ] {
            let src = format!(
                r#"{{"schema_version": 1, "system": "frontier", "region": "eso", "forecast": "{name}"}}"#
            );
            let r = EstimateRequest::from_json(&src).unwrap();
            assert_eq!(r.forecast, Some(model));
            let emitted = r.to_json();
            assert!(emitted.contains(&format!("\"forecast\": \"{name}\"")));
            assert_eq!(EstimateRequest::from_json(&emitted).unwrap(), r);
        }
        // Unknown forecast names are typed errors.
        assert!(EstimateRequest::from_json(
            r#"{"schema_version": 1, "system": "frontier", "region": "eso", "forecast": "crystal-ball"}"#,
        )
        .is_err());
    }

    #[test]
    fn canonical_json_is_the_validated_emission() {
        // The serving layer's cache key: equal canonical bytes <=> equal
        // requests, and parse -> canonicalize is stable.
        let r = EstimateRequest::paper_baseline(SystemId::Frontier, OperatorId::Eso);
        let key = r.validate().unwrap().canonical_json();
        assert_eq!(key, r.to_json());
        let reparsed = EstimateRequest::from_json(&key).unwrap();
        assert_eq!(reparsed.validate().unwrap().canonical_json(), key);
        // Any field difference shows up in the canonical bytes —
        // including the tri-state partner (None vs Some are distinct).
        let mut forced = r.clone();
        forced.partner = Some(true);
        assert_ne!(forced.validate().unwrap().canonical_json(), key);
        let mut reseeded = r;
        reseeded.seed = 7;
        assert_ne!(reseeded.validate().unwrap().canonical_json(), key);
    }

    #[test]
    fn zero_amplitude_pue_normalizes_to_constant() {
        // `{"mean": 1.2}` and `1.2` are the same model and must take the
        // same accounting path.
        for src in [
            r#"{"schema_version": 1, "system": "frontier", "region": "eso", "pue": {"mean": 1.2}}"#,
            r#"{"schema_version": 1, "system": "frontier", "region": "eso",
                "pue": {"mean": 1.2, "amplitude": 0}}"#,
            r#"{"schema_version": 1, "system": "frontier", "region": "eso", "pue": 1.2}"#,
        ] {
            let r = EstimateRequest::from_json(src).unwrap();
            assert_eq!(r.pue, PueSpec::Constant(1.2), "{src}");
        }
    }

    #[test]
    fn out_of_range_seed_is_rejected_not_saturated() {
        // 2^64 is not representable as a u64; an inclusive f64 bound
        // would silently saturate it to u64::MAX.
        let e = EstimateRequest::from_json(
            r#"{"schema_version": 1, "system": "frontier", "region": "eso",
                "seed": 18446744073709551616}"#,
        )
        .unwrap_err();
        assert!(matches!(
            e,
            ApiError::Parse(ParseError::BadNumber { field: "seed", .. })
        ));
        // The largest exactly-representable u64 below 2^64 still parses.
        let r = EstimateRequest::from_json(
            r#"{"schema_version": 1, "system": "frontier", "region": "eso",
                "seed": 18446744073709549568}"#,
        )
        .unwrap();
        assert_eq!(r.seed, 18446744073709549568);
    }

    #[test]
    fn typed_errors_name_the_offending_field() {
        let e = EstimateRequest::from_json(
            r#"{"schema_version": 1, "system": "cray-1", "region": "eso"}"#,
        )
        .unwrap_err();
        assert!(e.to_string().contains("cray-1"), "{e}");
        assert!(e.to_string().contains("frontier"), "{e}");
        let e = EstimateRequest::from_json(
            r#"{"schema_version": 1, "system": "frontier", "region": "eso", "seed": 1.5}"#,
        )
        .unwrap_err();
        assert!(matches!(
            e,
            ApiError::Parse(ParseError::BadNumber { field: "seed", .. })
        ));
        let e = EstimateRequest::from_json(
            r#"{"schema_version": 1, "system": "frontier", "region": "eso", "usage": 1.5}"#,
        )
        .unwrap_err();
        assert!(matches!(
            e,
            ApiError::Parse(ParseError::BadNumber { field: "usage", .. })
        ));
    }
}
