//! Typed string → enum parsers shared by the CLI flags and the JSON
//! request decoder.
//!
//! Every parser takes the *caller's* field name (`--from` on the command
//! line, `upgrade.from` in a request document) so the
//! [`ParseError::UnknownValue`] it returns names the exact input the user
//! typed and lists the accepted vocabulary. Matching is ASCII
//! case-insensitive; emission (`*_name` functions) always uses the
//! canonical lowercase form.

use crate::error::ParseError;
use crate::types::{node_label, ForecastModel, StorageVariant, SystemId, TraceSource};
use hpcarbon_grid::regions::OperatorId;
use hpcarbon_workloads::benchmarks::Suite;
use hpcarbon_workloads::nodes::NodeGen;

/// Accepted `system` values.
pub const SYSTEM_VALUES: [&str; 3] = ["frontier", "lumi", "perlmutter"];
/// Accepted `storage` values.
pub const STORAGE_VALUES: [&str; 2] = ["baseline", "all-flash"];
/// Accepted `region` values (lowercase Table 3 short codes).
pub const REGION_VALUES: [&str; 7] = ["kn", "tk", "eso", "ciso", "pjm", "miso", "ercot"];
/// Accepted `trace` values.
pub const TRACE_VALUES: [&str; 3] = ["paper", "synthetic", "file"];
/// Accepted `forecast` values (`noisy:<pct>` takes a whole-percent error).
pub const FORECAST_VALUES: [&str; 4] = ["oracle", "persistence", "day-ahead", "noisy:<pct>"];
/// Accepted node-generation values.
pub const NODE_VALUES: [&str; 3] = ["p100", "v100", "a100"];
/// Accepted benchmark-suite values.
pub const SUITE_VALUES: [&str; 3] = ["nlp", "vision", "candle"];

fn unknown(field: &'static str, value: &str, expected: &'static [&'static str]) -> ParseError {
    ParseError::UnknownValue {
        field,
        value: value.to_string(),
        expected,
    }
}

/// Parses a Table 2 system name.
pub fn system(field: &'static str, s: &str) -> Result<SystemId, ParseError> {
    match s.to_ascii_lowercase().as_str() {
        "frontier" => Ok(SystemId::Frontier),
        "lumi" => Ok(SystemId::Lumi),
        "perlmutter" => Ok(SystemId::Perlmutter),
        _ => Err(unknown(field, s, &SYSTEM_VALUES)),
    }
}

/// Parses a storage-variant name.
pub fn storage(field: &'static str, s: &str) -> Result<StorageVariant, ParseError> {
    match s.to_ascii_lowercase().as_str() {
        "baseline" => Ok(StorageVariant::Baseline),
        "all-flash" => Ok(StorageVariant::AllFlash),
        _ => Err(unknown(field, s, &STORAGE_VALUES)),
    }
}

/// Parses a Table 3 region short code.
pub fn region(field: &'static str, s: &str) -> Result<OperatorId, ParseError> {
    match s.to_ascii_lowercase().as_str() {
        "kn" => Ok(OperatorId::Kansai),
        "tk" => Ok(OperatorId::Tokyo),
        "eso" => Ok(OperatorId::Eso),
        "ciso" => Ok(OperatorId::Ciso),
        "pjm" => Ok(OperatorId::Pjm),
        "miso" => Ok(OperatorId::Miso),
        "ercot" => Ok(OperatorId::Ercot),
        _ => Err(unknown(field, s, &REGION_VALUES)),
    }
}

/// The canonical lowercase JSON value of a region.
pub fn region_name(op: OperatorId) -> &'static str {
    match op {
        OperatorId::Kansai => "kn",
        OperatorId::Tokyo => "tk",
        OperatorId::Eso => "eso",
        OperatorId::Ciso => "ciso",
        OperatorId::Pjm => "pjm",
        OperatorId::Miso => "miso",
        OperatorId::Ercot => "ercot",
    }
}

/// Parses a trace-source name.
pub fn trace_source(field: &'static str, s: &str) -> Result<TraceSource, ParseError> {
    match s.to_ascii_lowercase().as_str() {
        "paper" => Ok(TraceSource::Paper),
        "synthetic" => Ok(TraceSource::Synthetic),
        "file" => Ok(TraceSource::File),
        _ => Err(unknown(field, s, &TRACE_VALUES)),
    }
}

/// Parses a forecast-model name (`oracle`, `persistence`, `day-ahead`,
/// or `noisy:<pct>` with a whole-percent error, e.g. `noisy:15`).
pub fn forecast_model(field: &'static str, s: &str) -> Result<ForecastModel, ParseError> {
    let lower = s.to_ascii_lowercase();
    if let Some(pct) = lower.strip_prefix("noisy:") {
        return match pct.parse::<u32>() {
            Ok(error_pct) if pct.chars().all(|c| c.is_ascii_digit()) => {
                Ok(ForecastModel::Noisy { error_pct })
            }
            _ => Err(unknown(field, s, &FORECAST_VALUES)),
        };
    }
    match lower.as_str() {
        "oracle" => Ok(ForecastModel::Oracle),
        "persistence" => Ok(ForecastModel::Persistence),
        "day-ahead" => Ok(ForecastModel::DayAhead),
        _ => Err(unknown(field, s, &FORECAST_VALUES)),
    }
}

/// The canonical lowercase JSON value of a forecast model.
pub fn forecast_name(f: ForecastModel) -> String {
    f.label()
}

/// Parses a node-generation name (`p100`, `v100`, `a100`).
pub fn node_gen(field: &'static str, s: &str) -> Result<NodeGen, ParseError> {
    match s.to_ascii_lowercase().as_str() {
        "p100" => Ok(NodeGen::P100Node),
        "v100" => Ok(NodeGen::V100Node),
        "a100" => Ok(NodeGen::A100Node),
        _ => Err(unknown(field, s, &NODE_VALUES)),
    }
}

/// Parses a benchmark-suite name.
pub fn suite(field: &'static str, s: &str) -> Result<Suite, ParseError> {
    match s.to_ascii_lowercase().as_str() {
        "nlp" => Ok(Suite::Nlp),
        "vision" => Ok(Suite::Vision),
        "candle" => Ok(Suite::Candle),
        _ => Err(unknown(field, s, &SUITE_VALUES)),
    }
}

/// The canonical lowercase JSON value of a suite.
pub fn suite_name(s: Suite) -> &'static str {
    match s {
        Suite::Nlp => "nlp",
        Suite::Vision => "vision",
        Suite::Candle => "candle",
    }
}

/// The canonical lowercase JSON value of a node generation.
pub fn node_name(n: NodeGen) -> &'static str {
    node_label(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_vocabulary_round_trips() {
        for s in SYSTEM_VALUES {
            assert_eq!(system("system", s).unwrap().label(), s);
        }
        for s in STORAGE_VALUES {
            assert_eq!(storage("storage", s).unwrap().label(), s);
        }
        for s in REGION_VALUES {
            assert_eq!(region_name(region("region", s).unwrap()), s);
        }
        for s in TRACE_VALUES {
            assert_eq!(trace_source("trace", s).unwrap().label(), s);
        }
        for s in NODE_VALUES {
            assert_eq!(node_name(node_gen("node", s).unwrap()), s);
        }
        for s in SUITE_VALUES {
            assert_eq!(suite_name(suite("suite", s).unwrap()), s);
        }
        // The noisy entry in FORECAST_VALUES is a template, so the
        // forecast vocabulary round-trips through concrete labels.
        for s in ["oracle", "persistence", "day-ahead", "noisy:15"] {
            assert_eq!(forecast_name(forecast_model("forecast", s).unwrap()), s);
        }
    }

    #[test]
    fn forecast_parser_rejects_malformed_noisy() {
        assert!(forecast_model("forecast", "noisy:").is_err());
        assert!(forecast_model("forecast", "noisy:-5").is_err());
        assert!(forecast_model("forecast", "noisy:1.5").is_err());
        assert!(forecast_model("forecast", "fortune-teller").is_err());
        assert_eq!(
            forecast_model("--forecast", "noisy:abc").unwrap_err().to_string(),
            "unknown --forecast \"noisy:abc\" (valid values: oracle, persistence, day-ahead, noisy:<pct>)"
        );
    }

    #[test]
    fn matching_is_case_insensitive() {
        assert_eq!(system("system", "Frontier").unwrap(), SystemId::Frontier);
        assert_eq!(region("region", "ESO").unwrap(), OperatorId::Eso);
    }

    #[test]
    fn unknown_values_carry_the_field_name() {
        let e = node_gen("--from", "h100").unwrap_err();
        assert_eq!(
            e.to_string(),
            "unknown --from \"h100\" (valid values: p100, v100, a100)"
        );
    }
}
