//! Pluggable data sources behind the estimator.
//!
//! Every axis a [`crate::FootprintReport`] depends on is a trait with a
//! default implementation wrapping the in-repo models, so a deployment
//! can swap in its own data without forking the pipeline:
//!
//! - [`IntensityProvider`] — where region-year carbon-intensity traces
//!   come from ([`DispatchIntensity`] wraps the calibrated dispatch
//!   simulator and the synthetic harmonic generator; [`FlatIntensity`]
//!   is the constant-intensity stub behind `hpcarbon advisor`);
//! - [`EmbodiedSource`] — where system inventories come from
//!   ([`CatalogEmbodied`] wraps the Table 1/2 part catalog);
//! - [`PueProvider`] — which PUE model applies ([`RequestPue`] honors
//!   the request; a site-specific provider can override it);
//! - [`JobSource`] — where scheduling job traces come from
//!   ([`GeneratedJobs`] wraps the seeded workload generator).
//!
//! Contract for all providers: implementations must be **pure functions
//! of their arguments** (no ambient randomness, clocks, or mutable
//! state), because batch determinism — byte-identical output for any
//! thread count — is promised over them.
//!
//! Traces and job lists are returned behind [`Arc`]s: they are the
//! heavyweight inputs (an indexed year trace is ~1 MiB of prefix sums),
//! and batch consumers — the streaming sweep engine above all — evaluate
//! many requests against the *same* region-year, so the provider
//! contract is "hand out a shared immutable value", never "copy".

use crate::types::{PueSpec, SystemId, TraceSource};
use hpcarbon_core::systems::HpcSystem;
use hpcarbon_grid::regions::OperatorId;
use hpcarbon_grid::sim::simulate_year;
use hpcarbon_grid::synth::synthesize_year;
use hpcarbon_grid::trace::IntensityTrace;
use hpcarbon_sched::{Job, JobTraceGenerator};
use hpcarbon_timeseries::series::HourlySeries;
use std::sync::Arc;

/// Supplies the hourly carbon-intensity trace of one region-year.
pub trait IntensityProvider: Send + Sync {
    /// Returns the trace for `region` in `year`. `seed` is the trace
    /// substream seed derived from the request (same request → same
    /// seed), and `source` is the request's trace-source dimension —
    /// providers that model a single source may ignore it.
    fn year_trace(
        &self,
        region: OperatorId,
        source: TraceSource,
        year: i32,
        seed: u64,
    ) -> Arc<IntensityTrace>;
}

/// Supplies the job trace a request's scheduling run consumes.
pub trait JobSource: Send + Sync {
    /// Returns `count` jobs for the `jobs` substream seed derived from
    /// the request (same request → same seed).
    fn job_trace(&self, count: usize, seed: u64) -> Arc<Vec<Job>>;
}

/// Default job source: the seeded workload generator at its
/// production-like default rates.
#[derive(Debug, Clone, Copy, Default)]
pub struct GeneratedJobs;

impl JobSource for GeneratedJobs {
    fn job_trace(&self, count: usize, seed: u64) -> Arc<Vec<Job>> {
        Arc::new(JobTraceGenerator::default_rates().generate(count, seed))
    }
}

/// Supplies system inventories for embodied-carbon accounting.
pub trait EmbodiedSource: Send + Sync {
    /// Builds the as-built inventory of `system`.
    fn build_system(&self, system: SystemId) -> HpcSystem;

    /// Resolves the spec of a single part, used by what-if transforms
    /// that introduce parts absent from the base inventory (e.g. the
    /// all-flash swap's replacement SSD). Defaults to the built-in
    /// Table 1 catalog; a plain-text catalog source returns its own
    /// entity so swaps stay internally consistent with its numbers.
    fn part_spec(&self, part: hpcarbon_core::db::PartId) -> hpcarbon_core::db::PartSpec {
        part.spec()
    }
}

/// Delegation through [`Arc`], so one embodied source (e.g. a loaded
/// catalog) can back an estimator, a sweep context, and server shards
/// simultaneously.
impl<T: EmbodiedSource + ?Sized> EmbodiedSource for Arc<T> {
    fn build_system(&self, system: SystemId) -> HpcSystem {
        (**self).build_system(system)
    }

    fn part_spec(&self, part: hpcarbon_core::db::PartId) -> hpcarbon_core::db::PartSpec {
        (**self).part_spec(part)
    }
}

/// Resolves the PUE model a request runs under.
pub trait PueProvider: Send + Sync {
    /// Maps the request's PUE spec to the one actually applied. The
    /// result is re-validated by the estimator, so a provider cannot
    /// smuggle an unphysical model past the request gate.
    fn resolve(&self, requested: PueSpec) -> PueSpec;
}

/// Default intensity provider: the paper's calibrated dispatch simulator
/// for [`TraceSource::Paper`], the synthetic harmonic generator for
/// [`TraceSource::Synthetic`]. [`TraceSource::File`] traces are resolved
/// by the estimator from its registered trace files *before* any
/// provider is consulted, so this provider never sees them.
#[derive(Debug, Clone, Copy, Default)]
pub struct DispatchIntensity;

impl IntensityProvider for DispatchIntensity {
    fn year_trace(
        &self,
        region: OperatorId,
        source: TraceSource,
        year: i32,
        seed: u64,
    ) -> Arc<IntensityTrace> {
        Arc::new(match source {
            TraceSource::Paper => simulate_year(region, year, seed),
            TraceSource::Synthetic => synthesize_year(region, year, seed),
            // lint: allow(panic-in-library) -- file traces are resolved
            // from the estimator's registry before providers run; hitting
            // this arm means an estimator-side interception bug, not a
            // user input error, so surfacing it loudly beats fabricating
            // a generated trace for a request that asked for measured data.
            TraceSource::File => unreachable!(
                "TraceSource::File must be resolved from the estimator's trace-file registry"
            ),
        })
    }
}

/// A constant-intensity stub: every hour of the year carries the same
/// gCO₂/kWh. Useful for what-ifs pinned to a single grid number (the
/// `hpcarbon advisor --intensity` path) and as the simplest example of a
/// custom provider.
#[derive(Debug, Clone, Copy)]
pub struct FlatIntensity {
    g_per_kwh: f64,
}

impl FlatIntensity {
    /// A provider pinning every hour to `g_per_kwh`.
    pub fn new(g_per_kwh: f64) -> FlatIntensity {
        FlatIntensity { g_per_kwh }
    }
}

impl IntensityProvider for FlatIntensity {
    fn year_trace(
        &self,
        region: OperatorId,
        _source: TraceSource,
        year: i32,
        _seed: u64,
    ) -> Arc<IntensityTrace> {
        Arc::new(IntensityTrace::new(
            region,
            HourlySeries::from_fn(year, |_| self.g_per_kwh),
        ))
    }
}

/// Default embodied source: the Table 1 part catalog composed into the
/// Table 2 system inventories.
#[derive(Debug, Clone, Copy, Default)]
pub struct CatalogEmbodied;

impl EmbodiedSource for CatalogEmbodied {
    fn build_system(&self, system: SystemId) -> HpcSystem {
        system.build()
    }
}

/// Default PUE provider: the request's own PUE spec, unchanged.
#[derive(Debug, Clone, Copy, Default)]
pub struct RequestPue;

impl PueProvider for RequestPue {
    fn resolve(&self, requested: PueSpec) -> PueSpec {
        requested
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispatch_provider_matches_the_raw_generators() {
        let a = DispatchIntensity.year_trace(OperatorId::Eso, TraceSource::Paper, 2021, 42);
        let b = simulate_year(OperatorId::Eso, 2021, 42);
        assert_eq!(a.series().values(), b.series().values());
        let a = DispatchIntensity.year_trace(OperatorId::Eso, TraceSource::Synthetic, 2021, 42);
        let b = synthesize_year(OperatorId::Eso, 2021, 42);
        assert_eq!(a.series().values(), b.series().values());
    }

    #[test]
    fn flat_provider_is_flat() {
        let t = FlatIntensity::new(200.0).year_trace(OperatorId::Ciso, TraceSource::Paper, 2021, 7);
        assert_eq!(t.boxplot().median, 200.0);
        assert_eq!(t.cov_percent(), 0.0);
        assert_eq!(t.series().len(), 8760);
    }

    #[test]
    fn default_pue_provider_is_identity() {
        let p = PueSpec::Seasonal {
            mean: 1.2,
            amplitude: 0.1,
        };
        assert_eq!(RequestPue.resolve(p), p);
    }
}
