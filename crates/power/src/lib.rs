//! # hpcarbon-power
//!
//! Power telemetry and operational-carbon tracking — the workspace's
//! stand-in for the measurement stack the paper uses on real nodes
//! (NVML/RAPL power counters read by the `carbontracker` tool).
//!
//! - [`sensor`]: device power models and simulated NVML/RAPL-style sensors
//!   whose utilization can be driven by a workload simulation;
//! - [`energy`]: trapezoidal energy integration over sample streams;
//! - [`sampler`]: a background sampling daemon (spawned thread,
//!   `parking_lot` + acquire/release atomics) that polls sensors and
//!   accumulates per-device energy, mirroring how carbontracker samples
//!   NVML at a fixed cadence;
//! - [`tracker`]: the carbontracker-equivalent: measure the first epochs of
//!   a training run, extrapolate whole-run energy, and convert to gCO₂
//!   with a grid-intensity trace and PUE (the paper's Eq. 6 pipeline).
//!
//! # Example
//!
//! ```
//! use hpcarbon_power::sensor::DevicePowerModel;
//! use hpcarbon_units::Power;
//!
//! // A V100-like device: 40 W idle, 300 W TDP.
//! let model = DevicePowerModel::new(Power::from_w(40.0), Power::from_w(300.0));
//! assert_eq!(model.power_at(0.0).as_w(), 40.0);
//! assert_eq!(model.power_at(1.0).as_w(), 300.0);
//! assert!(model.power_at(0.5).as_w() > 150.0); // convex-ish curve
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod energy;
pub mod pue_model;
pub mod sampler;
pub mod sensor;
pub mod tracker;

pub use pue_model::SeasonalPue;
pub use sensor::{DevicePowerModel, PowerSensor, SimulatedDevice};
pub use tracker::CarbonTracker;
