//! The carbontracker-equivalent: predict and account training-run carbon.
//!
//! The paper "uses the carbontracker tool to measure a system's
//! operational carbon footprint while running certain benchmark suites".
//! carbontracker's core trick: measure the energy of the first training
//! epoch(s), extrapolate to the full run, and convert energy to carbon
//! with the local grid intensity. This module reproduces that pipeline on
//! top of [`crate::sampler`] and `hpcarbon-grid` traces.

use hpcarbon_core::operational::Pue;
use hpcarbon_grid::trace::IntensityTrace;
use hpcarbon_units::{CarbonIntensity, CarbonMass, Energy, TimeSpan};

/// One measured epoch: how long it took and the IT energy it consumed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochMeasurement {
    /// Wall-clock duration of the epoch.
    pub duration: TimeSpan,
    /// IT-equipment energy consumed.
    pub energy: Energy,
}

/// Prediction for a full training run extrapolated from measured epochs.
#[derive(Debug, Clone, Copy)]
pub struct RunPrediction {
    /// Total predicted IT energy.
    pub energy: Energy,
    /// Total predicted duration.
    pub duration: TimeSpan,
    /// Predicted operational carbon (facility level).
    pub carbon: CarbonMass,
}

/// Carbon accounting for a training run, in the style of carbontracker.
#[derive(Debug, Clone)]
pub struct CarbonTracker {
    pue: Pue,
    measured: Vec<EpochMeasurement>,
}

impl CarbonTracker {
    /// Creates a tracker with the facility PUE.
    pub fn new(pue: Pue) -> CarbonTracker {
        CarbonTracker {
            pue,
            measured: Vec::new(),
        }
    }

    /// Records one measured epoch.
    pub fn record_epoch(&mut self, m: EpochMeasurement) {
        assert!(
            m.duration.as_hours() > 0.0 && m.energy.as_kwh() >= 0.0,
            "epoch must have positive duration and non-negative energy"
        );
        self.measured.push(m);
    }

    /// Number of epochs measured so far.
    pub fn epochs_measured(&self) -> usize {
        self.measured.len()
    }

    /// Total measured IT energy.
    pub fn measured_energy(&self) -> Energy {
        self.measured.iter().map(|m| m.energy).sum()
    }

    /// Total measured duration.
    pub fn measured_duration(&self) -> TimeSpan {
        self.measured
            .iter()
            .map(|m| m.duration)
            .fold(TimeSpan::ZERO, |a, b| a + b)
    }

    /// carbontracker-style prediction: extrapolate measured epochs to
    /// `total_epochs` and convert at a constant intensity.
    ///
    /// # Panics
    /// If nothing was measured or `total_epochs` is smaller than the
    /// measured count.
    pub fn predict(&self, total_epochs: usize, intensity: CarbonIntensity) -> RunPrediction {
        assert!(!self.measured.is_empty(), "measure at least one epoch");
        assert!(
            total_epochs >= self.measured.len(),
            "total epochs below measured count"
        );
        let k = total_epochs as f64 / self.measured.len() as f64;
        let energy = self.measured_energy() * k;
        let duration = self.measured_duration() * k;
        let facility = self.pue.apply(energy);
        RunPrediction {
            energy,
            duration,
            carbon: intensity * facility,
        }
    }

    /// Accounts the *actual* carbon of a run against an hourly intensity
    /// trace: the run starts at `start_hour` (hour-of-year) and consumes
    /// energy at a constant rate for `duration`. Each hour of the run is
    /// priced at that hour's intensity — the time-varying version of Eq. 6.
    pub fn account_against_trace(
        &self,
        trace: &IntensityTrace,
        start_hour: u32,
        energy: Energy,
        duration: TimeSpan,
    ) -> CarbonMass {
        assert!(duration.as_hours() > 0.0, "duration must be positive");
        let facility = self.pue.apply(energy);
        let rate_kwh_per_h = facility.as_kwh() / duration.as_hours();
        let hours = duration.as_hours();
        let n_full = hours.floor() as u32;
        let mut grams = 0.0;
        let len = trace.series().len() as u32;
        for k in 0..n_full {
            let idx = (start_hour + k) % len;
            grams += rate_kwh_per_h * trace.at_index(idx).as_g_per_kwh();
        }
        let frac = hours - f64::from(n_full);
        if frac > 0.0 {
            let idx = (start_hour + n_full) % len;
            grams += rate_kwh_per_h * frac * trace.at_index(idx).as_g_per_kwh();
        }
        CarbonMass::from_g(grams)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcarbon_grid::regions::OperatorId;
    use hpcarbon_timeseries::series::HourlySeries;

    fn epoch(hours: f64, kwh: f64) -> EpochMeasurement {
        EpochMeasurement {
            duration: TimeSpan::from_hours(hours),
            energy: Energy::from_kwh(kwh),
        }
    }

    #[test]
    fn prediction_extrapolates_linearly() {
        let mut t = CarbonTracker::new(Pue::new(1.0));
        t.record_epoch(epoch(0.5, 1.0));
        t.record_epoch(epoch(0.5, 1.0));
        let p = t.predict(10, CarbonIntensity::from_g_per_kwh(100.0));
        assert!((p.energy.as_kwh() - 10.0).abs() < 1e-9);
        assert!((p.duration.as_hours() - 5.0).abs() < 1e-9);
        assert!((p.carbon.as_g() - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn prediction_applies_pue() {
        let mut t = CarbonTracker::new(Pue::new(1.5));
        t.record_epoch(epoch(1.0, 2.0));
        let p = t.predict(1, CarbonIntensity::from_g_per_kwh(100.0));
        // 2 kWh IT * 1.5 PUE * 100 g = 300 g.
        assert!((p.carbon.as_g() - 300.0).abs() < 1e-9);
    }

    #[test]
    fn single_epoch_prediction_matches_carbontracker_semantics() {
        // carbontracker predicts after the first epoch.
        let mut t = CarbonTracker::new(Pue::new(1.0));
        t.record_epoch(epoch(0.25, 0.8));
        let p = t.predict(100, CarbonIntensity::from_g_per_kwh(200.0));
        assert!((p.energy.as_kwh() - 80.0).abs() < 1e-9);
        assert!((p.carbon.as_kg() - 16.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "measure at least one epoch")]
    fn predict_requires_measurement() {
        let t = CarbonTracker::new(Pue::DEFAULT);
        let _ = t.predict(10, CarbonIntensity::from_g_per_kwh(100.0));
    }

    #[test]
    #[should_panic(expected = "total epochs below measured count")]
    fn predict_rejects_shrinking_run() {
        let mut t = CarbonTracker::new(Pue::DEFAULT);
        t.record_epoch(epoch(1.0, 1.0));
        t.record_epoch(epoch(1.0, 1.0));
        let _ = t.predict(1, CarbonIntensity::from_g_per_kwh(100.0));
    }

    #[test]
    fn trace_accounting_prices_each_hour() {
        // Intensity 100 during even hours, 300 during odd hours.
        let series = HourlySeries::from_fn(2021, |st| {
            if st.hour_of_year() % 2 == 0 {
                100.0
            } else {
                300.0
            }
        });
        let trace = IntensityTrace::new(OperatorId::Eso, series);
        let t = CarbonTracker::new(Pue::new(1.0));
        // 4 kWh over 4 hours starting at hour 0: 1 kWh priced at each of
        // 100, 300, 100, 300 = 800 g.
        let c =
            t.account_against_trace(&trace, 0, Energy::from_kwh(4.0), TimeSpan::from_hours(4.0));
        assert!((c.as_g() - 800.0).abs() < 1e-9);
    }

    #[test]
    fn trace_accounting_handles_fractional_hours() {
        let series = HourlySeries::constant(2021, 200.0);
        let trace = IntensityTrace::new(OperatorId::Eso, series);
        let t = CarbonTracker::new(Pue::new(1.0));
        let c = t.account_against_trace(
            &trace,
            100,
            Energy::from_kwh(3.0),
            TimeSpan::from_hours(1.5),
        );
        // Constant intensity: simply 3 kWh * 200 g.
        assert!((c.as_g() - 600.0).abs() < 1e-9);
    }

    #[test]
    fn greener_start_hours_cost_less() {
        // Cheap at night (hours 0-5), expensive in the day.
        let series = HourlySeries::from_fn(2021, |st| if st.hour() < 6 { 50.0 } else { 400.0 });
        let trace = IntensityTrace::new(OperatorId::Eso, series);
        let t = CarbonTracker::new(Pue::new(1.2));
        let night =
            t.account_against_trace(&trace, 0, Energy::from_kwh(6.0), TimeSpan::from_hours(6.0));
        let day =
            t.account_against_trace(&trace, 12, Energy::from_kwh(6.0), TimeSpan::from_hours(6.0));
        assert!(night.as_g() * 4.0 < day.as_g());
    }
}
