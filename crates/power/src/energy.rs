//! Energy integration over power samples.

use hpcarbon_units::{Energy, Power, TimeSpan};

/// Integrates a stream of `(time, power)` samples into energy using the
/// trapezoidal rule — the standard treatment of NVML/RAPL sample streams.
#[derive(Debug, Clone)]
pub struct EnergyIntegrator {
    first: Option<TimeSpan>,
    last: Option<(TimeSpan, Power)>,
    total: Energy,
    samples: u64,
}

impl Default for EnergyIntegrator {
    fn default() -> Self {
        Self::new()
    }
}

impl EnergyIntegrator {
    /// An empty integrator.
    pub fn new() -> EnergyIntegrator {
        EnergyIntegrator {
            first: None,
            last: None,
            total: Energy::ZERO,
            samples: 0,
        }
    }

    /// Feeds one sample. Samples must arrive in non-decreasing time order.
    ///
    /// # Panics
    /// If `t` precedes the previous sample.
    pub fn push(&mut self, t: TimeSpan, p: Power) {
        if let Some((t0, p0)) = self.last {
            assert!(
                t >= t0,
                "samples must be time-ordered: {} < {}",
                t.as_hours(),
                t0.as_hours()
            );
            let dt = t - t0;
            let avg = (p0 + p) * 0.5;
            self.total += avg * dt;
        } else {
            self.first = Some(t);
        }
        self.last = Some((t, p));
        self.samples += 1;
    }

    /// Total integrated energy so far.
    pub fn total(&self) -> Energy {
        self.total
    }

    /// Number of samples consumed.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// First sample time (None before any sample).
    pub fn first_sample_time(&self) -> Option<TimeSpan> {
        self.first
    }

    /// Mean power over the integrated span (None before two distinct-time
    /// samples).
    pub fn mean_power(&self) -> Option<Power> {
        let (t_last, _) = self.last?;
        let first = self.first?;
        let span = t_last - first;
        if self.samples < 2 || span.as_hours() <= 0.0 {
            return None;
        }
        Some(self.total / span)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_power_integral() {
        let mut i = EnergyIntegrator::new();
        i.push(TimeSpan::from_hours(0.0), Power::from_w(100.0));
        i.push(TimeSpan::from_hours(2.0), Power::from_w(100.0));
        assert!((i.total().as_wh() - 200.0).abs() < 1e-9);
        assert_eq!(i.samples(), 2);
    }

    #[test]
    fn trapezoid_ramp() {
        // Power ramping 0 -> 100 W over 1 h integrates to 50 Wh.
        let mut i = EnergyIntegrator::new();
        i.push(TimeSpan::from_hours(0.0), Power::from_w(0.0));
        i.push(TimeSpan::from_hours(1.0), Power::from_w(100.0));
        assert!((i.total().as_wh() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn many_small_steps_match_analytic() {
        // Integrate P(t) = 200 t over [0, 1] h: exact 100 Wh.
        let mut i = EnergyIntegrator::new();
        for k in 0..=1000 {
            let t = f64::from(k) / 1000.0;
            i.push(TimeSpan::from_hours(t), Power::from_w(200.0 * t));
        }
        assert!((i.total().as_wh() - 100.0).abs() < 1e-6);
    }

    #[test]
    fn mean_power() {
        let mut i = EnergyIntegrator::new();
        i.push(TimeSpan::from_hours(0.0), Power::from_w(100.0));
        assert!(i.mean_power().is_none());
        i.push(TimeSpan::from_hours(1.0), Power::from_w(300.0));
        let m = i.mean_power().unwrap();
        assert!((m.as_w() - 200.0).abs() < 1e-9);
    }

    #[test]
    fn zero_duration_samples_add_nothing() {
        let mut i = EnergyIntegrator::new();
        i.push(TimeSpan::from_hours(1.0), Power::from_w(100.0));
        i.push(TimeSpan::from_hours(1.0), Power::from_w(500.0));
        assert_eq!(i.total().as_wh(), 0.0);
        assert!(i.mean_power().is_none());
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn rejects_out_of_order() {
        let mut i = EnergyIntegrator::new();
        i.push(TimeSpan::from_hours(2.0), Power::from_w(1.0));
        i.push(TimeSpan::from_hours(1.0), Power::from_w(1.0));
    }

    #[test]
    fn first_sample_time_tracked() {
        let mut i = EnergyIntegrator::new();
        assert!(i.first_sample_time().is_none());
        i.push(TimeSpan::from_hours(3.5), Power::from_w(1.0));
        assert_eq!(i.first_sample_time().unwrap().as_hours(), 3.5);
    }
}
