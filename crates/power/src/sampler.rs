//! A background power-sampling daemon.
//!
//! Mirrors carbontracker's measurement loop: a thread polls every sensor at
//! a fixed cadence and accumulates per-device energy. Synchronization
//! follows the Rust-Atomics-and-Locks idioms: a release/acquire stop flag,
//! sample state behind a `parking_lot::Mutex`, and a joined worker thread
//! so no samples are lost at shutdown.

use crate::energy::EnergyIntegrator;
use crate::sensor::PowerSensor;
use hpcarbon_units::{Energy, Power, TimeSpan};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Accumulated state for one sensor.
#[derive(Debug, Clone)]
pub struct SensorReport {
    /// Sensor name.
    pub name: String,
    /// Integrated energy.
    pub energy: Energy,
    /// Number of samples taken.
    pub samples: u64,
    /// Mean power over the sampling window (None with < 2 samples).
    pub mean_power: Option<Power>,
}

struct SamplerState {
    integrators: Vec<EnergyIntegrator>,
}

/// A running sampling daemon. Dropping without [`PowerSampler::stop`]
/// aborts sampling but still joins the worker.
pub struct PowerSampler {
    sensors: Vec<Arc<dyn PowerSensor>>,
    state: Arc<Mutex<SamplerState>>,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl PowerSampler {
    /// Starts sampling `sensors` every `interval` of wall-clock time.
    ///
    /// # Panics
    /// If `sensors` is empty or `interval` is zero.
    pub fn start(sensors: Vec<Arc<dyn PowerSensor>>, interval: Duration) -> PowerSampler {
        assert!(!sensors.is_empty(), "need at least one sensor");
        assert!(!interval.is_zero(), "interval must be positive");
        let state = Arc::new(Mutex::new(SamplerState {
            integrators: sensors.iter().map(|_| EnergyIntegrator::new()).collect(),
        }));
        let stop = Arc::new(AtomicBool::new(false));

        let worker_sensors = sensors.clone();
        let worker_state = Arc::clone(&state);
        let worker_stop = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            // lint: allow(wall-clock-in-deterministic-crate) -- this daemon *is* the wall-clock sampler for live hosts; VirtualSampler is its deterministic twin for scenarios and tests
            let t0 = Instant::now();
            loop {
                let now = TimeSpan::from_seconds(t0.elapsed().as_secs_f64());
                {
                    let mut st = worker_state.lock();
                    for (sensor, integ) in worker_sensors.iter().zip(&mut st.integrators) {
                        integ.push(now, sensor.read_power());
                    }
                }
                if worker_stop.load(Ordering::Acquire) {
                    break;
                }
                std::thread::sleep(interval);
            }
        });

        PowerSampler {
            sensors,
            state,
            stop,
            handle: Some(handle),
        }
    }

    /// Stops the daemon (taking one final sample) and returns per-sensor
    /// reports.
    pub fn stop(mut self) -> Vec<SensorReport> {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
        let st = self.state.lock();
        self.sensors
            .iter()
            .zip(&st.integrators)
            .map(|(s, i)| SensorReport {
                name: s.name().to_string(),
                energy: i.total(),
                samples: i.samples(),
                mean_power: i.mean_power(),
            })
            .collect()
    }

    /// Snapshot of total energy across all sensors without stopping.
    pub fn energy_so_far(&self) -> Energy {
        let st = self.state.lock();
        st.integrators.iter().map(|i| i.total()).sum()
    }
}

impl Drop for PowerSampler {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// A deterministic, thread-free sampler for simulations: advances virtual
/// time explicitly instead of sleeping. Used by the workload/upgrade code
/// paths where wall-clock time is irrelevant.
#[derive(Debug, Default)]
pub struct VirtualSampler {
    integrator: EnergyIntegrator,
}

impl VirtualSampler {
    /// An empty virtual sampler.
    pub fn new() -> VirtualSampler {
        VirtualSampler {
            integrator: EnergyIntegrator::new(),
        }
    }

    /// Records that the device drew `power` for the interval ending at
    /// virtual time `t`.
    pub fn record(&mut self, t: TimeSpan, power: Power) {
        self.integrator.push(t, power);
    }

    /// Total energy recorded.
    pub fn energy(&self) -> Energy {
        self.integrator.total()
    }

    /// Mean power over the recorded span.
    pub fn mean_power(&self) -> Option<Power> {
        self.integrator.mean_power()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sensor::{DevicePowerModel, SimulatedDevice};

    fn device(idle: f64, tdp: f64) -> Arc<SimulatedDevice> {
        SimulatedDevice::new(
            "dev",
            DevicePowerModel::new(Power::from_w(idle), Power::from_w(tdp)),
        )
    }

    #[test]
    fn samples_idle_device() {
        let dev = device(50.0, 250.0);
        let sampler = PowerSampler::start(vec![dev.clone()], Duration::from_millis(2));
        std::thread::sleep(Duration::from_millis(30));
        let reports = sampler.stop();
        assert_eq!(reports.len(), 1);
        let r = &reports[0];
        assert!(r.samples >= 5, "got {} samples", r.samples);
        // Mean power of an idle device is its idle draw.
        let mean = r.mean_power.expect("multiple samples");
        assert!((mean.as_w() - 50.0).abs() < 1.0, "mean {mean}");
    }

    #[test]
    fn observes_utilization_change() {
        let dev = device(50.0, 250.0);
        dev.set_utilization(1.0);
        let sampler = PowerSampler::start(vec![dev.clone()], Duration::from_millis(2));
        std::thread::sleep(Duration::from_millis(25));
        let reports = sampler.stop();
        let mean = reports[0].mean_power.expect("multiple samples");
        assert!((mean.as_w() - 250.0).abs() < 1.0, "mean {mean}");
    }

    #[test]
    fn multiple_sensors_tracked_independently() {
        let a = device(10.0, 100.0);
        let b = device(20.0, 200.0);
        b.set_utilization(1.0);
        let sampler = PowerSampler::start(vec![a, b], Duration::from_millis(2));
        std::thread::sleep(Duration::from_millis(25));
        let reports = sampler.stop();
        assert_eq!(reports.len(), 2);
        let ma = reports[0].mean_power.unwrap().as_w();
        let mb = reports[1].mean_power.unwrap().as_w();
        assert!(ma < 15.0, "sensor a mean {ma}");
        assert!(mb > 150.0, "sensor b mean {mb}");
    }

    #[test]
    fn energy_so_far_is_monotone() {
        let dev = device(100.0, 300.0);
        let sampler = PowerSampler::start(vec![dev], Duration::from_millis(2));
        std::thread::sleep(Duration::from_millis(10));
        let e1 = sampler.energy_so_far();
        std::thread::sleep(Duration::from_millis(10));
        let e2 = sampler.energy_so_far();
        assert!(e2 >= e1);
        let _ = sampler.stop();
    }

    #[test]
    #[should_panic(expected = "at least one sensor")]
    fn rejects_empty_sensor_list() {
        let _ = PowerSampler::start(vec![], Duration::from_millis(1));
    }

    #[test]
    fn virtual_sampler_is_deterministic() {
        let mut v = VirtualSampler::new();
        v.record(TimeSpan::from_hours(0.0), Power::from_w(100.0));
        v.record(TimeSpan::from_hours(1.0), Power::from_w(100.0));
        v.record(TimeSpan::from_hours(2.0), Power::from_w(300.0));
        // 100 Wh + 200 Wh = 300 Wh.
        assert!((v.energy().as_wh() - 300.0).abs() < 1e-9);
        assert!((v.mean_power().unwrap().as_w() - 150.0).abs() < 1e-9);
    }
}
