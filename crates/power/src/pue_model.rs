//! Seasonal PUE modeling.
//!
//! The paper fixes PUE to a constant but flags it: "the PUE metric, while
//! challenging to estimate with seasonal variation, can be approximated
//! well with IT and cooling energy monitors". Cooling load tracks outdoor
//! temperature, so facility PUE peaks in summer and bottoms out in winter
//! (free cooling). This module provides that first-order model and an
//! hourly-priced accounting variant that uses it.

use hpcarbon_core::operational::Pue;
use hpcarbon_grid::trace::IntensityTrace;
use hpcarbon_timeseries::datetime::{days_in_year, HourStamp};
use hpcarbon_units::{CarbonMass, Energy, TimeSpan};

/// A PUE that varies sinusoidally over the year around its mean, peaking
/// in mid-summer (chiller load) and bottoming in mid-winter (free
/// cooling).
#[derive(Debug, Clone, Copy)]
pub struct SeasonalPue {
    mean: f64,
    amplitude: f64,
}

impl SeasonalPue {
    /// Creates the model. `mean - amplitude` must still be a valid PUE
    /// (≥ 1.0).
    ///
    /// # Panics
    /// If the winter minimum would drop below 1.0 or amplitude is
    /// negative.
    pub fn new(mean: f64, amplitude: f64) -> SeasonalPue {
        assert!(amplitude >= 0.0, "amplitude must be non-negative");
        assert!(
            mean - amplitude >= 1.0,
            "winter PUE would fall below 1.0 (mean {mean}, amp {amplitude})"
        );
        SeasonalPue { mean, amplitude }
    }

    /// A typical efficient facility: 1.2 mean, ±0.1 seasonal swing.
    pub fn typical() -> SeasonalPue {
        SeasonalPue::new(1.2, 0.1)
    }

    /// The annual mean.
    pub fn mean(&self) -> Pue {
        Pue::new(self.mean)
    }

    /// PUE on a given day of the year (1-based) in a year of `days`.
    pub fn at_day(&self, day_of_year: u32, days: u32) -> Pue {
        let phase = std::f64::consts::TAU * (f64::from(day_of_year) - 200.0) / f64::from(days);
        Pue::new(self.mean + self.amplitude * phase.cos())
    }

    /// PUE at an hour stamp.
    pub fn at(&self, stamp: HourStamp) -> Pue {
        let year = stamp.date().year();
        self.at_day(stamp.date().day_of_year(), days_in_year(year))
    }
}

/// Accounts a run's carbon against an hourly intensity trace *and* an
/// hourly (seasonal) PUE — the fully time-resolved Eq. 6.
pub fn account_with_seasonal_pue(
    trace: &IntensityTrace,
    pue: &SeasonalPue,
    start_hour: u32,
    it_energy: Energy,
    duration: TimeSpan,
) -> CarbonMass {
    assert!(duration.as_hours() > 0.0, "duration must be positive");
    let rate_kwh_per_h = it_energy.as_kwh() / duration.as_hours();
    let len = trace.series().len() as u32;
    let year = trace.series().year();
    let hours = duration.as_hours();
    let mut grams = 0.0;
    let mut t = 0.0;
    while t < hours {
        let dt = (t.floor() + 1.0).min(hours) - t;
        let idx = (start_hour + t.floor() as u32) % len;
        let stamp = HourStamp::from_hour_of_year(year, idx);
        let pue_now = pue.at(stamp).value();
        grams += rate_kwh_per_h * dt * pue_now * trace.at_index(idx).as_g_per_kwh();
        t += dt;
    }
    CarbonMass::from_g(grams)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcarbon_grid::regions::OperatorId;
    use hpcarbon_timeseries::series::HourlySeries;

    #[test]
    fn summer_exceeds_winter() {
        let p = SeasonalPue::typical();
        let summer = p.at_day(200, 365).value();
        let winter = p.at_day(17, 365).value();
        assert!(summer > 1.28 && summer <= 1.3001, "{summer}");
        assert!((1.0999..1.12).contains(&winter), "{winter}");
        assert!((p.mean().value() - 1.2).abs() < 1e-12);
    }

    #[test]
    fn annual_average_is_the_mean() {
        let p = SeasonalPue::new(1.25, 0.08);
        let avg: f64 = (1..=365).map(|d| p.at_day(d, 365).value()).sum::<f64>() / 365.0;
        assert!((avg - 1.25).abs() < 1e-3, "{avg}");
    }

    #[test]
    #[should_panic(expected = "below 1.0")]
    fn rejects_sub_unity_winter() {
        let _ = SeasonalPue::new(1.05, 0.2);
    }

    #[test]
    fn zero_amplitude_matches_constant_pue() {
        let trace = IntensityTrace::new(OperatorId::Eso, HourlySeries::constant(2021, 250.0));
        let p = SeasonalPue::new(1.2, 0.0);
        let c = account_with_seasonal_pue(
            &trace,
            &p,
            1000,
            Energy::from_kwh(10.0),
            TimeSpan::from_hours(5.0),
        );
        // 10 kWh x 1.2 x 250 g = 3000 g.
        assert!((c.as_g() - 3000.0).abs() < 1e-9);
    }

    #[test]
    fn summer_runs_cost_more_than_winter_runs() {
        let trace = IntensityTrace::new(OperatorId::Eso, HourlySeries::constant(2021, 300.0));
        let p = SeasonalPue::typical();
        let winter = account_with_seasonal_pue(
            &trace,
            &p,
            24 * 16, // mid-January
            Energy::from_kwh(100.0),
            TimeSpan::from_hours(48.0),
        );
        let summer = account_with_seasonal_pue(
            &trace,
            &p,
            24 * 199, // mid-July
            Energy::from_kwh(100.0),
            TimeSpan::from_hours(48.0),
        );
        assert!(
            summer.as_g() > winter.as_g() * 1.1,
            "summer {} vs winter {}",
            summer,
            winter
        );
    }

    #[test]
    fn fractional_duration_accounting() {
        let trace = IntensityTrace::new(OperatorId::Eso, HourlySeries::constant(2021, 100.0));
        let p = SeasonalPue::new(1.0, 0.0);
        let c = account_with_seasonal_pue(
            &trace,
            &p,
            0,
            Energy::from_kwh(3.0),
            TimeSpan::from_hours(1.5),
        );
        assert!((c.as_g() - 300.0).abs() < 1e-9);
    }
}
