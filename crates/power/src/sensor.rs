//! Device power models and simulated sensors.
//!
//! The paper measures device power with "power measurement tools (e.g.,
//! NVML, RAPL)". Here the same interface is served by simulated devices:
//! a power model maps utilization to draw, and a [`SimulatedDevice`] holds
//! the current utilization (settable by a workload simulation) behind an
//! atomic so sampler threads can read it without locking.

use hpcarbon_units::{Fraction, Power};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Anything that can report an instantaneous power draw (the NVML
/// `nvmlDeviceGetPowerUsage` / RAPL energy-counter role).
pub trait PowerSensor: Send + Sync {
    /// Sensor name (e.g. `"gpu0"`).
    fn name(&self) -> &str;
    /// Current power draw.
    fn read_power(&self) -> Power;
}

/// Maps utilization to power draw for one device.
///
/// The model is the standard affine-plus-curvature fit used in GPU power
/// studies: `P(u) = idle + (tdp - idle) · u^alpha` with `alpha` slightly
/// below 1 (real accelerators reach near-peak power well before 100%
/// utilization because memory and static power dominate early).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DevicePowerModel {
    idle: Power,
    tdp: Power,
    alpha: f64,
}

impl DevicePowerModel {
    /// Default curvature exponent.
    pub const DEFAULT_ALPHA: f64 = 0.85;

    /// Creates a model with the default curvature.
    ///
    /// # Panics
    /// If `idle > tdp` or either is negative.
    pub fn new(idle: Power, tdp: Power) -> DevicePowerModel {
        Self::with_alpha(idle, tdp, Self::DEFAULT_ALPHA)
    }

    /// Creates a model with an explicit curvature exponent.
    pub fn with_alpha(idle: Power, tdp: Power, alpha: f64) -> DevicePowerModel {
        assert!(
            idle.as_w() >= 0.0 && tdp.as_w() >= 0.0,
            "power must be >= 0"
        );
        assert!(idle <= tdp, "idle power cannot exceed TDP");
        assert!(alpha > 0.0 && alpha.is_finite(), "alpha must be positive");
        DevicePowerModel { idle, tdp, alpha }
    }

    /// Idle draw.
    pub fn idle(&self) -> Power {
        self.idle
    }

    /// Peak (TDP) draw.
    pub fn tdp(&self) -> Power {
        self.tdp
    }

    /// Power at utilization `u` (clamped to `[0, 1]`).
    pub fn power_at(&self, u: f64) -> Power {
        let u = u.clamp(0.0, 1.0);
        self.idle + (self.tdp - self.idle) * u.powf(self.alpha)
    }

    /// Average power of a duty cycle that is busy a fraction `busy` of the
    /// time at utilization `u_busy` and idle otherwise. This is the form
    /// the upgrade analysis uses for "40% GPU usage" style inputs (RQ8).
    pub fn duty_cycle_power(&self, busy: Fraction, u_busy: f64) -> Power {
        self.power_at(u_busy) * busy.value() + self.idle * busy.complement().value()
    }
}

/// A simulated device: a power model plus the current utilization,
/// updated by workload code and read by sampler threads.
///
/// Utilization is stored as `f64` bits in an `AtomicU64` — single-word
/// atomic read/write (release/acquire) is all the synchronization a
/// sensor value needs.
#[derive(Debug)]
pub struct SimulatedDevice {
    name: String,
    model: DevicePowerModel,
    util_bits: AtomicU64,
}

impl SimulatedDevice {
    /// Creates an idle device.
    pub fn new(name: impl Into<String>, model: DevicePowerModel) -> Arc<SimulatedDevice> {
        Arc::new(SimulatedDevice {
            name: name.into(),
            model,
            util_bits: AtomicU64::new(0f64.to_bits()),
        })
    }

    /// The device's power model.
    pub fn model(&self) -> DevicePowerModel {
        self.model
    }

    /// Sets utilization (clamped to `[0, 1]`).
    pub fn set_utilization(&self, u: f64) {
        self.util_bits
            .store(u.clamp(0.0, 1.0).to_bits(), Ordering::Release);
    }

    /// Current utilization.
    pub fn utilization(&self) -> f64 {
        f64::from_bits(self.util_bits.load(Ordering::Acquire))
    }
}

impl PowerSensor for SimulatedDevice {
    fn name(&self) -> &str {
        &self.name
    }

    fn read_power(&self) -> Power {
        self.model.power_at(self.utilization())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v100_model() -> DevicePowerModel {
        DevicePowerModel::new(Power::from_w(40.0), Power::from_w(300.0))
    }

    #[test]
    fn endpoints() {
        let m = v100_model();
        assert_eq!(m.power_at(0.0).as_w(), 40.0);
        assert_eq!(m.power_at(1.0).as_w(), 300.0);
        // Clamping.
        assert_eq!(m.power_at(-1.0).as_w(), 40.0);
        assert_eq!(m.power_at(2.0).as_w(), 300.0);
    }

    #[test]
    fn monotone_in_utilization() {
        let m = v100_model();
        let mut last = -1.0;
        for i in 0..=20 {
            let p = m.power_at(f64::from(i) / 20.0).as_w();
            assert!(p >= last);
            last = p;
        }
    }

    #[test]
    fn sublinear_exponent_front_loads_power() {
        // With alpha < 1, half utilization draws more than half the range.
        let m = v100_model();
        let half = m.power_at(0.5).as_w();
        assert!(half > 40.0 + 0.5 * 260.0);
    }

    #[test]
    fn duty_cycle_average() {
        let m = v100_model();
        let p = m.duty_cycle_power(Fraction::new_unchecked(0.4), 1.0);
        // 0.4 * 300 + 0.6 * 40 = 144.
        assert!((p.as_w() - 144.0).abs() < 1e-9);
        let idle_only = m.duty_cycle_power(Fraction::ZERO, 1.0);
        assert_eq!(idle_only.as_w(), 40.0);
    }

    #[test]
    #[should_panic(expected = "idle power cannot exceed TDP")]
    fn rejects_idle_above_tdp() {
        let _ = DevicePowerModel::new(Power::from_w(400.0), Power::from_w(300.0));
    }

    #[test]
    fn simulated_device_reflects_utilization() {
        let dev = SimulatedDevice::new("gpu0", v100_model());
        assert_eq!(dev.read_power().as_w(), 40.0);
        dev.set_utilization(1.0);
        assert_eq!(dev.read_power().as_w(), 300.0);
        assert_eq!(dev.utilization(), 1.0);
        dev.set_utilization(7.0); // clamped
        assert_eq!(dev.utilization(), 1.0);
        assert_eq!(dev.name(), "gpu0");
    }

    #[test]
    fn device_is_shareable_across_threads() {
        let dev = SimulatedDevice::new("gpu0", v100_model());
        let d2 = Arc::clone(&dev);
        let handle = std::thread::spawn(move || {
            d2.set_utilization(0.5);
            d2.read_power().as_w()
        });
        let from_thread = handle.join().unwrap();
        assert!(from_thread > 40.0);
        assert_eq!(dev.utilization(), 0.5);
    }
}
