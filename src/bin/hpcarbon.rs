//! `hpcarbon` — command-line front end to the sustainable-hpc framework.
//!
//! ```text
//! hpcarbon estimate --request FILE [--threads N] [--out FILE] [--catalog DIR]
//! hpcarbon serve    [--addr A] [--shards N] [--workers N] [--cache N] [--max-body BYTES]
//!                   [--catalog DIR]
//! hpcarbon loadgen  [--addr A] [--requests N] [--concurrency C] [--seed N]
//!                   [--grid quick|shifting|default] [--jobs N] [--request FILE]
//!                   [--wait S] [--connect-retries N] [--out FILE] [--save-response FILE]
//! hpcarbon figures  [--seed N] [--out DIR]      regenerate all paper artifacts
//! hpcarbon parts                                 embodied-carbon catalog review
//! hpcarbon systems                               Fig. 5 composition of Table 2 systems
//! hpcarbon regions  [--seed N]                   Fig. 6 regional intensity summary
//! hpcarbon advisor  --from <node> --to <node> [--suite S] [--intensity G | --region R] [--usage F]
//! hpcarbon schedule [--jobs N] [--seed N] [--slack H] [--synthetic] [--forecast M]
//! hpcarbon sweep    [--seed N] [--seeds N] [--jobs N] [--threads N] [--out DIR]
//!                   [--top K] [--quick | --shifting] [--shard i/N] [--catalog DIR]
//!                   [--trace-file FILE]... [--forecast M] [--gaps P]
//! hpcarbon sweep    --merge DIR... [--out DIR]
//! hpcarbon trace    validate|stats|import       real-trace CSV ingestion
//! hpcarbon catalog  validate|list|show|export   plain-text hardware catalogs
//! ```
//!
//! Argument parsing is hand-rolled (the offline dependency set has no CLI
//! crate); every subcommand prints plain text suitable for terminals and
//! pipelines. Estimation itself — `estimate`, `advisor`, `schedule`,
//! `sweep` — routes through the versioned front-door API
//! ([`sustainable_hpc::api`]): the CLI only translates flags and files
//! into [`EstimateRequest`]s and renders the returned
//! [`FootprintReport`]s.

use sustainable_hpc::api::{batch_to_json, parse as api_parse, FlatIntensity, TraceSource};
use sustainable_hpc::grid::analysis::regional_summary;
use sustainable_hpc::prelude::*;
use sustainable_hpc::sweep::{
    grid_fingerprint, merge_sweep_outputs, OutputDigest, ShardManifest, ShardSpec, CSV_FILE,
    JSON_FILE,
};
use sustainable_hpc::upgrade::savings::UsageLevel;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("estimate") => cmd_estimate(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("loadgen") => cmd_loadgen(&args[1..]),
        Some("figures") => cmd_figures(&args[1..]),
        Some("parts") => cmd_parts(),
        Some("systems") => cmd_systems(),
        Some("regions") => cmd_regions(&args[1..]),
        Some("advisor") => cmd_advisor(&args[1..]),
        Some("schedule") => cmd_schedule(&args[1..]),
        Some("sweep") => cmd_sweep(&args[1..]),
        Some("trace") => cmd_trace(&args[1..]),
        Some("catalog") => cmd_catalog(&args[1..]),
        Some("--help") | Some("-h") | None => {
            print_usage();
            0
        }
        Some(other) => {
            eprintln!("unknown subcommand: {other}\n");
            print_usage();
            2
        }
    };
    std::process::exit(code);
}

fn print_usage() {
    println!(
        "hpcarbon — carbon footprint estimation for HPC systems (SC'23 reproduction)\n\n\
         USAGE:\n  hpcarbon estimate --request FILE [--threads N] [--out FILE] [--catalog DIR]\n  \
         hpcarbon serve    [--addr A] [--shards N] [--workers N] [--cache N] [--max-body BYTES]\n                    \
         [--catalog DIR]\n  \
         hpcarbon loadgen  [--addr A] [--requests N] [--concurrency C] [--seed N]\n                    \
         [--grid quick|shifting|default] [--jobs N] [--request FILE]\n                    \
         [--wait S] [--connect-retries N] [--out FILE] [--save-response FILE]\n  \
         hpcarbon figures  [--seed N] [--out DIR]\n  hpcarbon parts\n  \
         hpcarbon systems\n  hpcarbon regions  [--seed N]\n  hpcarbon advisor  --from <p100|v100|a100> --to <p100|v100|a100>\n                    \
         [--suite nlp|vision|candle] [--intensity G | --region R] [--usage F]\n  \
         hpcarbon schedule [--jobs N] [--seed N] [--slack H] [--synthetic] [--forecast M]\n  \
         hpcarbon sweep    [--seed N] [--seeds N] [--jobs N] [--threads N] [--out DIR]\n                    \
         [--top K] [--quick | --shifting] [--shard i/N] [--catalog DIR]\n                    \
         [--trace-file FILE]... [--forecast M] [--gaps reject|interpolate|hold]\n  \
         hpcarbon sweep    --merge DIR... [--out DIR]\n  \
         hpcarbon trace    validate FILE [--gaps P]\n  \
         hpcarbon trace    stats    FILE [--gaps P]\n  \
         hpcarbon trace    import   FILE --out FILE [--gaps P]\n  \
         hpcarbon catalog  validate [--catalog DIR]\n  \
         hpcarbon catalog  list     [--catalog DIR]\n  \
         hpcarbon catalog  show ID  [--catalog DIR]\n  \
         hpcarbon catalog  export   [--out DIR]\n\n\
         serve puts the same front door behind a std-only epoll event\n\
         loop (--shards readiness loops, cache hits answered in place;\n\
         uncached estimation on --workers threads): POST /v1/estimate\n\
         takes the estimate subcommand's exact request documents and\n\
         answers with byte-identical reports; a sharded LRU cache keyed\n\
         on canonical request bytes skips simulation for repeated\n\
         queries without changing a byte. GET /healthz and GET /metrics\n\
         expose liveness and counters (incl. per-shard gauges); SIGTERM\n\
         drains in-flight requests and exits 0.\n\n\
         loadgen fires N concurrent requests (sampled from a scenario\n\
         grid under a fixed seed, or one --request file repeated) at a\n\
         running server and reports throughput and latency percentiles;\n\
         it exits nonzero on any non-2xx, refused connect, or transport\n\
         error, which makes it CI's smoke client.\n\n\
         estimate is the front door: it reads a schema-versioned JSON\n\
         EstimateRequest (one object or an array) from --request, evaluates\n\
         the batch in parallel, and emits one FootprintReport per request\n\
         (to stdout, or to --out). Output is byte-identical for every\n\
         --threads value; infeasible requests become {{\"error\": ...}} rows.\n\n\
         sweep streams the full scenario grid (system x storage x region x\n\
         trace source x PUE x policy x upgrade path; 504 scenarios by\n\
         default, 16 with --quick, 20 carbon-shifting scenarios with\n\
         --shifting; --seeds N multiplies any grid by N seeds) through the\n\
         same API in parallel and writes sweep.csv + sweep.json under --out\n\
         (default out/sweep) in bounded memory. Output is byte-identical\n\
         for every --threads value and every shard split: --shard i/N\n\
         evaluates the i-th of N deterministic grid slices as document\n\
         fragments plus a digest manifest (re-running a completed shard is\n\
         a verified no-op), and --merge DIR... validates a full partition\n\
         and reassembles the canonical single-machine documents.\n\n\
         schedule compares every policy (incl. the indexed temporal and\n\
         spatio-temporal shifting pair at --slack hours) via one API batch\n\
         on a fixed GB+CA topology (partner site forced for every row, so\n\
         rows differ only by policy) and reports per-policy carbon savings\n\
         vs the run-at-arrival baseline; --synthetic swaps in synthetic\n\
         region-years.\n\n\
         trace ingests real hourly carbon-intensity CSVs (ElectricityMaps/\n\
         EIA-style; format spec docs/TRACES.md): validate prints every\n\
         {{file}}:{{line}}: diagnostic at once, stats prints a deterministic\n\
         summary, import re-emits the canonical normalized form. sweep and\n\
         schedule accept --forecast oracle|persistence|day-ahead|noisy:<pct>\n\
         to plan shifting on a forecast instead of the actual trace (the\n\
         output then adds realized-vs-oracle savings columns), and sweep\n\
         accepts repeatable --trace-file FILE to evaluate the file source\n\
         dimension against ingested measured data (--gaps picks the gap\n\
         policy: reject, interpolate, or hold).\n\n\
         advisor answers the upgrade question through the API: --intensity\n\
         pins a flat grid (a FlatIntensity provider), --region evaluates\n\
         at a simulated region's median intensity instead.\n\n\
         catalog manages plain-text hardware catalogs (docs/CATALOG.md):\n\
         validate loads a directory strictly and prints every\n\
         line-numbered diagnostic; list and show browse the loaded\n\
         entities (show traces a system's bill of materials to its\n\
         entity files); export writes the built-in Table 1/2/3 data as\n\
         a canonical catalog tree whose reload is bit-identical to the\n\
         shipped tables. estimate, sweep, and serve accept --catalog DIR\n\
         to swap that catalog in as the embodied-carbon source."
    );
}

/// Reads `--flag value` from an argument list.
fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Reads every occurrence of a repeatable `--flag value`.
fn flags(args: &[String], name: &str) -> Vec<String> {
    args.iter()
        .enumerate()
        .filter(|(_, a)| *a == name)
        .filter_map(|(i, _)| args.get(i + 1).cloned())
        .collect()
}

/// Parses `--gaps reject|interpolate|hold` (default reject).
fn gaps_flag(args: &[String]) -> Result<sustainable_hpc::grid::tracefile::GapPolicy, i32> {
    use sustainable_hpc::grid::tracefile::GapPolicy;
    match flag(args, "--gaps") {
        None => Ok(GapPolicy::Reject),
        Some(s) => match GapPolicy::parse(&s) {
            Some(p) => Ok(p),
            None => {
                eprintln!("unknown --gaps \"{s}\" (valid values: reject, interpolate, hold)");
                Err(2)
            }
        },
    }
}

/// Parses `--forecast oracle|persistence|day-ahead|noisy:<pct>`;
/// `Ok(None)` when absent (plan on the actual trace, the historical
/// behaviour).
fn forecast_flag(args: &[String]) -> Result<Option<sustainable_hpc::api::ForecastModel>, i32> {
    match flag(args, "--forecast") {
        None => Ok(None),
        Some(s) => match api_parse::forecast_model("forecast", &s) {
            Ok(m) => Ok(Some(m)),
            Err(e) => {
                eprintln!("{e}");
                Err(2)
            }
        },
    }
}

/// Loads one trace file, printing every `{file}:{line}:` diagnostic and
/// the validate-style summary line on failure — the shared ingestion
/// path of `trace validate|stats|import` and `--trace-file`.
fn load_trace_cli(
    path: &str,
    gaps: sustainable_hpc::grid::tracefile::GapPolicy,
) -> Result<sustainable_hpc::grid::tracefile::ParsedTrace, i32> {
    match sustainable_hpc::grid::tracefile::load_trace_file(path, gaps) {
        Ok(p) => Ok(p),
        Err(errors) => {
            let n = errors.0.len();
            eprintln!("{errors}");
            eprintln!("{path}: {n} trace error(s)");
            Err(1)
        }
    }
}

/// Loads `--catalog DIR` as an embodied source; `Ok(None)` when the flag
/// is absent (the built-in tables apply). A failing load prints every
/// line-numbered diagnostic — the same strict validation as
/// `hpcarbon catalog validate`.
fn catalog_flag(args: &[String]) -> Result<Option<CatalogSource>, i32> {
    match flag(args, "--catalog") {
        None => Ok(None),
        Some(dir) => match CatalogSource::load(&dir) {
            Ok(source) => Ok(Some(source)),
            Err(errors) => {
                let n = errors.0.len();
                eprintln!("{errors}");
                eprintln!("{dir}: {n} catalog error(s)");
                Err(1)
            }
        },
    }
}

fn cmd_estimate(args: &[String]) -> i32 {
    let Some(path) = flag(args, "--request") else {
        eprintln!("estimate requires --request FILE (a JSON EstimateRequest or array of them)");
        return 2;
    };
    let src = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return 1;
        }
    };
    let requests = match EstimateRequest::batch_from_json(&src) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{path}: {e}");
            return 2;
        }
    };
    let mut builder = Estimator::builder();
    if let Some(raw) = flag(args, "--threads") {
        // Silent fallback would break reference runs pinned to one
        // worker, so (unlike the legacy numeric flags) this one is typed.
        match raw.parse::<usize>() {
            Ok(n) if n >= 1 => builder = builder.threads(n),
            _ => {
                eprintln!("invalid --threads \"{raw}\" (expected a positive integer)");
                return 2;
            }
        }
    }
    match catalog_flag(args) {
        Ok(Some(source)) => builder = builder.embodied(source),
        Ok(None) => {}
        Err(c) => return c,
    }
    let results = builder.build().estimate_batch(&requests);
    let json = batch_to_json(&results);
    let errors = results.iter().filter(|r| r.is_err()).count();
    match flag(args, "--out") {
        Some(out) => {
            if let Some(parent) = std::path::Path::new(&out).parent() {
                if !parent.as_os_str().is_empty() {
                    if let Err(e) = std::fs::create_dir_all(parent) {
                        eprintln!("cannot create {}: {e}", parent.display());
                        return 1;
                    }
                }
            }
            if let Err(e) = std::fs::write(&out, &json) {
                eprintln!("cannot write {out}: {e}");
                return 1;
            }
            eprintln!(
                "estimated {} request(s) ({} ok, {errors} infeasible); wrote {out}",
                results.len(),
                results.len() - errors,
            );
        }
        None => print!("{json}"),
    }
    0
}

/// Parses a typed positive-integer flag; `Ok(None)` when absent.
fn positive_flag(args: &[String], name: &str) -> Result<Option<usize>, i32> {
    match flag(args, name) {
        None => Ok(None),
        Some(raw) => match raw.parse::<usize>() {
            Ok(n) if n >= 1 => Ok(Some(n)),
            _ => {
                eprintln!("invalid {name} \"{raw}\" (expected a positive integer)");
                Err(2)
            }
        },
    }
}

fn cmd_serve(args: &[String]) -> i32 {
    let addr = flag(args, "--addr").unwrap_or_else(|| "127.0.0.1:8080".into());
    let mut config = sustainable_hpc::server::ServerConfig::default();
    match positive_flag(args, "--shards") {
        Ok(Some(n)) => config.shards = n,
        Ok(None) => {}
        Err(c) => return c,
    }
    match positive_flag(args, "--workers") {
        Ok(Some(n)) => config.workers = n,
        Ok(None) => {}
        Err(c) => return c,
    }
    if let Some(raw) = flag(args, "--cache") {
        // 0 is meaningful here: it disables the cache.
        match raw.parse::<usize>() {
            Ok(n) => config.cache_capacity = n,
            Err(_) => {
                eprintln!("invalid --cache \"{raw}\" (expected a non-negative integer)");
                return 2;
            }
        }
    }
    match positive_flag(args, "--max-body") {
        Ok(Some(n)) => config.max_body_bytes = n,
        Ok(None) => {}
        Err(c) => return c,
    }

    let estimator = match catalog_flag(args) {
        Ok(Some(source)) => Estimator::builder().embodied(source).build(),
        Ok(None) => Estimator::builder().build(),
        Err(c) => return c,
    };
    let server = match Server::bind_with(&addr, config.clone(), estimator) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot bind {addr}: {e}");
            return 1;
        }
    };
    let bound = match server.local_addr() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("cannot resolve the bound address: {e}");
            return 1;
        }
    };

    // SIGTERM/SIGINT → the shutdown handle, polled by a watcher thread
    // (the handler itself only sets an atomic flag).
    sustainable_hpc::server::signal::install_handlers();
    let handle = server.shutdown_handle();
    let watcher = handle.clone();
    std::thread::spawn(move || loop {
        if sustainable_hpc::server::signal::termination_requested() {
            watcher.shutdown();
            return;
        }
        std::thread::sleep(std::time::Duration::from_millis(50));
    });

    println!(
        "hpcarbon-server listening on http://{bound} ({} shards, {} workers, cache {} entries, body limit {} bytes)",
        config.shards, config.workers, config.cache_capacity, config.max_body_bytes
    );
    println!(
        "routes: POST /v1/estimate | GET /healthz | GET /metrics — SIGTERM drains and exits 0"
    );
    match server.run() {
        Ok(s) => {
            println!(
                "graceful shutdown: drained; served {} http requests ({} estimate calls, {} cache hits / {} misses)",
                s.http_requests, s.estimate_calls, s.cache_hits, s.cache_misses
            );
            0
        }
        Err(e) => {
            eprintln!("server failed: {e}");
            1
        }
    }
}

fn cmd_loadgen(args: &[String]) -> i32 {
    let addr = flag(args, "--addr").unwrap_or_else(|| "127.0.0.1:8080".into());
    let requests = match positive_flag(args, "--requests") {
        Ok(n) => n.unwrap_or(64),
        Err(c) => return c,
    };
    let concurrency = match positive_flag(args, "--concurrency") {
        Ok(n) => n.unwrap_or(8),
        Err(c) => return c,
    };
    let wait_s = match positive_flag(args, "--wait") {
        Ok(n) => n.unwrap_or(10),
        Err(c) => return c,
    };
    // 0 is meaningful (fail fast on the first refused connect), so this
    // is not a positive_flag.
    let connect_retries: u32 = match flag(args, "--connect-retries") {
        None => 2,
        Some(raw) => match raw.parse() {
            Ok(n) => n,
            Err(_) => {
                eprintln!("invalid --connect-retries \"{raw}\" (expected a non-negative integer)");
                return 2;
            }
        },
    };
    // A typo'd seed must not silently run the default workload — the
    // whole point of --seed is a reproducible request sequence.
    let seed: u64 = match flag(args, "--seed") {
        None => 2021,
        Some(raw) => match raw.parse() {
            Ok(s) => s,
            Err(_) => {
                eprintln!("invalid --seed \"{raw}\" (expected a non-negative integer)");
                return 2;
            }
        },
    };

    // The workload: one file repeated (a single entry, cycled by the
    // workers), or requests sampled from a grid under the fixed seed
    // (reproducible request-for-request).
    let bodies: Vec<String> = match flag(args, "--request") {
        Some(path) => match std::fs::read_to_string(&path) {
            Ok(src) => vec![src],
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                return 1;
            }
        },
        None => {
            let grid_name = flag(args, "--grid").unwrap_or_else(|| "quick".into());
            let grid = match grid_name.as_str() {
                "quick" => ScenarioGrid::quick(),
                "shifting" => ScenarioGrid::shifting(),
                "default" => ScenarioGrid::paper_default(),
                other => {
                    eprintln!(
                        "unknown --grid \"{other}\" (valid values: quick, shifting, default)"
                    );
                    return 2;
                }
            };
            let mut cfg = SweepConfig::fast();
            match positive_flag(args, "--jobs") {
                Ok(Some(n)) => cfg.jobs_per_scenario = n,
                Ok(None) => {}
                Err(c) => return c,
            }
            grid.sample_requests(requests, &cfg, seed)
                .iter()
                .map(|r| r.to_json())
                .collect()
        }
    };

    if !sustainable_hpc::server::wait_healthz(&addr, std::time::Duration::from_secs(wait_s as u64))
    {
        eprintln!("server at {addr} did not answer /healthz within {wait_s}s");
        return 1;
    }
    let (summary, first_body) = match sustainable_hpc::server::loadgen::run(&LoadGenConfig {
        addr: addr.clone(),
        concurrency,
        bodies,
        requests,
        connect_retries,
    }) {
        Ok(out) => out,
        Err(e) => {
            eprintln!("loadgen failed: {e}");
            return 1;
        }
    };

    print!("{}", summary.render());
    if let Some(path) = flag(args, "--save-response") {
        let Some(body) = first_body else {
            eprintln!("no response captured to save to {path}");
            return 1;
        };
        if let Err(e) = std::fs::write(&path, body) {
            eprintln!("cannot write {path}: {e}");
            return 1;
        }
        eprintln!("saved the first response body to {path}");
    }
    if let Some(path) = flag(args, "--out") {
        if let Some(parent) = std::path::Path::new(&path).parent() {
            if !parent.as_os_str().is_empty() {
                if let Err(e) = std::fs::create_dir_all(parent) {
                    eprintln!("cannot create {}: {e}", parent.display());
                    return 1;
                }
            }
        }
        if let Err(e) = std::fs::write(&path, summary.to_json()) {
            eprintln!("cannot write {path}: {e}");
            return 1;
        }
        eprintln!("wrote the latency summary to {path}");
    }
    if summary.all_ok() {
        0
    } else {
        eprintln!(
            "loadgen observed failures: {} non-2xx, {} connect errors, {} i/o errors",
            summary.non_2xx, summary.connect_errors, summary.io_errors
        );
        1
    }
}

fn cmd_figures(args: &[String]) -> i32 {
    let seed: u64 = flag(args, "--seed")
        .and_then(|s| s.parse().ok())
        .unwrap_or(2021);
    let out = flag(args, "--out").unwrap_or_else(|| "out/paper".into());
    let dir = std::path::Path::new(&out);
    for a in sustainable_hpc::report::render_all(seed) {
        if let Err(e) = a.write_to(dir) {
            eprintln!("cannot write {}: {e}", dir.display());
            return 1;
        }
        println!("wrote {}/{}.{{txt,csv}}", dir.display(), a.id);
    }
    0
}

fn cmd_parts() -> i32 {
    println!(
        "{:<28} {:>9} {:>12} {:>13} {:>7}",
        "part", "kgCO2", "kg/TFLOPS", "kg/(GB/s)", "pack%"
    );
    for p in sustainable_hpc::core::db::all_parts() {
        let s = p.spec();
        let fmt_opt = |v: Option<f64>| {
            v.map(|x| format!("{x:.2}"))
                .unwrap_or_else(|| "-".to_string())
        };
        println!(
            "{:<28} {:>9.2} {:>12} {:>13} {:>6.1}%",
            s.part_name,
            s.embodied().total().as_kg(),
            fmt_opt(s.embodied_per_tflops()),
            fmt_opt(s.embodied_per_bandwidth()),
            s.embodied().packaging_share().percent(),
        );
    }
    0
}

fn cmd_systems() -> i32 {
    for sys in HpcSystem::table2() {
        println!(
            "{} ({}, {}) — total embodied {:.0} tCO2:",
            sys.name,
            sys.location,
            sys.year,
            sys.embodied_total().as_t()
        );
        for (class, share) in sys.composition_shares() {
            println!("  {:<5} {:>5.1}%", class.label(), share.percent());
        }
        println!(
            "  memory+storage: {:.1}%\n",
            sys.memory_storage_share().percent()
        );
    }
    0
}

fn cmd_regions(args: &[String]) -> i32 {
    let seed: u64 = flag(args, "--seed")
        .and_then(|s| s.parse().ok())
        .unwrap_or(2021);
    let traces = simulate_all_regions(2021, seed);
    println!(
        "{:<6} {:>8} {:>8} {:>8} {:>7}",
        "region", "q1", "median", "q3", "CoV%"
    );
    for s in regional_summary(&traces) {
        println!(
            "{:<6} {:>8.1} {:>8.1} {:>8.1} {:>6.1}%",
            s.operator.info().short,
            s.boxplot.q1,
            s.boxplot.median,
            s.boxplot.q3,
            s.cov_percent
        );
    }
    0
}

fn cmd_advisor(args: &[String]) -> i32 {
    // The typed parsers are shared with the API's JSON request decoder:
    // a typo'd value gets an error naming the flag and listing the
    // accepted vocabulary instead of a silent fallback.
    let node = |name: &'static str| -> Result<Option<NodeGen>, i32> {
        match flag(args, name) {
            None => Ok(None),
            Some(v) => match api_parse::node_gen(name, &v) {
                Ok(n) => Ok(Some(n)),
                Err(e) => {
                    eprintln!("{e}");
                    Err(2)
                }
            },
        }
    };
    let (from, to) = match (node("--from"), node("--to")) {
        (Ok(Some(f)), Ok(Some(t))) => (f, t),
        (Err(c), _) | (_, Err(c)) => return c,
        _ => {
            eprintln!("advisor requires --from and --to (p100|v100|a100)");
            return 2;
        }
    };
    let suite = match flag(args, "--suite") {
        None => Suite::Nlp,
        Some(v) => match api_parse::suite("--suite", &v) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("{e}");
                return 2;
            }
        },
    };
    let usage = flag(args, "--usage")
        .and_then(|s| s.parse::<f64>().ok())
        .and_then(Fraction::new)
        .unwrap_or_else(|| UsageLevel::Medium.fraction());

    // Build the request once; --region routes it at a simulated region's
    // grid, --intensity (the default, 200 g/kWh) pins a flat grid via a
    // swapped-in IntensityProvider.
    let mut req = EstimateRequest::paper_baseline(SystemId::Frontier, OperatorId::Eso);
    req.upgrade = UpgradePath { from, to, suite };
    req.usage = usage;
    req.jobs = 8; // the advisor reads the upgrade section, not the sched run
    let (estimator, grid_label) = match flag(args, "--region") {
        Some(r) => {
            let op = match api_parse::region("--region", &r) {
                Ok(op) => op,
                Err(e) => {
                    eprintln!("{e}");
                    return 2;
                }
            };
            req.region = op;
            (
                Estimator::builder().build(),
                format!("{} median", op.info().short),
            )
        }
        None => {
            let g = flag(args, "--intensity")
                .and_then(|s| s.parse().ok())
                .unwrap_or(200.0);
            (
                Estimator::builder()
                    .intensity(FlatIntensity::new(g))
                    .build(),
                format!("flat {g:.0} gCO2/kWh"),
            )
        }
    };
    let report = match estimator.estimate(&req) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("estimate failed: {e}");
            return 1;
        }
    };

    // Catalog facts of the upgrade itself (grid-independent).
    let scenario = UpgradeScenario {
        usage,
        ..UpgradeScenario::paper_default(from, to, suite)
    };
    println!(
        "{} -> {} | {} | usage {} | grid {}",
        from.config().name,
        to.config().name,
        suite.label(),
        usage,
        grid_label
    );
    println!("  speedup           : {:.2}x", scenario.speedup());
    println!("  upgrade embodied  : {}", scenario.upgrade_embodied());
    println!(
        "  annual energy     : {} -> {}",
        scenario.old_annual_energy(),
        scenario.new_annual_energy()
    );
    println!(
        "  median intensity  : {:.1} gCO2/kWh",
        report.grid.median_g_per_kwh
    );
    println!(
        "  node annual       : {:.1} kgCO2",
        report.upgrade.node_annual_kg
    );
    println!(
        "  asymptotic saving : {:.1}%",
        report.upgrade.asymptotic_pct
    );
    match report.upgrade.break_even_y {
        Some(y) => println!("  break-even        : {y:.2} years"),
        None => println!("  break-even        : never (no energy saving at this grid)"),
    }
    println!("  verdict           : {}", report.upgrade.verdict.label());
    0
}

fn cmd_sweep(args: &[String]) -> i32 {
    if let Some(pos) = args.iter().position(|a| a == "--merge") {
        return cmd_sweep_merge(args, pos);
    }
    let mut grid = if args.iter().any(|a| a == "--quick") {
        ScenarioGrid::quick()
    } else if args.iter().any(|a| a == "--shifting") {
        ScenarioGrid::shifting()
    } else {
        ScenarioGrid::paper_default()
    };
    let seed = flag(args, "--seed").and_then(|s| s.parse::<u64>().ok());
    if let Some(n) = flag(args, "--seeds").and_then(|s| s.parse::<u64>().ok()) {
        // N consecutive seeds starting at --seed (default 0): the knob
        // that scales any grid to 10^5+ rows for sharded runs.
        let base = seed.unwrap_or(0);
        grid = grid.seeds((base..base + n).collect::<Vec<u64>>());
    } else if let Some(s) = seed {
        grid = grid.seeds([s]);
    }
    let mut config = SweepConfig::paper_default();
    if let Some(jobs) = flag(args, "--jobs").and_then(|s| s.parse().ok()) {
        config.jobs_per_scenario = jobs;
    }
    config.forecast = match forecast_flag(args) {
        Ok(f) => f,
        Err(c) => return c,
    };
    // Ingested trace files swap the grid onto the `file` source
    // dimension: each file backs its own zone's region; rows for
    // regions without a file fail soft as error rows.
    let gaps = match gaps_flag(args) {
        Ok(g) => g,
        Err(c) => return c,
    };
    let mut trace_files = Vec::new();
    for path in flags(args, "--trace-file") {
        match load_trace_cli(&path, gaps) {
            Ok(p) => trace_files.push((p.operator, std::sync::Arc::new(p.trace))),
            Err(c) => return c,
        }
    }
    if !trace_files.is_empty() {
        grid = grid.sources([TraceSource::File]);
    }
    let shard = match flag(args, "--shard") {
        Some(s) => match ShardSpec::parse(&s) {
            Ok(spec) => Some(spec),
            Err(e) => {
                eprintln!("invalid --shard: {e}");
                return 2;
            }
        },
        None => None,
    };
    let threads: Option<usize> = flag(args, "--threads").and_then(|s| s.parse().ok());
    let top: usize = flag(args, "--top")
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);
    let out = flag(args, "--out").unwrap_or_else(|| "out/sweep".into());
    let dir = std::path::Path::new(&out);
    let catalog = match catalog_flag(args) {
        Ok(c) => c,
        Err(code) => return code,
    };

    let fingerprint = grid_fingerprint(&grid, &config);
    if let Some(spec) = shard {
        // Resume: a shard whose manifest matches this (grid, config)
        // and whose output files verify is already done.
        if let Ok(m) = ShardManifest::load_verified(dir) {
            if m.fingerprint == fingerprint && m.shard == spec {
                println!(
                    "shard {spec} already complete in {} ({} rows, verified); nothing to do",
                    dir.display(),
                    m.rows.len()
                );
                return 0;
            }
        }
    }

    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("cannot create {}: {e}", dir.display());
        return 1;
    }
    let (csv_file, json_file) = match (
        std::fs::File::create(dir.join(CSV_FILE)),
        std::fs::File::create(dir.join(JSON_FILE)),
    ) {
        (Ok(c), Ok(j)) => (std::io::BufWriter::new(c), std::io::BufWriter::new(j)),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("cannot write {}: {e}", dir.display());
            return 1;
        }
    };
    // Shards emit document fragments that `--merge` concatenates; a
    // shard that continues earlier rows leads with the JSON separator.
    let mut csv = match shard {
        Some(_) => CsvSink::fragment(csv_file),
        None => CsvSink::new(csv_file),
    };
    let mut json = match shard {
        Some(spec) => JsonSink::fragment(json_file, spec.range(grid.len()).start > 0),
        None => JsonSink::new(json_file),
    };
    // A forecast run grows the realized-vs-oracle columns; without the
    // flag the documents keep the frozen 25-column contract.
    if config.forecast.is_some() {
        csv = csv.forecast_columns();
        json = json.forecast_columns();
    }

    let mut sweep = Sweep::over(&grid)
        .config(config)
        .top(top)
        .sink(&mut csv)
        .sink(&mut json);
    for (region, trace) in trace_files {
        sweep = sweep.trace_file(region, trace);
    }
    if let Some(source) = catalog {
        sweep = sweep.embodied(std::sync::Arc::new(source));
    }
    if let Some(t) = threads {
        sweep = sweep.threads(t);
    }
    if let Some(spec) = shard {
        sweep = sweep.shard(spec.index, spec.count);
    }
    let report = match sweep.run() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("sweep failed: {e}");
            return 1;
        }
    };
    if let Err(e) = std::io::Write::flush(&mut csv.into_inner())
        .and_then(|()| std::io::Write::flush(&mut json.into_inner()))
    {
        eprintln!("cannot write {}: {e}", dir.display());
        return 1;
    }

    if let Some(spec) = shard {
        println!(
            "shard {spec}: rows {}..{} of {}",
            report.rows.start, report.rows.end, report.grid_len
        );
    }
    println!(
        "swept {} scenarios ({} ok, {} infeasible)\n",
        report.len(),
        report.ok,
        report.errors
    );
    print!("{}", report.summary_table());
    println!("\nlowest scheduled carbon (top {top}):");
    for row in &report.top {
        let o = row.outcome.as_ref().expect("top rows are ok");
        let s = &row.scenario;
        println!(
            "  #{:<4} {:<10} {:<9} {:<4} pue {:<9} {:<28} {:>9.1} kgCO2",
            s.id,
            s.system.label(),
            s.storage.label(),
            s.region.info().short,
            s.pue.label(),
            s.policy.label(),
            o.sched_carbon_kg
        );
    }

    if let Some(spec) = shard {
        let manifest = ShardManifest {
            fingerprint,
            shard: spec,
            rows: report.rows.clone(),
            ok: report.ok,
            errors: report.errors,
            outputs: report
                .digests
                .iter()
                .zip([CSV_FILE, JSON_FILE])
                .map(|(d, name)| OutputDigest {
                    path: name.to_string(),
                    bytes: d.bytes,
                    fnv64: d.fnv64,
                })
                .collect(),
        };
        if let Err(e) = manifest.write(dir) {
            eprintln!("cannot write {}: {e}", dir.display());
            return 1;
        }
        println!(
            "\nwrote {}/{{{CSV_FILE},{JSON_FILE},manifest.json}} (fragment)",
            dir.display()
        );
    } else {
        println!("\nwrote {}/sweep.{{csv,json}}", dir.display());
    }
    0
}

/// `hpcarbon sweep --merge DIR...`: validate a complete shard partition
/// and reassemble the canonical single-machine documents.
fn cmd_sweep_merge(args: &[String], pos: usize) -> i32 {
    let dirs: Vec<std::path::PathBuf> = args[pos + 1..]
        .iter()
        .take_while(|a| !a.starts_with("--"))
        .map(std::path::PathBuf::from)
        .collect();
    if dirs.is_empty() {
        eprintln!("--merge requires one directory per shard");
        return 2;
    }
    let out = flag(args, "--out").unwrap_or_else(|| "out/sweep".into());
    let out_dir = std::path::Path::new(&out);
    match merge_sweep_outputs(&dirs, out_dir) {
        Ok((rows, digests)) => {
            println!(
                "merged {} shards ({rows} rows) -> {}/sweep.{{csv,json}}",
                dirs.len(),
                out_dir.display()
            );
            for d in &digests {
                println!(
                    "  {:<10} {:>9} bytes  fnv64 {:#018x}",
                    d.path, d.bytes, d.fnv64
                );
            }
            0
        }
        Err(e) => {
            eprintln!("merge failed: {e}");
            1
        }
    }
}

/// `hpcarbon trace validate|stats|import` — ingest real hourly
/// carbon-intensity CSVs (format spec: docs/TRACES.md).
///
/// - `validate FILE` loads the file strictly and prints **every**
///   `{file}:{line}:` diagnostic at once (exit 1 on any error);
/// - `stats FILE` prints a deterministic summary of the normalized
///   trace, suitable for golden `cmp` in CI;
/// - `import FILE --out FILE` re-emits the canonical CSV form
///   (UTC stamps, gCO2/kWh, sorted hours) after validation.
fn cmd_trace(args: &[String]) -> i32 {
    let Some(sub) = args.first().map(String::as_str) else {
        eprintln!("trace requires a subcommand (valid values: validate, stats, import)");
        return 2;
    };
    let rest = &args[1..];
    let Some(path) = rest.first().filter(|a| !a.starts_with("--")).cloned() else {
        eprintln!("trace {sub} requires a FILE argument");
        return 2;
    };
    let gaps = match gaps_flag(rest) {
        Ok(g) => g,
        Err(c) => return c,
    };
    let parsed = match load_trace_cli(&path, gaps) {
        Ok(p) => p,
        Err(c) => return c,
    };
    let zone = sustainable_hpc::grid::tracefile::zone_label(parsed.operator);
    match sub {
        "validate" => {
            println!(
                "{path}: ok — zone {zone}, year {}, {} hours ({} filled)",
                parsed.year,
                parsed.trace.series().len(),
                parsed.filled_hours
            );
            0
        }
        "stats" => {
            let b = parsed.trace.boxplot();
            println!("zone       : {zone}");
            println!("year       : {}", parsed.year);
            println!("hours      : {}", parsed.trace.series().len());
            println!("filled     : {}", parsed.filled_hours);
            println!("min        : {:.4}", b.min);
            println!("q1         : {:.4}", b.q1);
            println!("median     : {:.4}", b.median);
            println!("mean       : {:.4}", b.mean);
            println!("q3         : {:.4}", b.q3);
            println!("max        : {:.4}", b.max);
            println!("cov %      : {:.4}", parsed.trace.cov_percent());
            0
        }
        "import" => {
            let Some(out) = flag(rest, "--out") else {
                eprintln!("trace import requires --out FILE");
                return 2;
            };
            let canonical = sustainable_hpc::grid::tracefile::write_trace_csv(&parsed.trace);
            if let Some(parent) = std::path::Path::new(&out).parent() {
                if !parent.as_os_str().is_empty() {
                    if let Err(e) = std::fs::create_dir_all(parent) {
                        eprintln!("cannot create {}: {e}", parent.display());
                        return 1;
                    }
                }
            }
            if let Err(e) = std::fs::write(&out, &canonical) {
                eprintln!("cannot write {out}: {e}");
                return 1;
            }
            println!(
                "wrote {out} — zone {zone}, year {}, {} hours (canonical form)",
                parsed.year,
                parsed.trace.series().len()
            );
            0
        }
        other => {
            eprintln!("unknown trace subcommand: {other} (valid values: validate, stats, import)");
            2
        }
    }
}

fn cmd_schedule(args: &[String]) -> i32 {
    let jobs_n: usize = flag(args, "--jobs")
        .and_then(|s| s.parse().ok())
        .unwrap_or(300);
    let seed: u64 = flag(args, "--seed")
        .and_then(|s| s.parse().ok())
        .unwrap_or(7);
    let slack: u32 = flag(args, "--slack")
        .and_then(|s| s.parse().ok())
        .unwrap_or(24);
    let source = if args.iter().any(|a| a == "--synthetic") {
        TraceSource::Synthetic
    } else {
        TraceSource::Paper
    };
    let forecast = match forecast_flag(args) {
        Ok(f) => f,
        Err(c) => return c,
    };
    // One API batch: the same GB-anchored request under every policy,
    // with the CA partner site forced for ALL rows (`partner: true`) so
    // the table compares policies on one fixed topology rather than
    // confounding policy effects with cluster-capacity differences.
    let policies = [
        Policy::Fifo,
        Policy::ThresholdDefer {
            threshold_g_per_kwh: 150.0,
        },
        Policy::GreenestWindow { horizon_hours: 24 },
        Policy::LowestIntensityRegion,
        Policy::RegionAndTime { horizon_hours: 24 },
        Policy::TemporalShift { slack_hours: slack },
        Policy::SpatioTemporal { slack_hours: slack },
    ];
    let requests: Vec<EstimateRequest> = policies
        .iter()
        .map(|&policy| {
            let mut r = EstimateRequest::paper_baseline(SystemId::Frontier, OperatorId::Eso);
            r.policy = policy;
            r.partner = Some(true);
            r.source = source;
            r.forecast = forecast;
            r.seed = seed;
            r.jobs = jobs_n;
            r
        })
        .collect();
    let results = Estimator::builder().build().estimate_batch(&requests);
    let mut rows = Vec::new();
    for (policy, result) in policies.iter().zip(results) {
        let report = match result {
            Ok(r) => r,
            Err(e) => {
                eprintln!("{}: {e}", policy.label());
                return 1;
            }
        };
        rows.push(sustainable_hpc::report::tables::ShiftingRow {
            policy: policy.label().to_string(),
            carbon_kg: report.operational.sched_kg,
            saved_kg: report.shift.saved_kg,
            saved_pct: report.shift.saved_pct,
            mean_wait_h: report.operational.mean_wait_h,
            max_wait_h: report.operational.max_wait_h,
            oracle_saved_kg: report.shift.oracle_saved_kg,
            oracle_saved_pct: report.shift.oracle_saved_pct,
        });
    }
    print!(
        "{}",
        sustainable_hpc::report::tables::shifting_comparison(&rows)
    );
    0
}

/// `hpcarbon catalog validate|list|show|export` — manage plain-text
/// hardware catalogs (format spec: docs/CATALOG.md).
fn cmd_catalog(args: &[String]) -> i32 {
    use sustainable_hpc::catalog::{export_builtin, node_slug, part_slug, region_slug};

    let Some(sub) = args.first().map(String::as_str) else {
        eprintln!("catalog requires a subcommand (valid values: validate, list, show, export)");
        return 2;
    };
    let rest = &args[1..];

    // export writes the built-in tables; it does not read a catalog.
    if sub == "export" {
        let out = flag(rest, "--out").unwrap_or_else(|| "catalog".into());
        return match export_builtin(&out) {
            Ok(()) => {
                println!(
                    "exported the built-in tables to {out}/ (13 parts, 5 process nodes, 3 systems, 7 regions)"
                );
                0
            }
            Err(e) => {
                eprintln!("cannot write {out}: {e}");
                1
            }
        };
    }

    let dir = flag(rest, "--catalog").unwrap_or_else(|| "catalog".into());
    let catalog = match Catalog::load(&dir) {
        Ok(c) => c,
        Err(errors) => {
            let n = errors.0.len();
            eprintln!("{errors}");
            eprintln!("{dir}: {n} catalog error(s)");
            return 1;
        }
    };

    match sub {
        "validate" => {
            println!(
                "{dir}: OK ({} parts, {} process nodes, {} systems, {} regions)",
                catalog.parts().len(),
                catalog.nodes().len(),
                catalog.systems().len(),
                catalog.regions().len()
            );
            0
        }
        "list" => {
            for p in catalog.parts() {
                println!("part          {:<22} {}", part_slug(p.spec.id), p.source);
            }
            for n in catalog.nodes() {
                println!("process-node  {:<22} {}", node_slug(n.node), n.source);
            }
            for s in catalog.systems() {
                println!("system        {:<22} {}", s.id, s.source);
            }
            for r in catalog.regions() {
                println!("region        {:<22} {}", region_slug(r.id), r.source);
            }
            0
        }
        "show" => {
            let Some(id) = rest.first().filter(|a| !a.starts_with("--")) else {
                eprintln!("show requires an entity id (try `hpcarbon catalog list`)");
                return 2;
            };
            if let Some(p) = catalog.parts().iter().find(|p| part_slug(p.spec.id) == *id) {
                let spec = &p.spec;
                println!("part {id} ({})", p.source);
                println!("  part-name : {}", spec.part_name);
                println!("  component : {}", spec.component);
                println!(
                    "  class     : {:<6} release {:04}-{:02}",
                    spec.class.label(),
                    spec.release.0,
                    spec.release.1
                );
                println!(
                    "  embodied  : {:.2} kgCO2 (packaging {:.1}%)",
                    spec.embodied().total().as_kg(),
                    spec.embodied().packaging_share().percent()
                );
            } else if let Some(n) = catalog.nodes().iter().find(|n| node_slug(n.node) == *id) {
                println!("process-node {id} ({})", n.source);
                println!("  label : {}", n.label);
                println!(
                    "  fab densities : fpa {} / gpa {} / mpa {} gCO2 per cm2",
                    n.densities.fpa.as_g_per_cm2(),
                    n.densities.gpa.as_g_per_cm2(),
                    n.densities.mpa.as_g_per_cm2()
                );
            } else if let Some(s) = catalog.systems().iter().find(|s| s.id == *id) {
                let sys = &s.system;
                println!("system {id} ({})", s.source);
                println!("  name     : {} — {}", sys.name, sys.location);
                println!("  cores    : {}  deployed {}", sys.cores, sys.year);
                println!("  bill of materials ({} link lines):", s.links.len());
                for link in &s.links {
                    let each = catalog
                        .part(link.part)
                        .expect("loaded catalogs resolve every link")
                        .embodied()
                        .total();
                    println!(
                        "    {}:{:<3} {:<22} x {:>6} = {:>8.1} tCO2",
                        s.source,
                        link.line,
                        part_slug(link.part),
                        link.count,
                        each.as_t() * link.count as f64
                    );
                }
                println!("  embodied total : {:.1} tCO2", sys.embodied_total().as_t());
            } else if let Some(r) = catalog.regions().iter().find(|r| region_slug(r.id) == *id) {
                println!("region {id} ({})", r.source);
                println!("  short   : {}", r.short);
                println!("  name    : {}", r.name);
                println!("  country : {} ({})", r.country, r.region);
            } else {
                eprintln!("{dir}: no entity with id \"{id}\" (try `hpcarbon catalog list`)");
                return 1;
            }
            0
        }
        other => {
            eprintln!(
                "unknown catalog subcommand \"{other}\" (valid values: validate, list, show, export)"
            );
            2
        }
    }
}
