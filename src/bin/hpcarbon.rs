//! `hpcarbon` — command-line front end to the sustainable-hpc framework.
//!
//! ```text
//! hpcarbon figures  [--seed N] [--out DIR]      regenerate all paper artifacts
//! hpcarbon parts                                 embodied-carbon catalog review
//! hpcarbon systems                               Fig. 5 composition of Table 2 systems
//! hpcarbon regions  [--seed N]                   Fig. 6 regional intensity summary
//! hpcarbon advisor  --from <node> --to <node> [--suite S] [--intensity G] [--usage F]
//! hpcarbon schedule [--jobs N] [--seed N] [--slack H] [--synthetic]
//! hpcarbon sweep    [--seed N] [--jobs N] [--threads N] [--out DIR] [--top K]
//!                   [--quick | --shifting]
//! ```
//!
//! Argument parsing is hand-rolled (the offline dependency set has no CLI
//! crate); every subcommand prints plain text suitable for terminals and
//! pipelines.

use sustainable_hpc::grid::analysis::regional_summary;
use sustainable_hpc::prelude::*;
use sustainable_hpc::upgrade::savings::UsageLevel;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("figures") => cmd_figures(&args[1..]),
        Some("parts") => cmd_parts(),
        Some("systems") => cmd_systems(),
        Some("regions") => cmd_regions(&args[1..]),
        Some("advisor") => cmd_advisor(&args[1..]),
        Some("schedule") => cmd_schedule(&args[1..]),
        Some("sweep") => cmd_sweep(&args[1..]),
        Some("--help") | Some("-h") | None => {
            print_usage();
            0
        }
        Some(other) => {
            eprintln!("unknown subcommand: {other}\n");
            print_usage();
            2
        }
    };
    std::process::exit(code);
}

fn print_usage() {
    println!(
        "hpcarbon — carbon footprint estimation for HPC systems (SC'23 reproduction)\n\n\
         USAGE:\n  hpcarbon figures  [--seed N] [--out DIR]\n  hpcarbon parts\n  \
         hpcarbon systems\n  hpcarbon regions  [--seed N]\n  hpcarbon advisor  --from <p100|v100|a100> --to <p100|v100|a100>\n                    \
         [--suite nlp|vision|candle] [--intensity G] [--usage F]\n  hpcarbon schedule [--jobs N] [--seed N] [--slack H] [--synthetic]\n  \
         hpcarbon sweep    [--seed N] [--jobs N] [--threads N] [--out DIR] [--top K]\n                    \
         [--quick | --shifting]\n\n\
         sweep runs the full scenario grid (system x storage x region x trace\n\
         source x PUE x policy x upgrade path; 504 scenarios by default, 16\n\
         with --quick, 20 carbon-shifting scenarios with --shifting) in\n\
         parallel and writes sweep.csv + sweep.json under --out (default\n\
         out/sweep). Output is byte-identical for every --threads value.\n\n\
         schedule compares every policy (incl. the indexed temporal and\n\
         spatio-temporal shifting pair at --slack hours) on GB+CA clusters\n\
         and reports per-policy carbon savings vs the run-at-arrival\n\
         baseline; --synthetic swaps in synthetic region-years."
    );
}

/// Reads `--flag value` from an argument list.
fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn parse_node(s: &str) -> Option<NodeGen> {
    match s.to_ascii_lowercase().as_str() {
        "p100" => Some(NodeGen::P100Node),
        "v100" => Some(NodeGen::V100Node),
        "a100" => Some(NodeGen::A100Node),
        _ => None,
    }
}

fn parse_suite(s: &str) -> Option<Suite> {
    match s.to_ascii_lowercase().as_str() {
        "nlp" => Some(Suite::Nlp),
        "vision" => Some(Suite::Vision),
        "candle" => Some(Suite::Candle),
        _ => None,
    }
}

fn cmd_figures(args: &[String]) -> i32 {
    let seed: u64 = flag(args, "--seed")
        .and_then(|s| s.parse().ok())
        .unwrap_or(2021);
    let out = flag(args, "--out").unwrap_or_else(|| "out/paper".into());
    let dir = std::path::Path::new(&out);
    for a in sustainable_hpc::report::render_all(seed) {
        if let Err(e) = a.write_to(dir) {
            eprintln!("cannot write {}: {e}", dir.display());
            return 1;
        }
        println!("wrote {}/{}.{{txt,csv}}", dir.display(), a.id);
    }
    0
}

fn cmd_parts() -> i32 {
    println!(
        "{:<28} {:>9} {:>12} {:>13} {:>7}",
        "part", "kgCO2", "kg/TFLOPS", "kg/(GB/s)", "pack%"
    );
    for p in sustainable_hpc::core::db::all_parts() {
        let s = p.spec();
        let fmt_opt = |v: Option<f64>| {
            v.map(|x| format!("{x:.2}"))
                .unwrap_or_else(|| "-".to_string())
        };
        println!(
            "{:<28} {:>9.2} {:>12} {:>13} {:>6.1}%",
            s.part_name,
            s.embodied().total().as_kg(),
            fmt_opt(s.embodied_per_tflops()),
            fmt_opt(s.embodied_per_bandwidth()),
            s.embodied().packaging_share().percent(),
        );
    }
    0
}

fn cmd_systems() -> i32 {
    for sys in HpcSystem::table2() {
        println!(
            "{} ({}, {}) — total embodied {:.0} tCO2:",
            sys.name,
            sys.location,
            sys.year,
            sys.embodied_total().as_t()
        );
        for (class, share) in sys.composition_shares() {
            println!("  {:<5} {:>5.1}%", class.label(), share.percent());
        }
        println!(
            "  memory+storage: {:.1}%\n",
            sys.memory_storage_share().percent()
        );
    }
    0
}

fn cmd_regions(args: &[String]) -> i32 {
    let seed: u64 = flag(args, "--seed")
        .and_then(|s| s.parse().ok())
        .unwrap_or(2021);
    let traces = simulate_all_regions(2021, seed);
    println!(
        "{:<6} {:>8} {:>8} {:>8} {:>7}",
        "region", "q1", "median", "q3", "CoV%"
    );
    for s in regional_summary(&traces) {
        println!(
            "{:<6} {:>8.1} {:>8.1} {:>8.1} {:>6.1}%",
            s.operator.info().short,
            s.boxplot.q1,
            s.boxplot.median,
            s.boxplot.q3,
            s.cov_percent
        );
    }
    0
}

fn cmd_advisor(args: &[String]) -> i32 {
    let (Some(from), Some(to)) = (
        flag(args, "--from").as_deref().and_then(parse_node),
        flag(args, "--to").as_deref().and_then(parse_node),
    ) else {
        eprintln!("advisor requires --from and --to (p100|v100|a100)");
        return 2;
    };
    let suite = flag(args, "--suite")
        .as_deref()
        .and_then(parse_suite)
        .unwrap_or(Suite::Nlp);
    let intensity = CarbonIntensity::from_g_per_kwh(
        flag(args, "--intensity")
            .and_then(|s| s.parse().ok())
            .unwrap_or(200.0),
    );
    let usage = flag(args, "--usage")
        .and_then(|s| s.parse::<f64>().ok())
        .and_then(Fraction::new)
        .unwrap_or_else(|| UsageLevel::Medium.fraction());
    let scenario = UpgradeScenario {
        usage,
        ..UpgradeScenario::paper_default(from, to, suite)
    };
    println!(
        "{} -> {} | {} | usage {} | grid {}",
        from.config().name,
        to.config().name,
        suite.label(),
        usage,
        intensity
    );
    println!("  speedup           : {:.2}x", scenario.speedup());
    println!("  upgrade embodied  : {}", scenario.upgrade_embodied());
    println!(
        "  annual energy     : {} -> {}",
        scenario.old_annual_energy(),
        scenario.new_annual_energy()
    );
    println!(
        "  asymptotic saving : {:.1}%",
        scenario.asymptotic_savings_percent()
    );
    match scenario.break_even(intensity) {
        Some(t) => println!("  break-even        : {t}"),
        None => println!("  break-even        : never (no energy saving at this grid)"),
    }
    let verdict = UpgradeAdvisor::with_five_year_horizon().recommend(&scenario, intensity);
    println!("  verdict           : {verdict}");
    0
}

fn cmd_sweep(args: &[String]) -> i32 {
    let mut grid = if args.iter().any(|a| a == "--quick") {
        ScenarioGrid::quick()
    } else if args.iter().any(|a| a == "--shifting") {
        ScenarioGrid::shifting()
    } else {
        ScenarioGrid::paper_default()
    };
    if let Some(seed) = flag(args, "--seed").and_then(|s| s.parse::<u64>().ok()) {
        grid = grid.seeds([seed]);
    }
    let mut config = SweepConfig::paper_default();
    if let Some(jobs) = flag(args, "--jobs").and_then(|s| s.parse().ok()) {
        config.jobs_per_scenario = jobs;
    }
    let mut executor = SweepExecutor::new(config);
    if let Some(threads) = flag(args, "--threads").and_then(|s| s.parse().ok()) {
        executor = executor.with_threads(threads);
    }
    let top: usize = flag(args, "--top")
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);
    let out = flag(args, "--out").unwrap_or_else(|| "out/sweep".into());

    let results = executor.run(&grid);
    println!(
        "swept {} scenarios ({} ok, {} infeasible)\n",
        results.len(),
        results.ok_count(),
        results.error_count()
    );
    print!("{}", results.summary_table());
    println!("\nlowest scheduled carbon (top {top}):");
    for row in results.rank_by_sched_carbon(top) {
        let o = row.outcome.as_ref().expect("ranked rows are ok");
        let s = &row.scenario;
        println!(
            "  #{:<4} {:<10} {:<9} {:<4} pue {:<9} {:<28} {:>9.1} kgCO2",
            s.id,
            s.system.label(),
            s.storage.label(),
            s.region.info().short,
            s.pue.label(),
            s.policy.label(),
            o.sched_carbon_kg
        );
    }

    let dir = std::path::Path::new(&out);
    if let Err(e) = std::fs::create_dir_all(dir)
        .and_then(|()| std::fs::write(dir.join("sweep.csv"), results.to_csv()))
        .and_then(|()| std::fs::write(dir.join("sweep.json"), results.to_json()))
    {
        eprintln!("cannot write {}: {e}", dir.display());
        return 1;
    }
    println!("\nwrote {}/sweep.{{csv,json}}", dir.display());
    0
}

fn cmd_schedule(args: &[String]) -> i32 {
    let jobs_n: usize = flag(args, "--jobs")
        .and_then(|s| s.parse().ok())
        .unwrap_or(300);
    let seed: u64 = flag(args, "--seed")
        .and_then(|s| s.parse().ok())
        .unwrap_or(7);
    let slack: u32 = flag(args, "--slack")
        .and_then(|s| s.parse().ok())
        .unwrap_or(24);
    let trace = |op| {
        if args.iter().any(|a| a == "--synthetic") {
            synthesize_year(op, 2021, seed)
        } else {
            simulate_year(op, 2021, seed)
        }
    };
    let gb = Cluster::new("gb", trace(OperatorId::Eso), 96);
    let ca = Cluster::new("ca", trace(OperatorId::Ciso), 96);
    let clusters = vec![gb, ca];
    let jobs = JobTraceGenerator::default_rates().generate(jobs_n, seed);
    let mut rows = Vec::new();
    for policy in [
        Policy::Fifo,
        Policy::ThresholdDefer {
            threshold_g_per_kwh: 150.0,
        },
        Policy::GreenestWindow { horizon_hours: 24 },
        Policy::LowestIntensityRegion,
        Policy::RegionAndTime { horizon_hours: 24 },
        Policy::TemporalShift { slack_hours: slack },
        Policy::SpatioTemporal { slack_hours: slack },
    ] {
        let out = match Simulation::multi_region(clusters.clone(), policy, &jobs).try_run() {
            Ok(out) => out,
            Err(e) => {
                eprintln!("{}: {e}", policy.label());
                return 1;
            }
        };
        let savings = summarize_shift_savings(&shift_savings(&out, &jobs, &clusters));
        rows.push(sustainable_hpc::report::tables::ShiftingRow {
            policy: policy.label().to_string(),
            carbon_kg: out.total_carbon.as_kg(),
            saved_kg: savings.saved_kg,
            saved_pct: savings.saved_pct,
            mean_wait_h: out.mean_wait_hours,
            max_wait_h: out.max_wait_hours,
        });
    }
    print!(
        "{}",
        sustainable_hpc::report::tables::shifting_comparison(&rows)
    );
    0
}
