//! # sustainable-hpc
//!
//! A full Rust implementation of the carbon-footprint estimation framework
//! from **"Toward Sustainable HPC: Carbon Footprint Estimation and
//! Environmental Implications of HPC Systems"** (Li et al., SC 2023),
//! including every substrate the paper's analyses depend on.
//!
//! The workspace is organized as focused crates, re-exported here:
//!
//! - [`units`] — dimension-checked quantities (gCO₂, kWh, gCO₂/kWh, …)
//! - [`sim`] — seeded distributions, OU processes, discrete events,
//!   parallel map
//! - [`timeseries`] — civil datetime + hourly-series statistics
//! - [`core`] — the paper's Eqs. 1–6: embodied and operational carbon
//!   models, the Table 1 part catalog, the Table 2 system inventories
//! - [`grid`] — the seven-region grid simulator behind Figs. 6–7
//! - [`power`] — NVML/RAPL-style telemetry and the carbontracker-
//!   equivalent accounting pipeline
//! - [`workloads`] — the Table 4 benchmark models and Table 5 node
//!   generations (roofline + allreduce performance, node power)
//! - [`upgrade`] — the RQ7/RQ8 upgrade decision framework (Figs. 8–9)
//! - [`sched`] — carbon-intensity-aware job scheduling with carbon
//!   budgets (the paper's §4 implications, built)
//! - [`report`] — regeneration of every paper table and figure
//! - [`api`] — the **single front door**: a versioned
//!   `EstimateRequest → FootprintReport` API with pluggable providers
//!   (`hpcarbon estimate`)
//! - [`sweep`] — declarative scenario grids and a deterministic streaming
//!   sweep engine (bounded memory, pluggable row sinks, `--shard i/N`
//!   partitioning), batch-shaped consumer of the API (`hpcarbon sweep`)
//! - [`server`] — a std-only threaded HTTP server over the API with a
//!   canonical-request cache, plus the matching load generator
//!   (`hpcarbon serve` / `hpcarbon loadgen`)
//!
//! Architecture, calibration methodology (§1) and the process-node
//! interpolation scheme (§5) are documented in `DESIGN.md` at the
//! repository root, next to this crate's `Cargo.toml`.
//!
//! ## Quickstart
//!
//! The front door: build a request, build an estimator, read the report.
//!
//! ```
//! use sustainable_hpc::prelude::*;
//!
//! let est = Estimator::builder().build();
//! let req = EstimateRequest::paper_baseline(SystemId::Frontier, OperatorId::Eso);
//! let report = est.estimate(&req).unwrap();
//! assert!(report.embodied.total_t > 1000.0);       // Eqs. 2-5
//! assert!(report.operational.sched_kg > 0.0);      // Eq. 6 over a grid year
//! assert_eq!(report.upgrade.verdict.label(), "upgrade");
//!
//! // Every data axis is a trait you can swap (see DESIGN.md §8):
//! let flat = Estimator::builder().intensity(FlatIntensity::new(100.0)).build();
//! assert_eq!(flat.estimate(&req).unwrap().grid.median_g_per_kwh, 100.0);
//! ```
//!
//! The layers underneath remain directly addressable:
//!
//! ```
//! use sustainable_hpc::prelude::*;
//!
//! // Embodied carbon of one A100 (Eq. 2-5).
//! let a100 = PartId::GpuA100Pcie40.spec();
//! let embodied = a100.embodied().total();
//!
//! // Operational carbon of a 100 kWh training run in a simulated Great
//! // Britain grid hour (Eq. 6).
//! let trace = simulate_year(OperatorId::Eso, 2021, 42);
//! let intensity = trace.at_index(0);
//! let operational = operational_carbon(Energy::from_kwh(100.0), Pue::DEFAULT, intensity);
//!
//! // Eq. 1.
//! let total = total_carbon(embodied, operational);
//! assert!(total > embodied);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use hpcarbon_api as api;
pub use hpcarbon_catalog as catalog;
pub use hpcarbon_core as core;
pub use hpcarbon_grid as grid;
pub use hpcarbon_power as power;
pub use hpcarbon_report as report;
pub use hpcarbon_sched as sched;
pub use hpcarbon_server as server;
pub use hpcarbon_sim as sim;
pub use hpcarbon_sweep as sweep;
pub use hpcarbon_timeseries as timeseries;
pub use hpcarbon_units as units;
pub use hpcarbon_upgrade as upgrade;
pub use hpcarbon_workloads as workloads;

/// The most common imports in one place.
pub mod prelude {
    pub use hpcarbon_api::{
        ApiError, EmbodiedSource, EstimateRequest, Estimator, EstimatorBuilder, FlatIntensity,
        FootprintReport, IntensityProvider, PueProvider, PueSpec, StorageVariant, SystemId,
        UpgradePath,
    };
    pub use hpcarbon_catalog::{Catalog, CatalogSource};
    pub use hpcarbon_core::db::{PartId, PartSpec};
    pub use hpcarbon_core::embodied::{ComponentClass, EmbodiedBreakdown};
    pub use hpcarbon_core::lifecycle::total_carbon;
    pub use hpcarbon_core::operational::{operational_carbon, Pue};
    pub use hpcarbon_core::systems::HpcSystem;
    pub use hpcarbon_grid::{
        simulate_all_regions, simulate_year, synthesize_year, IntensityTrace, OperatorId,
    };
    pub use hpcarbon_sched::{
        shift_savings, summarize_shift_savings, Cluster, Job, JobTraceGenerator, Policy, Simulation,
    };
    pub use hpcarbon_server::{
        EstimateService, LoadGenConfig, LoadSummary, Server, ServerConfig, ShutdownHandle,
    };
    #[allow(deprecated)]
    pub use hpcarbon_sweep::SweepExecutor;
    pub use hpcarbon_sweep::{
        CollectSink, CsvSink, JsonSink, RowSink, ScenarioGrid, Sweep, SweepConfig, SweepReport,
        TraceSource,
    };
    pub use hpcarbon_units::*;
    pub use hpcarbon_upgrade::{Recommendation, UpgradeAdvisor, UpgradeScenario};
    pub use hpcarbon_workloads::{benchmarks::Suite, nodes::NodeGen, GpuModel};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_reexports_work() {
        let f = HpcSystem::frontier();
        assert!(f.embodied_total().as_t() > 1000.0);
        let t = simulate_year(OperatorId::Eso, 2021, 1);
        assert_eq!(t.series().len(), 8760);
    }
}
