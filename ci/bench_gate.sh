#!/usr/bin/env bash
# Bench-regression gate.
#
# Runs the window-index, sweep, serve, and trace bench suites, records
# each benchmark's median ns/iter as machine-readable JSON
# (BENCH_window_index.json, BENCH_sweep.json, BENCH_serve.json,
# BENCH_trace.json — uploaded as CI artifacts), and compares against the
# committed baseline:
#
#   * a benchmark slower than baseline × BENCH_GATE_MAX_RATIO fails the
#     gate (regression);
#   * a benchmark faster than baseline ÷ BENCH_GATE_MAX_RATIO prints a
#     notice suggesting a baseline refresh (never fails);
#   * window_index/argmin_indexed must beat window_index/argmin_naive by
#     ≥ BENCH_GATE_MIN_ARGMIN_SPEEDUP — the indexed-query contract, a
#     pure ratio and therefore machine-independent;
#   * serve/estimate_uncached must beat serve/estimate_cached_hit by
#     ≥ BENCH_GATE_MIN_CACHE_SPEEDUP — the canonical-request cache
#     contract, likewise a pure ratio;
#   * sweep/context/scenario_uncontexted must beat
#     sweep/context/scenario_contexted by ≥ BENCH_GATE_MIN_SWEEP_SPEEDUP
#     — the hoisted-SweepContext contract (trace simulation, job traces
#     and catalogs built once per sweep, not once per row), a pure
#     ratio as well.
#
# Usage:
#   ci/bench_gate.sh            run the gate
#   ci/bench_gate.sh --update   rewrite ci/bench_baseline.json from this
#                               machine's run (commit the result)
#
# Knobs (env): BENCH_GATE_MAX_RATIO (default 1.30 = ±30%),
# BENCH_GATE_MIN_ARGMIN_SPEEDUP (default 10),
# BENCH_GATE_MIN_CACHE_SPEEDUP (default 5),
# BENCH_GATE_MIN_SWEEP_SPEEDUP (default 2), BENCH_GATE_OUT_DIR
# (default ci/out), BENCH_GATE_BASELINE (default ci/bench_baseline.json).
#
# Wall-clock baselines move with the host; refresh with --update when the
# CI runner class changes, and widen BENCH_GATE_MAX_RATIO rather than
# deleting the gate if a shared runner proves noisy.
set -euo pipefail
cd "$(dirname "$0")/.."

MAX_RATIO="${BENCH_GATE_MAX_RATIO:-1.30}"
MIN_SPEEDUP="${BENCH_GATE_MIN_ARGMIN_SPEEDUP:-10}"
MIN_CACHE_SPEEDUP="${BENCH_GATE_MIN_CACHE_SPEEDUP:-5}"
MIN_SWEEP_SPEEDUP="${BENCH_GATE_MIN_SWEEP_SPEEDUP:-2}"
OUT_DIR="${BENCH_GATE_OUT_DIR:-ci/out}"
BASELINE="${BENCH_GATE_BASELINE:-ci/bench_baseline.json}"
SUITES=(bench_window_index bench_sweep bench_serve bench_trace)
mkdir -p "$OUT_DIR"

# --- run one suite and emit its JSON ---------------------------------------
run_suite() { # $1 = bench target name (bench_foo -> BENCH_foo.json)
    local target="$1"
    local json="$OUT_DIR/BENCH_${target#bench_}.json"
    local raw="$OUT_DIR/${target}.out"
    echo "== running $target"
    cargo bench --bench "$target" 2>/dev/null | tee "$raw"
    awk '
        index($0, "/iter (median") {
            id = $1; value = $2; unit = $3
            ns = value
            if (unit == "\302\265s")  ns = value * 1e3
            else if (unit == "ms")    ns = value * 1e6
            else if (unit == "s")     ns = value * 1e9
            printf "    \"%s\": %.1f,\n", id, ns
        }
    ' "$raw" >"$raw.entries"
    {
        echo "{"
        echo "  \"suite\": \"$target\","
        echo "  \"unit\": \"ns_per_iter_median\","
        echo "  \"benchmarks\": {"
        sed '$ s/,$//' "$raw.entries"
        echo "  }"
        echo "}"
    } >"$json"
    rm -f "$raw.entries"
    echo "wrote $json"
}

# Print "name value" pairs from one of our flat JSON files.
extract() {
    awk -F'"' '/": [0-9]/ { v = $3; sub(/^: /, "", v); sub(/,.*$/, "", v); print $2, v }' "$1"
}

for suite in "${SUITES[@]}"; do
    run_suite "$suite"
done

# --- --update: rewrite the baseline from this run --------------------------
if [[ "${1:-}" == "--update" ]]; then
    {
        echo "{"
        echo "  \"schema\": \"hpcarbon-bench-baseline-v1\","
        echo "  \"unit\": \"ns_per_iter_median\","
        echo "  \"benchmarks\": {"
        # Parallel-streaming timing scales with the host's core count,
        # so it stays out of the committed baseline.
        for suite in "${SUITES[@]}"; do
            extract "$OUT_DIR/BENCH_${suite#bench_}.json"
        done | grep -v "streaming/parallel" | awk '{ printf "    \"%s\": %s,\n", $1, $2 }' | sed '$ s/,$//'
        echo "  }"
        echo "}"
    } >"$BASELINE"
    echo "rewrote $BASELINE — review and commit it"
    exit 0
fi

# --- gate 1: the indexed-argmin speedup contract ---------------------------
fail=0
naive=$(extract "$OUT_DIR/BENCH_window_index.json" | awk '$1 == "window_index/argmin_naive" { print $2 }')
indexed=$(extract "$OUT_DIR/BENCH_window_index.json" | awk '$1 == "window_index/argmin_indexed" { print $2 }')
if [[ -z "$naive" || -z "$indexed" ]]; then
    echo "FAIL: argmin benchmarks missing from BENCH_window_index.json"
    fail=1
else
    speedup=$(awk -v n="$naive" -v i="$indexed" 'BEGIN { printf "%.1f", n / i }')
    if awk -v s="$speedup" -v m="$MIN_SPEEDUP" 'BEGIN { exit !(s < m) }'; then
        echo "FAIL: indexed argmin speedup ${speedup}x < required ${MIN_SPEEDUP}x"
        fail=1
    else
        echo "OK: indexed argmin beats the naive scan by ${speedup}x (>= ${MIN_SPEEDUP}x)"
    fi
fi

# --- gate 1b: the canonical-cache speedup contract -------------------------
uncached=$(extract "$OUT_DIR/BENCH_serve.json" | awk '$1 == "serve/estimate_uncached" { print $2 }')
cached=$(extract "$OUT_DIR/BENCH_serve.json" | awk '$1 == "serve/estimate_cached_hit" { print $2 }')
if [[ -z "$uncached" || -z "$cached" ]]; then
    echo "FAIL: serve cached/uncached benchmarks missing from BENCH_serve.json"
    fail=1
else
    cache_speedup=$(awk -v u="$uncached" -v c="$cached" 'BEGIN { printf "%.1f", u / c }')
    if awk -v s="$cache_speedup" -v m="$MIN_CACHE_SPEEDUP" 'BEGIN { exit !(s < m) }'; then
        echo "FAIL: cache-hit speedup ${cache_speedup}x < required ${MIN_CACHE_SPEEDUP}x"
        fail=1
    else
        echo "OK: cached estimates beat uncached by ${cache_speedup}x (>= ${MIN_CACHE_SPEEDUP}x)"
    fi
fi

# --- gate 1c: the hoisted-SweepContext speedup contract --------------------
uncontexted=$(extract "$OUT_DIR/BENCH_sweep.json" | awk '$1 == "sweep/context/scenario_uncontexted" { print $2 }')
contexted=$(extract "$OUT_DIR/BENCH_sweep.json" | awk '$1 == "sweep/context/scenario_contexted" { print $2 }')
if [[ -z "$uncontexted" || -z "$contexted" ]]; then
    echo "FAIL: sweep context benchmarks missing from BENCH_sweep.json"
    fail=1
else
    sweep_speedup=$(awk -v u="$uncontexted" -v c="$contexted" 'BEGIN { printf "%.1f", u / c }')
    if awk -v s="$sweep_speedup" -v m="$MIN_SWEEP_SPEEDUP" 'BEGIN { exit !(s < m) }'; then
        echo "FAIL: hoisted-context speedup ${sweep_speedup}x < required ${MIN_SWEEP_SPEEDUP}x"
        fail=1
    else
        echo "OK: contexted scenarios beat uncontexted by ${sweep_speedup}x (>= ${MIN_SWEEP_SPEEDUP}x)"
    fi
fi

# --- gate 2: ±30% against the committed baseline ---------------------------
if [[ ! -f "$BASELINE" ]]; then
    echo "FAIL: no baseline at $BASELINE (run ci/bench_gate.sh --update and commit it)"
    exit 1
fi
while read -r name base; do
    cur=""
    for suite in "${SUITES[@]}"; do
        v=$(extract "$OUT_DIR/BENCH_${suite#bench_}.json" | awk -v n="$name" '$1 == n { print $2 }')
        [[ -n "$v" ]] && cur="$v"
    done
    if [[ -z "$cur" ]]; then
        echo "FAIL: baseline benchmark '$name' missing from the current run"
        fail=1
        continue
    fi
    ratio=$(awk -v c="$cur" -v b="$base" 'BEGIN { printf "%.2f", c / b }')
    if awk -v c="$cur" -v b="$base" -v t="$MAX_RATIO" 'BEGIN { exit !(c > b * t) }'; then
        echo "FAIL: $name regressed ${ratio}x vs baseline (${cur} ns vs ${base} ns, limit ${MAX_RATIO}x)"
        fail=1
    elif awk -v c="$cur" -v b="$base" -v t="$MAX_RATIO" 'BEGIN { exit !(c * t < b) }'; then
        echo "note: $name sped up to ${ratio}x of baseline — consider ci/bench_gate.sh --update"
    else
        echo "ok: $name ${ratio}x of baseline (${cur} ns vs ${base} ns)"
    fi
done < <(extract "$BASELINE")

if [[ "$fail" -ne 0 ]]; then
    echo "bench gate: FAILED"
    exit 1
fi
echo "bench gate: green"
