#!/usr/bin/env bash
# Docs link check.
#
# Scans README.md, DESIGN.md, ROADMAP.md, and everything under docs/
# for relative Markdown links and fails when one points at a file that
# does not exist in the checkout. External links (http/https/mailto)
# and pure anchors (#section) are skipped — this gate is about
# repo-internal references rotting as files move.
#
# Usage: ci/check_docs_links.sh   (from the repository root)
set -euo pipefail

fail=0
checked=0

check_file() {
    local doc="$1"
    local dir target
    dir=$(dirname "$doc")
    while IFS= read -r target; do
        case "$target" in
            http://*|https://*|mailto:*|"") continue ;;
        esac
        checked=$((checked + 1))
        # Resolve like a renderer: relative to the document, with a
        # repo-root fallback for docs that link from subdirectories.
        if [ ! -e "$dir/$target" ] && [ ! -e "$target" ]; then
            echo "$doc: broken relative link -> $target"
            fail=1
        fi
    done < <(grep -oE '\]\([^)]+\)' "$doc" 2>/dev/null \
        | sed -E 's/^\]\(//; s/\)$//; s/#.*$//' || true)
}

docs=(README.md DESIGN.md ROADMAP.md)
while IFS= read -r f; do
    docs+=("$f")
done < <(find docs -name '*.md' 2>/dev/null | sort)

for doc in "${docs[@]}"; do
    [ -f "$doc" ] || continue
    check_file "$doc"
done

if [ "$fail" -ne 0 ]; then
    echo "docs link check failed"
    exit 1
fi
echo "docs link check passed (${#docs[@]} documents, $checked relative links)"
