//! Offline stand-in for the subset of the
//! [`parking_lot`](https://docs.rs/parking_lot/0.12) API this workspace
//! uses: a [`Mutex`] whose `lock()` returns the guard directly (no
//! `Result`, no poisoning).
//!
//! Backed by `std::sync::Mutex`; a poisoned lock is recovered rather than
//! propagated, matching `parking_lot`'s no-poisoning semantics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::PoisonError;

/// A mutual-exclusion primitive with `parking_lot`-style (non-poisoning)
/// locking.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    ///
    /// Unlike `std::sync::Mutex`, returns the guard directly: a lock left
    /// poisoned by a panicking holder is recovered transparently.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;
    use std::sync::Arc;

    #[test]
    fn lock_returns_guard_directly() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
    }

    #[test]
    fn contended_increments_all_land() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }

    #[test]
    fn try_lock_when_held() {
        let m = Mutex::new(1);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
