//! Offline stand-in for the subset of the
//! [`crossbeam`](https://docs.rs/crossbeam/0.8) API this workspace uses:
//! [`thread::scope`] with crossbeam's `Result`-returning signature and
//! spawn closures that receive the scope handle.
//!
//! Backed by `std::thread::scope` (stable since Rust 1.63). One semantic
//! difference: when a spawned thread panics, std's scope re-raises the
//! panic at scope exit instead of returning `Err`, so the `Ok` returned
//! here means "no worker panicked" exactly as with crossbeam.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Scoped-thread API mirroring `crossbeam::thread`.
pub mod thread {
    use std::any::Any;

    /// Handle passed to [`scope`] closures; spawns threads bound to the
    /// scope's lifetime.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope handle so
        /// workers can spawn further scoped threads, as in crossbeam.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Creates a scope for spawning borrowing threads; all threads are
    /// joined before `scope` returns.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn scope_joins_all_threads() {
        let counter = AtomicU64::new(0);
        let data: Vec<u64> = (0..100).collect();
        super::thread::scope(|s| {
            for chunk in data.chunks(10) {
                let counter = &counter;
                s.spawn(move |_| {
                    counter.fetch_add(chunk.iter().sum::<u64>(), Ordering::Relaxed);
                });
            }
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), (0..100).sum::<u64>());
    }

    #[test]
    fn scope_returns_closure_value() {
        let r = super::thread::scope(|s| {
            let h = s.spawn(|_| 21);
            h.join().unwrap() * 2
        })
        .unwrap();
        assert_eq!(r, 42);
    }

    #[test]
    fn nested_spawn_through_handle() {
        let r = super::thread::scope(|s| {
            s.spawn(|inner| inner.spawn(|_| 7).join().unwrap())
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(r, 7);
    }
}
