//! Offline stand-in for the subset of the
//! [`proptest`](https://docs.rs/proptest/1) API this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a miniature property-testing harness with the same surface the
//! test suites are written against:
//!
//! - the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! - [`strategy::Strategy`] with range/tuple/[`strategy::Just`] instances,
//!   `prop_map`, [`prop_oneof!`] unions and [`collection::vec()`],
//! - `prop_assert!`-family macros and [`prop_assume!`],
//! - a deterministic [`test_runner::TestRunner`].
//!
//! Deliberate simplifications versus upstream: inputs are sampled uniformly
//! (no bias toward edge cases) and failing cases are **not shrunk** — the
//! failure message reports the case index and seed instead, which is enough
//! to reproduce because the runner is fully deterministic. Case count
//! defaults to 64 and can be overridden with `PROPTEST_CASES`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod strategy;
pub mod test_runner;

/// Value-generation strategies for collections.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy producing `Vec`s with lengths drawn from `size` and
    /// elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        assert!(!size.is_empty(), "vec size range must be non-empty");
        VecStrategy { element, size }
    }

    /// See [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.clone().sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The most common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property tests: `proptest! { #[test] fn f(x in strat) { .. } }`.
///
/// Each function body runs once per generated case; `prop_assert!`-family
/// failures abort the run with the case index and seed.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            @cfg ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($p:pat in $s:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut runner = $crate::test_runner::TestRunner::new(config);
            let outcome = runner.run(|__proptest_rng| {
                $(let $p = $crate::strategy::Strategy::sample(&($s), __proptest_rng);)+
                $body
                ::core::result::Result::Ok(())
            });
            if let ::core::result::Result::Err(message) = outcome {
                ::core::panic!("{}", message);
            }
        }
    )*};
}

/// Like `assert!`, but reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Like `assert_eq!`, but reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
}

/// Like `assert_ne!`, but reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Discards the current case (counted separately from failures) when the
/// generated inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Strategy choosing uniformly between several strategies with the same
/// value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($s)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_sample_within_bounds() {
        let mut rng = TestRng::from_seed(1);
        for _ in 0..1000 {
            let x = (1.5..9.5f64).sample(&mut rng);
            assert!((1.5..9.5).contains(&x));
            let n = (3usize..17).sample(&mut rng);
            assert!((3..17).contains(&n));
            let i = (-5i64..=5).sample(&mut rng);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn oneof_covers_all_branches() {
        let s = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut rng = TestRng::from_seed(2);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[s.sample(&mut rng) as usize] = true;
        }
        assert_eq!(seen, [false, true, true, true]);
    }

    #[test]
    fn prop_map_applies() {
        let s = (1u32..10).prop_map(|x| x * 100);
        let mut rng = TestRng::from_seed(3);
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert_eq!(v % 100, 0);
            assert!((100..1000).contains(&v));
        }
    }

    #[test]
    fn collection_vec_respects_size() {
        let s = crate::collection::vec(0.0..1.0f64, 2..5);
        let mut rng = TestRng::from_seed(4);
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    proptest! {
        #[test]
        fn macro_generates_cases(x in 0.0..1.0f64, n in 1usize..10) {
            prop_assert!((0.0..1.0).contains(&x));
            prop_assert!(n >= 1);
            prop_assert_eq!(n + 1, 1 + n);
            prop_assert_ne!(n, n + 1);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn config_and_assume(mut v in crate::collection::vec(0u32..100, 1..4)) {
            prop_assume!(!v.is_empty());
            v.sort_unstable();
            prop_assert!(v[0] <= v[v.len() - 1]);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let s = 0.0..1.0f64;
        let a: Vec<f64> = {
            let mut rng = TestRng::from_seed(9);
            (0..10).map(|_| s.sample(&mut rng)).collect()
        };
        let b: Vec<f64> = {
            let mut rng = TestRng::from_seed(9);
            (0..10).map(|_| s.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
