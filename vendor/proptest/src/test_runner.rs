//! The deterministic case runner behind [`crate::proptest!`].

use core::fmt;

/// Configuration for a [`TestRunner`].
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the property to pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    /// 64 cases, overridable with the `PROPTEST_CASES` environment variable.
    fn default() -> ProptestConfig {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        ProptestConfig { cases }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property was violated.
    Fail(String),
    /// The inputs did not meet a [`crate::prop_assume!`] precondition; the
    /// case is discarded, not failed.
    Reject(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(message.into())
    }

    /// A rejection with the given reason.
    pub fn reject(reason: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "input rejected: {m}"),
        }
    }
}

/// Result of one generated case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Deterministic random source handed to strategies.
///
/// A SplitMix64 stream: statistically solid for test-input generation and
/// trivially reproducible from its seed.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a stream from a seed.
    pub fn from_seed(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw from `[0, n)`; panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        self.next_u64() % n
    }
}

/// Runs a property against a sequence of deterministically generated cases.
#[derive(Debug)]
pub struct TestRunner {
    config: ProptestConfig,
}

impl TestRunner {
    /// Creates a runner with the given config.
    pub fn new(config: ProptestConfig) -> TestRunner {
        TestRunner { config }
    }

    /// Runs `property` until `config.cases` cases pass, an input fails, or
    /// too many inputs are rejected.
    ///
    /// The base seed comes from `PROPTEST_SEED` (default `0x5EED_CAFE`);
    /// each case forks its own stream, so any failure message's `case` and
    /// `seed` pair reproduces the exact inputs.
    pub fn run<F>(&mut self, mut property: F) -> Result<(), String>
    where
        F: FnMut(&mut TestRng) -> TestCaseResult,
    {
        let base_seed: u64 = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0x5EED_CAFE);
        let max_rejects = 16 * self.config.cases.max(16);
        let mut passed: u32 = 0;
        let mut rejected: u32 = 0;
        let mut stream: u64 = 0;
        while passed < self.config.cases {
            let mut rng =
                TestRng::from_seed(base_seed ^ (stream.wrapping_mul(0x9E37_79B9_7F4A_7C15)));
            stream += 1;
            match property(&mut rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    if rejected > max_rejects {
                        return Err(format!(
                            "too many rejected inputs ({rejected}) after {passed} passing cases"
                        ));
                    }
                }
                Err(TestCaseError::Fail(message)) => {
                    return Err(format!(
                        "property failed at case {passed} (stream {}, base seed {base_seed}): {message}",
                        stream - 1
                    ));
                }
            }
        }
        Ok(())
    }
}
