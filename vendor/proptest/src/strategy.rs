//! Value-generation strategies.
//!
//! A [`Strategy`] deterministically maps a [`TestRng`] to a value. Unlike
//! upstream proptest there is no value tree or shrinking: `sample` returns
//! the value directly.

use crate::test_runner::TestRng;
use core::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Returns a strategy producing `f` applied to this strategy's values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Erases the strategy type, for heterogeneous unions.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Box::new(self),
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Strategy that always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// A type-erased strategy; see [`Strategy::boxed`].
pub struct BoxedStrategy<T> {
    inner: Box<dyn DynStrategy<T>>,
}

impl<T> core::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        self.inner.sample_dyn(rng)
    }
}

/// Object-safe sampling, used to erase strategy types.
trait DynStrategy<T> {
    fn sample_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn sample_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.sample(rng)
    }
}

/// Uniform choice among several strategies; built by [`crate::prop_oneof!`].
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Creates a union over `options`. Panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> core::fmt::Debug for Union<T> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Union({} options)", self.options.len())
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].sample(rng)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 range strategy");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty f64 range strategy");
        // Occasionally emit the exact endpoints so `..=` ranges exercise
        // closed-boundary behavior.
        match rng.below(64) {
            0 => lo,
            1 => hi,
            _ => lo + (hi - lo) * rng.unit_f64(),
        }
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn sample(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty f32 range strategy");
        self.start + (self.end - self.start) * rng.unit_f64() as f32
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let x = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + x) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty integer range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let x = (rng.next_u64() as u128 % span) as i128;
                (lo as i128 + x) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}
