//! Offline stand-in for the subset of the
//! [`criterion`](https://docs.rs/criterion/0.5) API this workspace uses.
//!
//! Benchmarks compile and run (`cargo bench`), timing each closure over a
//! fixed number of samples and reporting the median wall-clock time per
//! iteration. There is no statistical analysis, outlier rejection, or HTML
//! report — this shim exists so the bench targets stay buildable and give
//! order-of-magnitude numbers until the real crate can be pulled in.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Measures one benchmark's iterations.
#[derive(Debug)]
pub struct Bencher {
    /// Iterations per sample, chosen during calibration.
    iters: u64,
    /// Measured duration of the last [`Bencher::iter`] call.
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it `iters` times back-to-back.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Shared measurement settings.
#[derive(Debug, Clone)]
struct Settings {
    sample_size: usize,
    target_sample_time: Duration,
}

impl Default for Settings {
    fn default() -> Settings {
        Settings {
            sample_size: 10,
            target_sample_time: Duration::from_millis(100),
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(id: &str, settings: &Settings, mut f: F) {
    // Calibrate: find an iteration count that fills the target sample time.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    loop {
        f(&mut b);
        if b.elapsed >= settings.target_sample_time || b.iters >= 1 << 20 {
            break;
        }
        let grow = if b.elapsed.is_zero() {
            16
        } else {
            (settings.target_sample_time.as_nanos() / b.elapsed.as_nanos().max(1)).clamp(2, 16)
                as u64
        };
        b.iters = b.iters.saturating_mul(grow);
    }

    let mut per_iter: Vec<f64> = (0..settings.sample_size)
        .map(|_| {
            f(&mut b);
            b.elapsed.as_nanos() as f64 / b.iters as f64
        })
        .collect();
    per_iter.sort_by(f64::total_cmp);
    let median = per_iter[per_iter.len() / 2];
    println!(
        "{id:<48} {:>14} /iter (median of {} samples)",
        format_ns(median),
        per_iter.len()
    );
}

fn format_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    settings: Settings,
}

impl Criterion {
    /// Runs `f` as a named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Criterion {
        run_benchmark(id, &self.settings, f);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            settings: self.settings.clone(),
            _parent: self,
        }
    }
}

/// A group of benchmarks sharing a name prefix and settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    settings: Settings,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.settings.sample_size = n;
        self
    }

    /// Runs `f` as a benchmark named `{group}/{id}`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_benchmark(&format!("{}/{id}", self.name), &self.settings, f);
        self
    }

    /// Ends the group. (No-op here; exists for API compatibility.)
    pub fn finish(self) {}
}

/// Defines a function running a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Defines `main` running one or more benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion {
            settings: Settings {
                sample_size: 2,
                target_sample_time: Duration::from_micros(50),
            },
        };
        let mut ran = false;
        c.bench_function("smoke", |b| {
            ran = true;
            b.iter(|| 1 + 1)
        });
        assert!(ran);
    }

    #[test]
    fn group_prefixes_and_finishes() {
        let mut c = Criterion {
            settings: Settings {
                sample_size: 2,
                target_sample_time: Duration::from_micros(50),
            },
        };
        let mut g = c.benchmark_group("g");
        g.sample_size(2);
        g.bench_function("inner", |b| b.iter(|| std::hint::black_box(3 * 3)));
        g.finish();
    }

    #[test]
    fn format_ns_scales() {
        assert!(format_ns(12.0).ends_with("ns"));
        assert!(format_ns(12_000.0).ends_with("µs"));
        assert!(format_ns(12_000_000.0).ends_with("ms"));
        assert!(format_ns(12_000_000_000.0).ends_with("s"));
    }
}
