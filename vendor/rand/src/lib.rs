//! Offline stand-in for the subset of the [`rand`](https://docs.rs/rand/0.8)
//! crate API this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal, deterministic implementation of the traits and the
//! [`rngs::StdRng`] generator it depends on. The statistical contract is the
//! same (uniform, independent streams); the exact bit streams differ from
//! upstream `rand`, which is fine because every consumer seeds explicitly
//! and only relies on *reproducibility within this workspace*.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::fmt;

/// Error type for fallible RNG operations. The vendored generators are
/// infallible, so this is never constructed, but the type must exist for
/// [`RngCore::try_fill_bytes`] signatures to match upstream.
#[derive(Debug)]
pub struct Error(());

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("RNG error")
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator: raw integer output and byte fill.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let last = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&last[..rem.len()]);
        }
    }
    /// Fallible variant of [`RngCore::fill_bytes`]; never fails here.
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be constructed from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed array type.
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with SplitMix64.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let x = splitmix64(&mut state).to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&x[..n]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64 step used for seed expansion.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types samplable uniformly by [`Rng::gen`] (stand-in for upstream's
/// `Standard` distribution bound).
pub trait Standard: Sized {
    /// Draws one uniformly-distributed value.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high-quality mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types usable as the bound of a [`Rng::gen_range`] range.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`. Panics if the range is empty.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "cannot sample from empty range");
                let span = (hi as i128 - lo as i128) as u128;
                // Modulo draw; bias is < span / 2^64, negligible for the
                // small spans used in this workspace.
                let x = rng.next_u64() as u128 % span;
                (lo as i128 + x as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "cannot sample from empty range");
        lo + (hi - lo) * f64::standard_sample(rng)
    }
}

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw of a `T` (full integer range, or `[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard_sample(self)
    }

    /// Uniform draw from a half-open range.
    fn gen_range<T: SampleUniform>(&mut self, range: core::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range.start, range.end)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::standard_sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator.
    ///
    /// Implemented as xoshiro256++ (upstream `rand` uses ChaCha12 here; the
    /// substitution is deliberate — see the crate docs).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // xoshiro state must not be all-zero.
            if s == [0, 0, 0, 0] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    0x2545_F491_4F6C_DD1D,
                ];
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::from_seed([7u8; 32]);
        let mut b = StdRng::from_seed([7u8; 32]);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let i = rng.gen_range(3usize..17);
            assert!((3..17).contains(&i));
        }
    }

    #[test]
    fn mean_is_half() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let mean = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
    }

    #[test]
    fn fill_bytes_covers_remainder() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
