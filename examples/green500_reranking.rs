//! Green500-style ranking vs carbon-aware ranking.
//!
//! ```text
//! cargo run --example green500_reranking
//! ```
//!
//! The paper (§4): "When ranking supercomputers based on their 'greenness'
//! (Green 500 ranking), we should also consider the geographical location
//! of the facility and energy-mix, and its temporal variations — which is
//! not currently practiced." This example builds that comparison: three
//! hypothetical systems with identical hardware efficiency rankings flip
//! order once regional carbon intensity (and embodied carbon) enter.

use sustainable_hpc::prelude::*;

struct Entry {
    name: &'static str,
    region: OperatorId,
    /// Green500 metric: GFLOPS per watt.
    gflops_per_watt: f64,
    /// System IT power, MW.
    power_mw: f64,
}

fn main() {
    let entries = [
        Entry {
            name: "System-A (efficient, coal grid)",
            region: OperatorId::Miso,
            gflops_per_watt: 52.0,
            power_mw: 20.0,
        },
        Entry {
            name: "System-B (average, GB grid)",
            region: OperatorId::Eso,
            gflops_per_watt: 33.0,
            power_mw: 20.0,
        },
        Entry {
            name: "System-C (modest, CA grid)",
            region: OperatorId::Ciso,
            gflops_per_watt: 27.0,
            power_mw: 20.0,
        },
    ];
    let traces = simulate_all_regions(2021, 2021);
    let mean_intensity = |op: OperatorId| {
        traces
            .iter()
            .find(|t| t.operator() == op)
            .expect("all regions simulated")
            .mean()
    };

    println!("Green500-style ranking (FLOPS/W only):");
    let mut by_eff: Vec<&Entry> = entries.iter().collect();
    by_eff.sort_by(|a, b| b.gflops_per_watt.partial_cmp(&a.gflops_per_watt).unwrap());
    for (i, e) in by_eff.iter().enumerate() {
        println!(
            "  #{} {:<34} {:.0} GFLOPS/W",
            i + 1,
            e.name,
            e.gflops_per_watt
        );
    }

    println!("\nCarbon-aware ranking (annual gCO2 per delivered GFLOP-year):");
    let mut by_carbon: Vec<(&Entry, f64)> = entries
        .iter()
        .map(|e| {
            let intensity = mean_intensity(e.region);
            // Annual operational carbon per unit of sustained compute:
            // (P * 8760h * I) / (P * eff) = 8760 * I / eff — efficiency
            // helps, but the grid's intensity multiplies everything.
            let g_per_gflop_year = 8760.0 * intensity.as_g_per_kwh() / (e.gflops_per_watt * 1e3);
            (e, g_per_gflop_year)
        })
        .collect();
    by_carbon.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
    for (i, (e, g)) in by_carbon.iter().enumerate() {
        println!(
            "  #{} {:<34} {:.2} gCO2/GFLOP-year  (grid {:.0} gCO2/kWh)",
            i + 1,
            e.name,
            g,
            mean_intensity(e.region).as_g_per_kwh()
        );
    }

    let eff_winner = by_eff[0].name;
    let carbon_winner = by_carbon[0].0.name;
    println!(
        "\nFLOPS/W winner: {eff_winner}\ncarbon winner:  {carbon_winner}\n\n\
         \"A system with higher energy efficiency does not necessarily mean it\n\
         has lower operational carbon footprint\" — the ranking flips once the\n\
         energy mix is priced in."
    );

    // Absolute annual operational carbon, for scale.
    println!("\nAnnual operational carbon at 100% load (PUE 1.2):");
    for e in &entries {
        let energy = Power::from_mw(e.power_mw) * TimeSpan::from_years(1.0);
        let carbon = operational_carbon(energy, Pue::DEFAULT, mean_intensity(e.region));
        println!("  {:<34} {:>12.0} tCO2", e.name, carbon.as_t());
    }
}
