//! The front-door API with a custom intensity provider.
//!
//! Shows the three steps every consumer takes — build a request, build an
//! estimator, read the report — and how to make one axis yours: a
//! hand-written [`IntensityProvider`] (here a flat-intensity stub with a
//! day/night step, standing in for "my datacenter's measured feed")
//! plugged into [`Estimator::builder`], compared against the default
//! dispatch-simulated grid.
//!
//! Run with `cargo run --example estimate_api`.

use std::sync::Arc;
use sustainable_hpc::api::TraceSource;
use sustainable_hpc::grid::trace::IntensityTrace;
use sustainable_hpc::prelude::*;
use sustainable_hpc::timeseries::series::HourlySeries;

/// A custom provider: a two-level grid that is dirty by day (fossil
/// peakers) and clean by night (baseload + wind), ignoring the trace
/// source and seed entirely — the provider contract only asks that the
/// result be a pure function of the arguments.
struct DayNightGrid {
    day_g_per_kwh: f64,
    night_g_per_kwh: f64,
}

impl IntensityProvider for DayNightGrid {
    fn year_trace(
        &self,
        region: OperatorId,
        _source: TraceSource,
        year: i32,
        _seed: u64,
    ) -> Arc<IntensityTrace> {
        let series = HourlySeries::from_fn(year, |stamp| {
            if (8..20).contains(&stamp.hour()) {
                self.day_g_per_kwh
            } else {
                self.night_g_per_kwh
            }
        });
        Arc::new(IntensityTrace::new(region, series))
    }
}

fn main() {
    // One request, estimated under three different grids.
    let mut request = EstimateRequest::paper_baseline(SystemId::Frontier, OperatorId::Eso);
    request.policy = Policy::TemporalShift { slack_hours: 24 };
    request.jobs = 60;

    let default_grid = Estimator::builder().build();
    let flat = Estimator::builder()
        .intensity(FlatIntensity::new(300.0))
        .build();
    let day_night = Estimator::builder()
        .intensity(DayNightGrid {
            day_g_per_kwh: 450.0,
            night_g_per_kwh: 120.0,
        })
        .build();

    println!("one request, three intensity providers (temporal shift, 24 h slack):\n");
    println!(
        "{:<22} {:>10} {:>8} {:>10} {:>9} {:>9}",
        "provider", "median", "CoV%", "sched kg", "saved kg", "saved %"
    );
    for (label, est) in [
        ("dispatch simulation", &default_grid),
        ("flat 300 g/kWh", &flat),
        ("day/night 450/120", &day_night),
    ] {
        let report = est.estimate(&request).expect("feasible request");
        println!(
            "{:<22} {:>10.1} {:>8.1} {:>10.1} {:>9.1} {:>8.1}%",
            label,
            report.grid.median_g_per_kwh,
            report.grid.cov_pct,
            report.operational.sched_kg,
            report.shift.saved_kg,
            report.shift.saved_pct,
        );
    }

    // Under the flat grid, shifting cannot save anything: every hour
    // costs the same. Under the day/night grid it saves a lot: night
    // windows are 3.75x cleaner. The provider is the whole story.
    let flat_report = flat.estimate(&request).expect("feasible");
    assert!(flat_report.shift.saved_kg.abs() < 1e-9);
    let dn_report = day_night.estimate(&request).expect("feasible");
    assert!(dn_report.shift.saved_kg > 0.0);

    // The report serializes to schema-versioned JSON — the same document
    // `hpcarbon estimate` emits.
    println!("\nday/night report as JSON:\n{}", dn_report.to_json());
}
