//! The RQ7/RQ8 upgrade advisor over real (simulated) regional grids.
//!
//! ```text
//! cargo run --example upgrade_advisor
//! ```
//!
//! For every Table 5 upgrade option and every Table 3 region, computes the
//! break-even time of the upgrade at that region's mean intensity and
//! turns it into the paper's Insight 8/9 recommendation.

use sustainable_hpc::prelude::*;
use sustainable_hpc::upgrade::savings::UsageLevel;

fn main() {
    let traces = simulate_all_regions(2021, 2021);
    let advisor = UpgradeAdvisor::with_five_year_horizon();
    let options = [
        (NodeGen::P100Node, NodeGen::V100Node),
        (NodeGen::P100Node, NodeGen::A100Node),
        (NodeGen::V100Node, NodeGen::A100Node),
    ];

    println!("Upgrade advisor: NLP workload, medium (40%) usage, 5-year horizon\n");
    for (old, new) in options {
        println!(
            "== {} -> {} (suite speedup {:.2}x, new-node embodied {}) ==",
            old.config().name,
            new.config().name,
            UpgradeScenario::paper_default(old, new, Suite::Nlp).speedup(),
            new.embodied().total(),
        );
        for trace in &traces {
            let scenario = UpgradeScenario::paper_default(old, new, Suite::Nlp);
            let intensity = trace.mean();
            let verdict = advisor.recommend(&scenario, intensity);
            let region = trace.operator().info();
            let text = match verdict {
                Recommendation::Upgrade {
                    break_even,
                    lifetime_saving,
                } => format!(
                    "UPGRADE      (pays off in {break_even}, saves {lifetime_saving} over 5y)"
                ),
                Recommendation::ExtendLifetime {
                    break_even,
                    required_lifetime,
                } => format!(
                    "EXTEND LIFE  (needs {required_lifetime} to pay off; break-even {break_even})"
                ),
                Recommendation::KeepHardware => "KEEP         (never pays off)".to_string(),
            };
            println!(
                "  {:>6} ({:>5.0} gCO2/kWh): {}",
                region.short,
                intensity.as_g_per_kwh(),
                text
            );
        }
        println!();
    }

    // The usage sensitivity of RQ8 at a fixed 200 g/kWh grid.
    println!("== Usage sensitivity (V100 -> A100, NLP, 200 gCO2/kWh) ==");
    for usage in UsageLevel::ALL {
        let scenario = UpgradeScenario {
            usage: usage.fraction(),
            ..UpgradeScenario::paper_default(NodeGen::V100Node, NodeGen::A100Node, Suite::Nlp)
        };
        let be = scenario
            .break_even(CarbonIntensity::from_g_per_kwh(200.0))
            .expect("pays off at 200");
        println!(
            "  {:<12} ({:>4.1}% busy): break-even {be}, asymptotic saving {:.1}%",
            usage.label(),
            usage.fraction().percent(),
            scenario.asymptotic_savings_percent()
        );
    }
}
