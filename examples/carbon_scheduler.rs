//! The carbon-intensity-aware scheduler the paper's §4 calls for.
//!
//! ```text
//! cargo run --example carbon_scheduler
//! ```
//!
//! Runs the same 500-job trace under five scheduling policies across two
//! geographically distributed clusters (Great Britain + California, the
//! two greenest Table 3 regions) and reports the carbon/wait trade-off,
//! plus the effect of per-user carbon budgets on queue priority.

use sustainable_hpc::prelude::*;
use sustainable_hpc::sched::CarbonBudgetLedger;

fn main() {
    let gb = Cluster::new("gb-site", simulate_year(OperatorId::Eso, 2021, 7), 96);
    let ca = Cluster::new("ca-site", simulate_year(OperatorId::Ciso, 2021, 7), 96);
    let jobs = JobTraceGenerator::default_rates().generate(500, 99);

    let policies = [
        Policy::Fifo,
        Policy::ThresholdDefer {
            threshold_g_per_kwh: 150.0,
        },
        Policy::GreenestWindow { horizon_hours: 24 },
        Policy::LowestIntensityRegion,
        Policy::RegionAndTime { horizon_hours: 24 },
    ];

    println!("500 jobs over two sites (GB + CA), 2021 hourly intensities\n");
    println!(
        "{:<28} {:>12} {:>12} {:>11} {:>10}",
        "policy", "tCO2 total", "kg/job", "mean wait", "max wait"
    );
    let mut fifo_carbon = None;
    for policy in policies {
        let outcome = Simulation::multi_region(vec![gb.clone(), ca.clone()], policy, &jobs).run();
        let total_t = outcome.total_carbon.as_t();
        if policy == Policy::Fifo {
            fifo_carbon = Some(total_t);
        }
        let vs_fifo = fifo_carbon
            .map(|f| format!("{:+.1}%", 100.0 * (total_t - f) / f))
            .unwrap_or_default();
        println!(
            "{:<28} {:>10.3} t {:>9.2} kg {:>9.1} h {:>8.1} h   {vs_fifo}",
            policy.label(),
            total_t,
            outcome.mean_carbon_g() / 1e3,
            outcome.mean_wait_hours,
            outcome.max_wait_hours,
        );
    }

    // Carbon budgets: economical users get queue priority on a congested
    // cluster ("they could be prioritized to reduce their queue wait time
    // if the carbon footprint of their jobs have been economical").
    println!("\n== Carbon budgets on a congested 24-GPU site ==");
    let small = Cluster::new("gb-small", simulate_year(OperatorId::Eso, 2021, 7), 24);
    let ledger = CarbonBudgetLedger::uniform(16, CarbonMass::from_t(1.0));
    let budgeted = Simulation::single_region(small.clone(), Policy::Fifo, &jobs)
        .with_budgets(ledger)
        .run();
    let ledger = budgeted.ledger.expect("budgets enabled");
    println!(
        "  total spent: {} across {} users",
        ledger.total_spent(),
        ledger.users()
    );
    let order = ledger.priority_order();
    println!(
        "  next-period queue priority (most economical first): users {:?} ...",
        &order[..4.min(order.len())]
    );
    println!(
        "  most economical user spent {}, heaviest spent {}",
        ledger.spent(order[0]),
        ledger.spent(*order.last().expect("non-empty"))
    );
}
