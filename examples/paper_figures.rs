//! Regenerates every table and figure of the paper into `out/paper/`.
//!
//! ```text
//! cargo run --example paper_figures [--print]
//! ```
//!
//! Writes `<id>.txt` (rendered panel) and `<id>.csv` (underlying data) for
//! Tables 1–6 and Figures 1–9. With `--print`, also dumps the panels to
//! stdout.

use std::path::Path;

fn main() {
    let print = std::env::args().any(|a| a == "--print");
    let out = Path::new("out/paper");
    let mut artifacts = sustainable_hpc::report::render_all(2021);
    artifacts.extend(sustainable_hpc::report::render_extensions(2021));
    for a in &artifacts {
        a.write_to(out).expect("writable output directory");
        println!(
            "wrote {}/{}.{{txt,csv}}  — {}",
            out.display(),
            a.id,
            a.title
        );
        if print {
            println!("\n{}\n{}", a.title, a.text);
        }
    }
    println!(
        "\n{} artifacts regenerated into {}",
        artifacts.len(),
        out.display()
    );
}
