//! Carbon-aware shifting: how much does *when and where* buy?
//!
//! ```text
//! cargo run --example carbon_shifting
//! ```
//!
//! The paper's §4 argues the biggest operational-carbon lever is moving
//! work into low-intensity hours and regions. This example quantifies it:
//! the same 400-job trace runs under the FIFO baseline and the indexed
//! shifting policies ([`Policy::TemporalShift`], [`Policy::SpatioTemporal`])
//! at several slack levels, on both the paper's simulated region-years and
//! the synthetic generator's, and reports per-policy savings against the
//! run-at-arrival baseline.

use sustainable_hpc::prelude::*;
use sustainable_hpc::report::tables::{shifting_comparison, ShiftingRow};

fn clusters(synthetic: bool, seed: u64) -> Vec<Cluster> {
    let trace = |op| {
        if synthetic {
            synthesize_year(op, 2021, seed)
        } else {
            simulate_year(op, 2021, seed)
        }
    };
    vec![
        Cluster::new("gb-site", trace(OperatorId::Eso), 96),
        Cluster::new("ca-site", trace(OperatorId::Ciso), 96),
    ]
}

fn main() {
    let jobs = JobTraceGenerator::default_rates().generate(400, 7);
    let policies = [
        Policy::Fifo,
        Policy::TemporalShift { slack_hours: 6 },
        Policy::TemporalShift { slack_hours: 24 },
        Policy::TemporalShift { slack_hours: 48 },
        Policy::SpatioTemporal { slack_hours: 24 },
    ];

    for (title, synthetic) in [
        ("paper trace set (dispatch simulation)", false),
        ("synthetic region-years (harmonic generator)", true),
    ] {
        let cs = clusters(synthetic, 7);
        println!("400 jobs over GB + CA — {title}\n");
        let mut rows = Vec::new();
        for policy in policies {
            let out = Simulation::multi_region(cs.clone(), policy, &jobs).run();
            let savings = summarize_shift_savings(&shift_savings(&out, &jobs, &cs));
            rows.push(ShiftingRow::new(
                match policy.shift_slack_hours() {
                    Some(s) => format!("{} (slack {s} h)", policy.label()),
                    None => policy.label().to_string(),
                },
                out.total_carbon.as_kg(),
                savings.saved_kg,
                savings.saved_pct,
                out.mean_wait_hours,
                out.max_wait_hours,
            ));
        }
        println!("{}", shifting_comparison(&rows));
    }

    println!("More slack, more savings — at the price of queue wait; the");
    println!("spatio-temporal policy buys the same carbon for less waiting");
    println!("by also moving jobs across regions. Sweep the full grid with:");
    println!("  hpcarbon sweep --shifting");
}
