//! Scenario sweep: the paper's design space as a declarative grid.
//!
//! ```text
//! cargo run --release --example scenario_sweep
//! ```
//!
//! Figs. 5–8 each fix all but one dimension of the design space. This
//! example streams a 504-point cartesian product — Table 2 system ×
//! storage what-if × Table 3 region × PUE model × scheduling policy ×
//! upgrade path — through the `Sweep` builder, answering questions no
//! single figure can: which combinations minimize scheduled carbon, how
//! the all-flash what-if shifts embodied totals across every system at
//! once, and where the upgrade advisor flips its verdict. No row table
//! is ever materialized: the built-in summary/top-k accumulators run
//! online, and the custom [`RowSink`] below folds the example's own
//! questions the same way.

use std::collections::{BTreeMap, BTreeSet};
use std::io;

use sustainable_hpc::prelude::*;
use sustainable_hpc::sweep::scenario::StorageVariant;
use sustainable_hpc::sweep::SweepRow;

/// Folds the example's questions row by row as the sweep streams.
#[derive(Default)]
struct Analysis {
    /// First all-flash row per system: (embodied delta %, total tCO2).
    flash: BTreeMap<&'static str, Result<(f64, f64), String>>,
    seen: BTreeSet<&'static str>,
    /// Five-year advisor verdict histogram.
    verdicts: BTreeMap<&'static str, usize>,
}

impl RowSink for Analysis {
    fn row(&mut self, row: &SweepRow) -> io::Result<()> {
        if let Ok(o) = &row.outcome {
            *self.verdicts.entry(o.verdict).or_insert(0) += 1;
        }
        if row.scenario.storage == StorageVariant::AllFlash {
            let label = row.scenario.system.label();
            if self.seen.insert(label) {
                let entry = match &row.outcome {
                    Ok(o) => Ok((
                        o.storage_delta_pct.expect("all-flash rows carry a delta"),
                        o.embodied_t,
                    )),
                    Err(e) => Err(e.to_string()),
                };
                self.flash.insert(label, entry);
            }
        }
        Ok(())
    }
}

fn main() {
    let grid = ScenarioGrid::paper_default();
    println!(
        "sweeping {} scenarios ({} systems x {} storage x {} regions x {} PUE x {} policies x {} upgrades)\n",
        grid.len(),
        grid.systems.len(),
        grid.storage.len(),
        grid.regions.len(),
        grid.pues.len(),
        grid.policies.len(),
        grid.upgrades.len(),
    );
    let mut analysis = Analysis::default();
    let report = Sweep::over(&grid)
        .config(SweepConfig::paper_default())
        .top(3)
        .sink(&mut analysis)
        .run()
        .expect("in-memory sweep cannot fail");
    println!(
        "{} ok, {} infeasible (all-flash what-ifs on HDD-free systems)\n",
        report.ok, report.errors
    );

    // Headline distributions over the whole space, folded online.
    print!("{}", report.summary_table());

    // Q1: the greenest (scheduled-carbon) corner of the space.
    println!("\nlowest scheduled carbon:");
    for row in &report.top {
        let o = row.outcome.as_ref().expect("top rows are ok");
        let s = &row.scenario;
        println!(
            "  {} / {} / {} / {} -> {:.1} kgCO2 (mean wait {:.1} h)",
            s.system.label(),
            s.region.info().short,
            s.policy.label(),
            s.upgrade.label(),
            o.sched_carbon_kg,
            o.mean_wait_hours
        );
    }

    // Q2: the all-flash embodied penalty, per system, from the stream.
    println!("\nall-flash embodied penalty (vs. baseline):");
    for (label, entry) in &analysis.flash {
        match entry {
            Ok((delta, total)) => {
                println!("  {label:<10} +{delta:.1}% embodied ({total:.0} tCO2 total)")
            }
            Err(e) => println!("  {label:<10} infeasible: {e}"),
        }
    }

    // Q3: where the five-year advisor verdict lands across regions.
    println!(
        "\nfive-year upgrade verdicts across the space: {:?}",
        analysis.verdicts
    );
}
