//! Scenario sweep: the paper's design space as a declarative grid.
//!
//! ```text
//! cargo run --release --example scenario_sweep
//! ```
//!
//! Figs. 5–8 each fix all but one dimension of the design space. This
//! example sweeps a 504-point cartesian product — Table 2 system ×
//! storage what-if × Table 3 region × PUE model × scheduling policy ×
//! upgrade path — through the deterministic parallel executor, then uses
//! the result table to answer questions no single figure can: which
//! combinations minimize scheduled carbon, how the all-flash what-if
//! shifts embodied totals across every system at once, and where the
//! upgrade advisor flips its verdict.

use sustainable_hpc::prelude::*;
use sustainable_hpc::sweep::scenario::StorageVariant;

fn main() {
    let grid = ScenarioGrid::paper_default();
    println!(
        "sweeping {} scenarios ({} systems x {} storage x {} regions x {} PUE x {} policies x {} upgrades)\n",
        grid.len(),
        grid.systems.len(),
        grid.storage.len(),
        grid.regions.len(),
        grid.pues.len(),
        grid.policies.len(),
        grid.upgrades.len(),
    );
    let results = SweepExecutor::new(SweepConfig::paper_default()).run(&grid);
    println!(
        "{} ok, {} infeasible (all-flash what-ifs on HDD-free systems)\n",
        results.ok_count(),
        results.error_count()
    );

    // Headline distributions over the whole space.
    print!("{}", results.summary_table());

    // Q1: the greenest (scheduled-carbon) corner of the space.
    println!("\nlowest scheduled carbon:");
    for row in results.rank_by_sched_carbon(3) {
        let o = row.outcome.as_ref().expect("ranked rows are ok");
        let s = &row.scenario;
        println!(
            "  {} / {} / {} / {} -> {:.1} kgCO2 (mean wait {:.1} h)",
            s.system.label(),
            s.region.info().short,
            s.policy.label(),
            s.upgrade.label(),
            o.sched_carbon_kg,
            o.mean_wait_hours
        );
    }

    // Q2: the all-flash embodied penalty, per system, from the same table.
    println!("\nall-flash embodied penalty (vs. baseline):");
    let mut seen = std::collections::BTreeSet::new();
    for row in results.rows() {
        if row.scenario.storage != StorageVariant::AllFlash {
            continue;
        }
        let label = row.scenario.system.label();
        if !seen.insert(label) {
            continue;
        }
        match &row.outcome {
            Ok(o) => println!(
                "  {:<10} +{:.1}% embodied ({:.0} tCO2 total)",
                label,
                o.storage_delta_pct.expect("all-flash rows carry a delta"),
                o.embodied_t
            ),
            Err(e) => println!("  {label:<10} infeasible: {e}"),
        }
    }

    // Q3: where the five-year advisor verdict lands across regions.
    let mut counts = std::collections::BTreeMap::new();
    for row in results.rows() {
        if let Ok(o) = &row.outcome {
            *counts.entry(o.verdict).or_insert(0usize) += 1;
        }
    }
    println!("\nfive-year upgrade verdicts across the space: {counts:?}");
}
