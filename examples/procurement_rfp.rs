//! Procurement helper: the paper's RQ1/RQ2 implication in tool form.
//!
//! ```text
//! cargo run --example procurement_rfp
//! ```
//!
//! "Carbon-conscious HPC facilities should explicitly request the embodied
//! carbon specifications for all components from the chip vendor as a part
//! of their request for proposal (RFP)" — this example evaluates every
//! catalog part the way such an RFP reviewer would: absolute embodied
//! carbon, carbon per unit of delivered performance (FP64 TFLOPS for
//! processors, bandwidth for memory/storage) and the
//! manufacturing/packaging split.

use sustainable_hpc::core::db::{all_parts, PartId};

fn main() {
    println!("RFP embodied-carbon review (all catalog parts)\n");
    println!(
        "{:<26} {:>10} {:>14} {:>16} {:>10}",
        "part", "kgCO2", "kg/TFLOPS", "kg/(GB/s)", "pack %"
    );
    let mut rows: Vec<(PartId, f64)> = all_parts()
        .into_iter()
        .map(|p| (p, p.spec().embodied().total().as_kg()))
        .collect();
    rows.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
    for (part, kg) in &rows {
        let s = part.spec();
        let per_tf = s
            .embodied_per_tflops()
            .map(|v| format!("{v:>10.2}"))
            .unwrap_or_else(|| format!("{:>10}", "-"));
        let per_bw = s
            .embodied_per_bandwidth()
            .map(|v| format!("{v:>12.2}"))
            .unwrap_or_else(|| format!("{:>12}", "-"));
        println!(
            "{:<26} {:>10.2} {:>14} {:>18} {:>9.1}%",
            s.part_name,
            kg,
            per_tf,
            per_bw,
            s.embodied().packaging_share().percent()
        );
    }

    // The RQ1 headline: ordering flips once you normalize.
    println!("\nRQ1 takeaways:");
    let mi250x = PartId::GpuMi250x.spec();
    let xeon = PartId::CpuXeonGold6240r.spec();
    println!(
        "  - Highest absolute embodied: {} ({})",
        mi250x.part_name,
        mi250x.embodied().total()
    );
    println!(
        "  - {:.2}x the lowest CPU ({})",
        mi250x.embodied().total().as_kg() / xeon.embodied().total().as_kg(),
        xeon.part_name
    );
    println!(
        "  - But per TFLOPS the SAME part is the best processor: {:.2} kg/TFLOPS",
        mi250x.embodied_per_tflops().expect("GPU")
    );
    println!(
        "  - Performance benchmarking alone is not sufficient: ask vendors\n    for embodied carbon alongside FLOPS."
    );

    // RQ2: storage looks harmless per unit but dominates per bandwidth.
    let hdd = PartId::Hdd16tb.spec();
    let dram = PartId::Dram64gb.spec();
    println!(
        "  - Per bandwidth, an HDD embodies {:.0}x the carbon of a DRAM module\n    ({:.1} vs {:.2} kg per GB/s): storage deserves first-class carbon review.",
        hdd.embodied_per_bandwidth().expect("hdd")
            / dram.embodied_per_bandwidth().expect("dram"),
        hdd.embodied_per_bandwidth().expect("hdd"),
        dram.embodied_per_bandwidth().expect("dram"),
    );
}
