//! Quickstart: the paper's Eq. 1 pipeline end to end for one GPU.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Computes the embodied carbon of an NVIDIA A100 (Eqs. 2–5), measures a
//! simulated fine-tuning run with the carbontracker-equivalent (Eq. 6 over
//! an hourly Great Britain grid trace), and reports the life-cycle total.

use sustainable_hpc::power::tracker::{CarbonTracker, EpochMeasurement};
use sustainable_hpc::prelude::*;

fn main() {
    // --- Embodied carbon (production stage) -------------------------------
    let a100 = PartId::GpuA100Pcie40.spec();
    let embodied = a100.embodied();
    println!("== Embodied carbon: {} ==", a100.part_name);
    println!("  manufacturing : {}", embodied.manufacturing);
    println!("  packaging     : {}", embodied.packaging);
    println!(
        "  total         : {}  ({} of it packaging)",
        embodied.total(),
        embodied.packaging_share()
    );
    println!(
        "  per FP64 TFLOPS: {:.2} kgCO2/TFLOPS",
        a100.embodied_per_tflops().expect("GPU has FP64 spec")
    );

    // --- Operational carbon (use stage) ------------------------------------
    // A BERT fine-tune: 20 epochs, the tracker measures the first two and
    // extrapolates (carbontracker's trick), then we account the actual run
    // against the hourly grid trace.
    let trace = simulate_year(OperatorId::Eso, 2021, 42);
    println!("\n== Operational carbon: BERT fine-tune on one A100 ==");
    println!(
        "  grid: {} (annual mean {})",
        OperatorId::Eso.info().name,
        trace.mean()
    );

    let mut tracker = CarbonTracker::new(Pue::DEFAULT);
    // Each epoch: 18 min at ~280 W facility-side IT draw = 0.084 kWh.
    for _ in 0..2 {
        tracker.record_epoch(EpochMeasurement {
            duration: TimeSpan::from_minutes(18.0),
            energy: Energy::from_kwh(0.084),
        });
    }
    let prediction = tracker.predict(20, trace.mean());
    println!(
        "  predicted after 2 epochs: {} over {}, {} at the annual mean intensity",
        prediction.energy, prediction.duration, prediction.carbon
    );

    // The actual run starts at 18:00 on June 1 (a dirty evening hour).
    let start = 24 * 151 + 18;
    let actual =
        tracker.account_against_trace(&trace, start, prediction.energy, prediction.duration);
    println!("  actual (hourly-priced, evening start): {actual}");

    // Shifting the same run to the greenest window of the next day helps:
    let best = trace.greenest_window(start, 24, prediction.duration.as_hours().ceil() as u32);
    let shifted =
        tracker.account_against_trace(&trace, best, prediction.energy, prediction.duration);
    println!(
        "  shifted {}h later into the greenest window: {} ({:+.1}%)",
        best - start,
        shifted,
        100.0 * (shifted.as_g() - actual.as_g()) / actual.as_g()
    );

    // --- Life-cycle total (Eq. 1) -------------------------------------------
    let total = total_carbon(embodied.total(), actual);
    println!("\n== Life-cycle position (Eq. 1) ==");
    println!(
        "  C_total = C_em + C_op = {} + {} = {}",
        embodied.total(),
        actual,
        total
    );
    println!(
        "  (one fine-tune adds {:.3}% on top of the embodied carbon)",
        100.0 * actual.as_g() / embodied.total().as_g()
    );
}
