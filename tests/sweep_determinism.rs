//! Workspace-level guarantees of the sweep engine: byte-identical output
//! for any thread count, soft failure of infeasible grid points, and the
//! default grid's ≥500-scenario coverage.

use sustainable_hpc::prelude::*;
use sustainable_hpc::sweep::scenario::StorageVariant;

/// A grid that keeps every layer in play (storage what-ifs included, so it
/// contains infeasible points) while staying test-sized: 2 x 2 x 2 x 1 x
/// 2 x 1 x 2 = 32 scenarios.
fn mixed_grid() -> ScenarioGrid {
    let full = ScenarioGrid::paper_default();
    full.clone()
        .systems([
            sustainable_hpc::sweep::scenario::SystemId::Frontier,
            sustainable_hpc::sweep::scenario::SystemId::Perlmutter,
        ])
        .storage(StorageVariant::ALL)
        .regions([OperatorId::Eso, OperatorId::Ciso])
        .pues([full.pues[1]])
        .policies([full.policies[0], full.policies[1]])
        .upgrades([full.upgrades[0]])
        .seeds([2021, 7])
}

#[test]
fn csv_and_json_are_thread_count_invariant() {
    let grid = mixed_grid();
    let cfg = SweepConfig::fast();
    let reference = SweepExecutor::new(cfg).with_threads(1).run(&grid);
    for threads in [2, 5, 16] {
        let run = SweepExecutor::new(cfg).with_threads(threads).run(&grid);
        assert_eq!(reference.to_csv(), run.to_csv(), "{threads} threads");
        assert_eq!(reference.to_json(), run.to_json(), "{threads} threads");
    }
}

#[test]
fn infeasible_points_fail_soft_and_are_labeled() {
    let results = SweepExecutor::new(SweepConfig::fast()).run(&mixed_grid());
    // Perlmutter is all-flash already: its all-flash what-if rows error.
    assert!(results.error_count() > 0);
    assert_eq!(results.len(), mixed_grid().len());
    let csv = results.to_csv();
    assert!(csv.contains("error,"));
    assert!(csv.contains("holds no"));
    // Errors never leak into the ok rows' metric columns.
    let error_rows = csv
        .lines()
        .skip(1) // header also names an "error" column
        .filter(|l| l.contains(",error,"))
        .count();
    assert_eq!(
        error_rows,
        results.error_count(),
        "one error status cell per failed row"
    );
}

#[test]
fn default_grid_covers_at_least_500_scenarios() {
    let grid = ScenarioGrid::paper_default();
    assert!(grid.len() >= 500, "{}", grid.len());
    // And it expands without duplicate ids.
    let scenarios = grid.scenarios();
    assert_eq!(scenarios.len(), grid.len());
    assert_eq!(scenarios.last().unwrap().id, grid.len() - 1);
}

#[test]
fn rerunning_a_sweep_is_reproducible() {
    let grid = mixed_grid();
    let cfg = SweepConfig::fast();
    let a = SweepExecutor::new(cfg).run(&grid);
    let b = SweepExecutor::new(cfg).run(&grid);
    assert_eq!(a.to_csv(), b.to_csv());
}

#[test]
fn shifting_axes_are_thread_count_invariant() {
    // The carbon-shifting grid exercises every new axis at once:
    // TemporalShift at several slacks, SpatioTemporal, and synthetic as
    // well as paper traces. Output must stay byte-identical for any
    // worker count, like every other sweep.
    let grid = ScenarioGrid::shifting();
    let cfg = SweepConfig::fast();
    let reference = SweepExecutor::new(cfg).with_threads(1).run(&grid);
    for threads in [2, 4, 8] {
        let run = SweepExecutor::new(cfg).with_threads(threads).run(&grid);
        assert_eq!(reference.to_csv(), run.to_csv(), "{threads} threads");
        assert_eq!(reference.to_json(), run.to_json(), "{threads} threads");
    }
    // Every scenario in the shifting grid is feasible, and the shifting
    // rows actually report savings columns.
    assert_eq!(reference.error_count(), 0);
    let csv = reference.to_csv();
    assert!(csv.contains("temporal shift"));
    assert!(csv.contains("spatio-temporal shift"));
    assert!(csv.contains("synthetic"));
    // FIFO rows save nothing; at least one shifting row saves something.
    let saved: Vec<f64> = reference
        .rows()
        .iter()
        .filter_map(|r| r.outcome.as_ref().ok())
        .map(|o| o.shift_saved_kg)
        .collect();
    assert!(saved.iter().any(|s| *s > 0.0), "{saved:?}");
}

#[test]
fn facade_prelude_exposes_the_sweep_types() {
    // ScenarioGrid, SweepConfig, SweepExecutor all arrive via the prelude.
    let results = SweepExecutor::new(SweepConfig::fast())
        .with_threads(1)
        .run(&ScenarioGrid::quick());
    assert_eq!(results.len(), 16);
    assert_eq!(results.error_count(), 0);
}
