//! Workspace-level guarantees of the streaming sweep engine:
//! byte-identical output for any thread count AND any shard split, soft
//! failure of infeasible grid points, shard manifest round-trips through
//! `--merge`, and the default grid's ≥500-scenario coverage.

use sustainable_hpc::prelude::*;
use sustainable_hpc::sweep::scenario::StorageVariant;
use sustainable_hpc::sweep::{
    grid_fingerprint, merge_sweep_outputs, OutputDigest, ShardManifest, ShardSpec,
};

/// A grid that keeps every layer in play (storage what-ifs included, so it
/// contains infeasible points) while staying test-sized: 2 x 2 x 2 x 1 x
/// 2 x 1 x 2 = 32 scenarios.
fn mixed_grid() -> ScenarioGrid {
    let full = ScenarioGrid::paper_default();
    full.clone()
        .systems([
            sustainable_hpc::sweep::scenario::SystemId::Frontier,
            sustainable_hpc::sweep::scenario::SystemId::Perlmutter,
        ])
        .storage(StorageVariant::ALL)
        .regions([OperatorId::Eso, OperatorId::Ciso])
        .pues([full.pues[1]])
        .policies([full.policies[0], full.policies[1]])
        .upgrades([full.upgrades[0]])
        .seeds([2021, 7])
}

/// Streams `grid` at `threads`, returning the report and full documents.
fn run_full(grid: &ScenarioGrid, threads: usize) -> (SweepReport, Vec<u8>, Vec<u8>) {
    let mut csv = CsvSink::new(Vec::new());
    let mut json = JsonSink::new(Vec::new());
    let report = Sweep::over(grid)
        .config(SweepConfig::fast())
        .threads(threads)
        .sink(&mut csv)
        .sink(&mut json)
        .run()
        .expect("in-memory sweep cannot fail");
    (report, csv.into_inner(), json.into_inner())
}

#[test]
fn csv_and_json_are_thread_count_invariant() {
    let grid = mixed_grid();
    let (_, ref_csv, ref_json) = run_full(&grid, 1);
    for threads in [2, 5, 16] {
        let (_, csv, json) = run_full(&grid, threads);
        assert_eq!(ref_csv, csv, "{threads} threads");
        assert_eq!(ref_json, json, "{threads} threads");
    }
}

#[test]
fn sharded_runs_merge_to_the_unsharded_bytes() {
    // The full end-to-end `--shard`/`--merge` loop at workspace level:
    // three shard runs write fragments + manifests to disk, the merge
    // validates the partition and must reassemble the exact unsharded
    // documents.
    let grid = mixed_grid();
    let cfg = SweepConfig::fast();
    let (_, ref_csv, ref_json) = run_full(&grid, 2);
    let base = std::env::temp_dir().join(format!("hpcarbon-shard-test-{}", std::process::id()));
    let count = 3;
    let mut dirs = Vec::new();
    for index in 0..count {
        let spec = ShardSpec { index, count };
        let dir = base.join(format!("s{index}"));
        std::fs::create_dir_all(&dir).unwrap();
        let mut csv = CsvSink::fragment(Vec::new());
        let mut json = JsonSink::fragment(Vec::new(), spec.range(grid.len()).start > 0);
        let report = Sweep::over(&grid)
            .config(cfg)
            .threads(2)
            .shard(index, count)
            .sink(&mut csv)
            .sink(&mut json)
            .run()
            .unwrap();
        std::fs::write(dir.join("sweep.csv"), csv.into_inner()).unwrap();
        std::fs::write(dir.join("sweep.json"), json.into_inner()).unwrap();
        let manifest = ShardManifest {
            fingerprint: grid_fingerprint(&grid, &cfg),
            shard: spec,
            rows: report.rows.clone(),
            ok: report.ok,
            errors: report.errors,
            outputs: report
                .digests
                .iter()
                .zip(["sweep.csv", "sweep.json"])
                .map(|(d, name)| OutputDigest {
                    path: name.to_string(),
                    bytes: d.bytes,
                    fnv64: d.fnv64,
                })
                .collect(),
        };
        manifest.write(&dir).unwrap();
        dirs.push(dir);
    }
    let merged_dir = base.join("merged");
    let (rows, digests) = merge_sweep_outputs(&dirs, &merged_dir).unwrap();
    assert_eq!(rows, grid.len());
    assert_eq!(digests.len(), 2);
    assert_eq!(
        std::fs::read(merged_dir.join("sweep.csv")).unwrap(),
        ref_csv
    );
    assert_eq!(
        std::fs::read(merged_dir.join("sweep.json")).unwrap(),
        ref_json
    );
    // A corrupted fragment must fail verification, not merge silently.
    std::fs::write(dirs[1].join("sweep.csv"), b"tampered").unwrap();
    assert!(merge_sweep_outputs(&dirs, &merged_dir).is_err());
    std::fs::remove_dir_all(&base).unwrap();
}

#[test]
fn infeasible_points_fail_soft_and_are_labeled() {
    let grid = mixed_grid();
    let (report, csv, _) = run_full(&grid, 4);
    // Perlmutter is all-flash already: its all-flash what-if rows error.
    assert!(report.errors > 0);
    assert_eq!(report.len(), grid.len());
    let csv = String::from_utf8(csv).unwrap();
    assert!(csv.contains("error,"));
    assert!(csv.contains("holds no"));
    // Errors never leak into the ok rows' metric columns.
    let error_rows = csv
        .lines()
        .skip(1) // header also names an "error" column
        .filter(|l| l.contains(",error,"))
        .count();
    assert_eq!(
        error_rows, report.errors,
        "one error status cell per failed row"
    );
}

#[test]
fn default_grid_covers_at_least_500_scenarios() {
    let grid = ScenarioGrid::paper_default();
    assert!(grid.len() >= 500, "{}", grid.len());
    // And it expands without duplicate ids.
    let scenarios = grid.scenarios();
    assert_eq!(scenarios.len(), grid.len());
    assert_eq!(scenarios.last().unwrap().id, grid.len() - 1);
}

#[test]
fn rerunning_a_sweep_is_reproducible() {
    let grid = mixed_grid();
    let (_, a_csv, _) = run_full(&grid, 4);
    let (_, b_csv, _) = run_full(&grid, 4);
    assert_eq!(a_csv, b_csv);
}

#[test]
fn shifting_axes_are_thread_count_invariant() {
    // The carbon-shifting grid exercises every new axis at once:
    // TemporalShift at several slacks, SpatioTemporal, and synthetic as
    // well as paper traces. Output must stay byte-identical for any
    // worker count, like every other sweep.
    let grid = ScenarioGrid::shifting();
    let (report, ref_csv, ref_json) = run_full(&grid, 1);
    for threads in [2, 4, 8] {
        let (_, csv, json) = run_full(&grid, threads);
        assert_eq!(ref_csv, csv, "{threads} threads");
        assert_eq!(ref_json, json, "{threads} threads");
    }
    // Every scenario in the shifting grid is feasible, and the shifting
    // rows actually report savings columns.
    assert_eq!(report.errors, 0);
    let csv = String::from_utf8(ref_csv).unwrap();
    assert!(csv.contains("temporal shift"));
    assert!(csv.contains("spatio-temporal shift"));
    assert!(csv.contains("synthetic"));
    // FIFO rows save nothing; at least one shifting row saves something.
    let mut collect = CollectSink::new();
    Sweep::over(&grid)
        .config(SweepConfig::fast())
        .sink(&mut collect)
        .run()
        .unwrap();
    let saved: Vec<f64> = collect
        .rows()
        .iter()
        .filter_map(|r| r.outcome.as_ref().ok())
        .map(|o| o.shift_saved_kg)
        .collect();
    assert!(saved.iter().any(|s| *s > 0.0), "{saved:?}");
}

#[test]
fn facade_prelude_exposes_the_sweep_types() {
    // ScenarioGrid, SweepConfig, Sweep, and the sinks all arrive via
    // the prelude.
    let mut collect = CollectSink::new();
    let report = Sweep::over(&ScenarioGrid::quick())
        .config(SweepConfig::fast())
        .threads(1)
        .sink(&mut collect)
        .run()
        .unwrap();
    assert_eq!(report.len(), 16);
    assert_eq!(report.errors, 0);
    assert_eq!(collect.rows().len(), 16);
}

#[test]
#[allow(deprecated)]
fn deprecated_executor_matches_the_streaming_engine() {
    // The pre-streaming API still answers, with the same bytes.
    let grid = ScenarioGrid::quick();
    let results = SweepExecutor::new(SweepConfig::fast())
        .with_threads(2)
        .run(&grid);
    let (report, csv, json) = run_full(&grid, 2);
    assert_eq!(results.len(), report.len());
    assert_eq!(results.to_csv().into_bytes(), csv);
    assert_eq!(results.to_json().into_bytes(), json);
}
