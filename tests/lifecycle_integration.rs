//! Integration of telemetry, grid and core: the measurement pipeline the
//! paper runs with carbontracker on real nodes.

use std::sync::Arc;
use std::time::Duration;
use sustainable_hpc::power::sampler::{PowerSampler, VirtualSampler};
use sustainable_hpc::power::sensor::{DevicePowerModel, PowerSensor, SimulatedDevice};
use sustainable_hpc::power::tracker::{CarbonTracker, EpochMeasurement};
use sustainable_hpc::prelude::*;

/// A full measurement pipeline: simulated NVML sensors -> sampler ->
/// epoch energy -> prediction -> carbon at grid intensity.
#[test]
fn sampler_to_tracker_pipeline() {
    // Four V100-class devices running flat out.
    let devices: Vec<Arc<SimulatedDevice>> = (0..4)
        .map(|i| {
            let d = SimulatedDevice::new(
                format!("gpu{i}"),
                DevicePowerModel::new(Power::from_w(40.0), Power::from_w(300.0)),
            );
            d.set_utilization(1.0);
            d
        })
        .collect();
    let sensors: Vec<Arc<dyn PowerSensor>> = devices
        .iter()
        .map(|d| Arc::clone(d) as Arc<dyn PowerSensor>)
        .collect();
    let sampler = PowerSampler::start(sensors, Duration::from_millis(2));
    std::thread::sleep(Duration::from_millis(40));
    let reports = sampler.stop();
    assert_eq!(reports.len(), 4);
    for r in &reports {
        let mean = r.mean_power.expect("many samples").as_w();
        assert!((mean - 300.0).abs() < 2.0, "{}: {mean}", r.name);
    }

    // Pretend the sampled window was one epoch of 0.5 h at that mean power.
    let mean_node_power: Power = reports
        .iter()
        .map(|r| r.mean_power.expect("many samples"))
        .fold(Power::ZERO, |a, b| a + b);
    let epoch_energy = mean_node_power * TimeSpan::from_hours(0.5);
    let mut tracker = CarbonTracker::new(Pue::DEFAULT);
    tracker.record_epoch(EpochMeasurement {
        duration: TimeSpan::from_hours(0.5),
        energy: epoch_energy,
    });

    let trace = simulate_year(OperatorId::Ciso, 2021, 3);
    let prediction = tracker.predict(10, trace.mean());
    // 10 epochs x ~0.6 kWh x PUE 1.2 x mean intensity.
    let expect_energy = epoch_energy.as_kwh() * 10.0;
    assert!((prediction.energy.as_kwh() - expect_energy).abs() < 1e-9);
    assert!(prediction.carbon.as_kg() > 0.1);

    // Actual accounting against the hourly trace lands within a factor of
    // the mean-intensity prediction (hourly prices differ from the mean).
    // Hour 4000 is a mid-June morning in California: solar can push the
    // window down to about a third of the annual mean, hence the wide band.
    let actual =
        tracker.account_against_trace(&trace, 4000, prediction.energy, prediction.duration);
    let ratio = actual.as_g() / prediction.carbon.as_g();
    assert!((0.3..=3.0).contains(&ratio), "ratio {ratio}");
}

/// The virtual sampler gives bit-exact deterministic energy for model-
/// driven (non-wall-clock) workloads.
#[test]
fn virtual_sampler_for_deterministic_pipelines() {
    let model = DevicePowerModel::new(Power::from_w(55.0), Power::from_w(250.0));
    let mut v = VirtualSampler::new();
    // One training step per minute for an hour, utilization 0.9.
    for minute in 0..=60 {
        v.record(
            TimeSpan::from_minutes(f64::from(minute)),
            model.power_at(0.9),
        );
    }
    let e = v.energy();
    let expect = model.power_at(0.9).as_w() / 1000.0; // kWh over one hour
    assert!((e.as_kwh() - expect).abs() < 1e-9);
}

/// Embodied parity: how long a device must run before operational carbon
/// equals its embodied carbon — the paper's "greener grids make embodied
/// dominant" argument, quantified end to end.
#[test]
fn embodied_parity_shifts_with_region() {
    use sustainable_hpc::core::lifecycle::LifecyclePosition;
    let a100 = PartId::GpuA100Pcie40.spec();
    let position = LifecyclePosition {
        embodied: a100.embodied().total(),
        avg_it_power: Power::from_w(250.0 * 0.4), // 40% duty at TDP
        pue: Pue::DEFAULT,
    };
    let traces = simulate_all_regions(2021, 11);
    let parity_years: Vec<(OperatorId, f64)> = traces
        .iter()
        .map(|t| {
            (
                t.operator(),
                position
                    .embodied_parity_time(t.mean())
                    .expect("positive intensity")
                    .as_years(),
            )
        })
        .collect();
    let get = |op: OperatorId| parity_years.iter().find(|(o, _)| *o == op).unwrap().1;
    // On the dirtiest grid the embodied carbon is matched several times
    // faster than on the greenest one.
    assert!(get(OperatorId::Eso) > 2.0 * get(OperatorId::Tokyo));
    // Parity spans weeks (Tokyo's ~545 gCO2/kWh grid) to months (GB).
    for (_, years) in &parity_years {
        assert!((0.02..=5.0).contains(years), "{years}");
    }
}

/// The carbontracker prediction is conservative under intensity variation:
/// pricing hour-by-hour differs from mean-intensity pricing, bounded by
/// the trace's min/max.
#[test]
fn hourly_pricing_bounded_by_trace_extremes() {
    let trace = simulate_year(OperatorId::Eso, 2021, 17);
    let tracker = CarbonTracker::new(Pue::new(1.0));
    let energy = Energy::from_kwh(100.0);
    let duration = TimeSpan::from_hours(10.0);
    for start in [0u32, 1000, 4000, 8000] {
        let carbon = tracker.account_against_trace(&trace, start, energy, duration);
        let implied = carbon.as_g() / energy.as_kwh();
        assert!(implied >= trace.series().min() - 1e-9);
        assert!(implied <= trace.series().max() + 1e-9);
    }
}
