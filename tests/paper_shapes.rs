//! End-to-end assertions of the paper's headline findings, spanning every
//! crate. Each test names the Observation/Insight it reproduces.

use sustainable_hpc::grid::analysis::{lowest_median_region, regional_summary};
use sustainable_hpc::prelude::*;
use sustainable_hpc::workloads::perf;

const SEED: u64 = 2021;

/// Observation 1 (Fig. 1): GPUs embody more carbon than CPUs in absolute
/// terms; the ordering reverses per FP64 TFLOPS.
#[test]
fn observation1_gpu_cpu_reversal() {
    let gpus = [
        PartId::GpuMi250x,
        PartId::GpuA100Pcie40,
        PartId::GpuV100Sxm2_32,
    ];
    let cpus = [
        PartId::CpuEpyc7763,
        PartId::CpuEpyc7742,
        PartId::CpuXeonGold6240r,
    ];
    for g in gpus {
        for c in cpus {
            assert!(
                g.spec().embodied().total() > c.spec().embodied().total(),
                "{g:?} vs {c:?}"
            );
            assert!(
                g.spec().embodied_per_tflops().unwrap() < c.spec().embodied_per_tflops().unwrap(),
                "{g:?} vs {c:?} per TFLOPS"
            );
        }
    }
}

/// Observation 2 (Fig. 2): memory/storage devices embody carbon comparable
/// to compute devices.
#[test]
fn observation2_memory_storage_comparable_to_compute() {
    let mem_min = [PartId::Dram64gb, PartId::Ssd3_2tb, PartId::Hdd16tb]
        .iter()
        .map(|p| p.spec().embodied().total().as_kg())
        .fold(f64::INFINITY, f64::min);
    let cpu_max = [PartId::CpuEpyc7763, PartId::CpuXeonGold6240r]
        .iter()
        .map(|p| p.spec().embodied().total().as_kg())
        .fold(0.0f64, f64::max);
    // Same order of magnitude (within ~3x), and SSD/HDD actually exceed
    // the CPUs.
    assert!(mem_min * 3.0 > cpu_max);
    assert!(PartId::Ssd3_2tb.spec().embodied().total().as_kg() > cpu_max);
}

/// Observation 3 (Fig. 3): manufacturing dominates except DRAM, where
/// packaging is > 40%.
#[test]
fn observation3_dram_packaging_dominance() {
    for p in [
        PartId::GpuA100Pcie40,
        PartId::CpuEpyc7763,
        PartId::Ssd3_2tb,
        PartId::Hdd16tb,
    ] {
        assert!(
            p.spec().embodied().manufacturing_share().value() > 0.8,
            "{p:?}"
        );
    }
    let dram = PartId::Dram64gb.spec().embodied().packaging_share();
    assert!(dram.value() > 0.40, "DRAM packaging share {dram}");
}

/// Observation 4 (Fig. 4): carbon per unit of achieved performance
/// degrades as GPUs are added.
#[test]
fn observation4_perf_per_embodied_degrades() {
    let node = NodeGen::V100Node;
    let e1 = node.embodied_with_gpus(1).total().as_kg();
    for suite in Suite::ALL {
        let ratio = |n: u32| {
            perf::suite_scaling(suite, node, n) / (node.embodied_with_gpus(n).total().as_kg() / e1)
        };
        assert!(ratio(4) < ratio(2), "{suite:?}");
        assert!(ratio(2) <= 1.1, "{suite:?}");
    }
}

/// Observation 5 (Fig. 5): composition differs by system; DRAM contributes
/// significantly everywhere; Frontier's GPUs > 7x its CPUs.
#[test]
fn observation5_system_composition() {
    for sys in HpcSystem::table2() {
        let dram = sys
            .composition_shares()
            .into_iter()
            .find(|(c, _)| *c == ComponentClass::Dram)
            .unwrap()
            .1;
        assert!(dram.value() > 0.10, "{}: DRAM {dram}", sys.name);
    }
    let f = HpcSystem::frontier();
    let shares = f.composition_shares();
    let gpu = shares
        .iter()
        .find(|(c, _)| *c == ComponentClass::Gpu)
        .unwrap()
        .1;
    let cpu = shares
        .iter()
        .find(|(c, _)| *c == ComponentClass::Cpu)
        .unwrap()
        .1;
    assert!(gpu.value() / cpu.value() > 7.0);
}

/// Insight 6 (Fig. 6): ESO lowest median (< 200); Tokyo ≈ 3× ESO; the
/// greenest regions have the highest variance.
#[test]
fn insight6_regional_intensity_structure() {
    let traces = simulate_all_regions(2021, SEED);
    let summaries = regional_summary(&traces);
    assert_eq!(lowest_median_region(&summaries), OperatorId::Eso);
    let get = |op: OperatorId| summaries.iter().find(|s| s.operator == op).unwrap();
    assert!(get(OperatorId::Eso).boxplot.median < 200.0);
    let ratio = get(OperatorId::Tokyo).boxplot.median / get(OperatorId::Eso).boxplot.median;
    assert!((2.3..=3.8).contains(&ratio), "TK/ESO {ratio}");
    assert!(get(OperatorId::Eso).cov_percent > get(OperatorId::Tokyo).cov_percent);
    assert!(get(OperatorId::Ciso).cov_percent > get(OperatorId::Kansai).cov_percent);
}

/// Insight 7 (Fig. 7): exploiting hourly variation across regions is
/// possible — and a scheduler doing so cuts carbon.
#[test]
fn insight7_cross_region_scheduling_pays() {
    let gb = Cluster::new("gb", simulate_year(OperatorId::Eso, 2021, SEED), 64);
    let ca = Cluster::new("ca", simulate_year(OperatorId::Ciso, 2021, SEED), 64);
    let jobs = JobTraceGenerator::default_rates().generate(300, 5);
    let fifo = Simulation::multi_region(vec![gb.clone(), ca.clone()], Policy::Fifo, &jobs).run();
    let aware = Simulation::multi_region(
        vec![gb, ca],
        Policy::RegionAndTime { horizon_hours: 24 },
        &jobs,
    )
    .run();
    assert!(
        aware.total_carbon.as_kg() < fifo.total_carbon.as_kg() * 0.9,
        "aware {} vs fifo {}",
        aware.total_carbon,
        fifo.total_carbon
    );
    // The trade-off the paper flags: deferral costs queue time.
    assert!(aware.mean_wait_hours > fifo.mean_wait_hours);
}

/// Insight 8 (Fig. 8): upgrades amortize fast on dirty grids, slowly on
/// green ones.
#[test]
fn insight8_amortization_depends_on_greenness() {
    let s = UpgradeScenario::paper_default(NodeGen::V100Node, NodeGen::A100Node, Suite::Nlp);
    let hi = s
        .break_even(CarbonIntensity::from_g_per_kwh(400.0))
        .unwrap();
    let lo = s.break_even(CarbonIntensity::from_g_per_kwh(20.0)).unwrap();
    assert!(hi.as_years() < 0.5);
    assert!(lo.as_years() > 5.0);
}

/// Insight 9 (Fig. 9): higher utilization favors quicker upgrades.
#[test]
fn insight9_usage_drives_the_decision() {
    use sustainable_hpc::upgrade::savings::UsageLevel;
    let i = CarbonIntensity::from_g_per_kwh(200.0);
    let mk = |u: UsageLevel| UpgradeScenario {
        usage: u.fraction(),
        ..UpgradeScenario::paper_default(NodeGen::V100Node, NodeGen::A100Node, Suite::Candle)
    };
    let hi = mk(UsageLevel::High).break_even(i).unwrap();
    let lo = mk(UsageLevel::Low).break_even(i).unwrap();
    assert!(hi < lo);
}

/// The advisor integrates both insights: same hardware, opposite verdicts
/// on opposite grids.
#[test]
fn advisor_flips_with_region() {
    let advisor = UpgradeAdvisor::with_five_year_horizon();
    let s = UpgradeScenario::paper_default(NodeGen::V100Node, NodeGen::A100Node, Suite::Nlp);
    let coal = advisor.recommend(&s, CarbonIntensity::from_g_per_kwh(500.0));
    let hydro = advisor.recommend(&s, CarbonIntensity::from_g_per_kwh(20.0));
    assert!(matches!(coal, Recommendation::Upgrade { .. }));
    assert!(matches!(hydro, Recommendation::ExtendLifetime { .. }));
}

/// Table 6's ladder: upgrades improve every suite; the biggest jump wins.
#[test]
fn table6_ladder() {
    let rows = perf::table6();
    for row in &rows {
        assert!(row.nlp > 0.0 && row.vision > 0.0 && row.candle > 0.0);
    }
    // P100 -> A100 (row 1) beats both single-generation hops on average.
    assert!(rows[1].average() > rows[0].average());
    assert!(rows[1].average() > rows[2].average());
}

/// Eq. 1 consistency across the whole stack: system total = embodied +
/// operational, and operational scales with intensity.
#[test]
fn eq1_composition_at_system_scale() {
    let sys = HpcSystem::perlmutter();
    let embodied = sys.embodied_total();
    let annual_energy = Energy::from_mwh(20_000.0); // ~2.3 MW average IT draw
    let traces = simulate_all_regions(2021, SEED);
    let ciso = traces
        .iter()
        .find(|t| t.operator() == OperatorId::Ciso)
        .unwrap();
    let op = operational_carbon(annual_energy, Pue::DEFAULT, ciso.mean());
    let total = total_carbon(embodied, op);
    assert!((total - embodied - op).as_g().abs() < 1e-6);
    // At CISO's intensity, a year of operation is the same order as the
    // build (the paper's "as energy gets greener, embodied dominates").
    let ratio = op / embodied;
    assert!((1.0..=20.0).contains(&ratio), "op/em ratio {ratio}");
}
