//! Property tests for the trace-file and forecast layers: the canonical
//! CSV emitter round-trips through the strict parser bit-for-bit, an
//! imperfect planner never beats perfect knowledge on the argmin
//! policies, and noisy-oracle forecasts depend only on the request seed
//! — never on thread scheduling.

use proptest::prelude::*;
use sustainable_hpc::api::{EstimateRequest, Estimator, ForecastModel, SystemId, TraceSource};
use sustainable_hpc::grid::synth::synthesize_year;
use sustainable_hpc::grid::tracefile::{parse_trace_csv, write_trace_csv, GapPolicy};
use sustainable_hpc::prelude::{OperatorId, Policy};
use sustainable_hpc::sweep::{CsvSink, ScenarioGrid, Sweep, SweepConfig};

fn any_operator() -> impl Strategy<Value = OperatorId> {
    prop_oneof![
        Just(OperatorId::Kansai),
        Just(OperatorId::Tokyo),
        Just(OperatorId::Eso),
        Just(OperatorId::Ciso),
        Just(OperatorId::Pjm),
        Just(OperatorId::Miso),
        Just(OperatorId::Ercot),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Emit → parse is the identity: any synthesized year survives a
    /// trip through the canonical CSV form with every hour bit-equal,
    /// and the canonical form is a fixed point of re-emission.
    #[test]
    fn trace_csv_roundtrip_is_identity(
        operator in any_operator(),
        seed in 0u64..1000,
    ) {
        let trace = synthesize_year(operator, 2021, seed);
        let csv = write_trace_csv(&trace);
        let parsed = parse_trace_csv("mem.csv", &csv, GapPolicy::Reject)
            .expect("canonical emission must parse cleanly");
        prop_assert_eq!(parsed.operator, operator);
        prop_assert_eq!(parsed.year, 2021);
        prop_assert_eq!(parsed.filled_hours, 0);
        for h in 0..8760u32 {
            prop_assert_eq!(
                parsed.trace.at_index(h).as_g_per_kwh(),
                trace.at_index(h).as_g_per_kwh()
            );
        }
        // Shortest-round-trip floats make the canonical form stable.
        prop_assert_eq!(write_trace_csv(&parsed.trace), csv);
    }

    /// On the argmin shifting policies, planning against an imperfect
    /// forecast never realizes more savings than perfect knowledge
    /// (up to the greedy argmin's queueing tolerance).
    #[test]
    fn realized_savings_never_exceed_oracle(
        seed in 0u64..500,
        slack in prop_oneof![Just(12u32), Just(24), Just(48)],
        error_pct in 5u32..60,
        spatial in prop_oneof![Just(false), Just(true)],
    ) {
        let mut r = EstimateRequest::paper_baseline(SystemId::Frontier, OperatorId::Eso);
        r.jobs = 40;
        r.seed = seed;
        r.policy = if spatial {
            Policy::SpatioTemporal { slack_hours: slack }
        } else {
            Policy::TemporalShift { slack_hours: slack }
        };
        r.forecast = Some(ForecastModel::Noisy { error_pct });
        let rep = Estimator::default().estimate(&r).unwrap();
        let oracle = rep.shift.oracle_saved_kg.expect("forecast engaged");
        let tolerance = 0.01 * oracle.abs() + 1e-6;
        prop_assert!(
            rep.shift.saved_kg <= oracle + tolerance,
            "seed {}: realized {} > oracle {}", seed, rep.shift.saved_kg, oracle
        );
    }
}

proptest! {
    // Each case runs a small sweep twice; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Noisy-oracle forecasts fork from the request seed, never thread
    /// state: for any seed the swept bytes are identical on one worker
    /// and on several.
    #[test]
    fn noisy_forecasts_are_byte_deterministic_across_threads(
        seed in 0u64..100,
        error_pct in 5u32..60,
    ) {
        let grid = ScenarioGrid::quick().seeds([seed]);
        let mut cfg = SweepConfig::fast();
        cfg.forecast = Some(ForecastModel::Noisy { error_pct });
        let run = |threads: usize| {
            let mut csv = CsvSink::new(Vec::new()).forecast_columns();
            Sweep::over(&grid)
                .config(cfg)
                .threads(threads)
                .sink(&mut csv)
                .run()
                .unwrap();
            csv.into_inner()
        };
        let single = run(1);
        prop_assert!(!single.is_empty());
        prop_assert_eq!(run(3), single);
    }
}

/// Registered trace files feed the `File` sweep dimension and inherit
/// every determinism guarantee — one fixed spot check alongside the
/// properties so the workspace test owns the end-to-end path.
#[test]
fn trace_file_sweeps_are_byte_deterministic_across_threads() {
    let grid = ScenarioGrid::quick().sources([TraceSource::File]);
    let trace = std::sync::Arc::new(synthesize_year(OperatorId::Eso, 2021, 42));
    let run = |threads: usize| {
        let mut csv = CsvSink::new(Vec::new());
        Sweep::over(&grid)
            .config(SweepConfig::fast())
            .threads(threads)
            .trace_file(OperatorId::Eso, std::sync::Arc::clone(&trace))
            .sink(&mut csv)
            .run()
            .unwrap();
        csv.into_inner()
    };
    let single = run(1);
    assert!(!single.is_empty());
    assert_eq!(run(4), single);
}
