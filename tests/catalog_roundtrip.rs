//! Catalog integration: the byte-identity guarantee through the full
//! estimator, and the golden malformed fixtures under
//! `tests/fixtures/catalogs/` asserting the exact line-numbered
//! diagnostics documented in `docs/CATALOG.md`.

use sustainable_hpc::api::batch_to_json;
use sustainable_hpc::catalog::export_builtin;
use sustainable_hpc::prelude::*;

fn fixture(name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/catalogs")
        .join(name)
}

/// Loads a malformed fixture and returns every diagnostic as a string.
fn load_errors(name: &str) -> Vec<String> {
    match Catalog::load(fixture(name)) {
        Ok(_) => panic!("fixture {name} must not validate"),
        Err(errors) => errors.0.iter().map(|e| e.to_string()).collect(),
    }
}

// The tentpole acceptance: estimates through an exported catalog are
// byte-identical to the built-in tables — same requests, same report
// JSON, byte for byte.
#[test]
fn exported_catalog_estimates_are_byte_identical_to_builtin() {
    let dir = std::env::temp_dir().join(format!("hpcarbon-roundtrip-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    export_builtin(&dir).unwrap();

    let requests: Vec<EstimateRequest> = SystemId::ALL
        .into_iter()
        .map(|sys| EstimateRequest::paper_baseline(sys, OperatorId::Eso))
        .collect();
    let builtin = Estimator::builder().build().estimate_batch(&requests);
    let catalog = Estimator::builder()
        .embodied(CatalogSource::load(&dir).unwrap())
        .build()
        .estimate_batch(&requests);
    assert_eq!(
        batch_to_json(&builtin).into_bytes(),
        batch_to_json(&catalog).into_bytes()
    );
    let _ = std::fs::remove_dir_all(&dir);
}

// Every malformed fixture fails strictly, leading with the exact
// line-numbered diagnostic the format spec documents.
#[test]
fn missing_field_fixture_reports_the_omitted_key() {
    let errors = load_errors("missing_field");
    assert_eq!(
        errors[0],
        "parts/gpu-a100-pcie-40.ent:2: missing required field \"vendor\""
    );
}

#[test]
fn bad_unit_fixture_reports_the_unparsable_number() {
    let errors = load_errors("bad_unit");
    assert_eq!(
        errors[0],
        "parts/dram-64gb.ent:9: field \"epc-g-per-gb\" must be a finite number (got \"sixty-five\")"
    );
}

#[test]
fn dangling_link_fixture_reports_the_missing_part_file() {
    let errors = load_errors("dangling_link");
    assert_eq!(
        errors[0],
        "systems/frontier.ent:8: link references part \"gpu-mi250x\" which has no entity file in this catalog"
    );
}

#[test]
fn duplicate_id_fixture_reports_both_definitions() {
    let errors = load_errors("duplicate_id");
    assert_eq!(
        errors[0],
        "regions/eso2.ent:3: duplicate id \"eso\" (first defined in regions/eso.ent)"
    );
}

// Incomplete catalogs are load-time errors, not estimate-time panics:
// every fixture also trips the estimation-grade completeness checks.
#[test]
fn fixtures_fail_completeness_too() {
    let errors = load_errors("dangling_link");
    assert!(errors.iter().any(|e| e
        == "catalog is missing part \"gpu-a100-pcie-40\" (an estimation-grade catalog defines all 13 built-in parts)"));
    assert!(errors.iter().any(|e| e
        == "catalog is missing system \"lumi\" (an estimation-grade catalog defines frontier, lumi, perlmutter)"));
}

// The CLI front end: `hpcarbon catalog validate` exits nonzero on a
// malformed fixture and prints the same leading diagnostic to stderr.
#[test]
fn cli_validate_exits_nonzero_with_the_documented_error() {
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_hpcarbon"))
        .args(["catalog", "validate", "--catalog"])
        .arg(fixture("bad_unit"))
        .output()
        .expect("hpcarbon runs");
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(
        stderr.starts_with(
            "parts/dram-64gb.ent:9: field \"epc-g-per-gb\" must be a finite number (got \"sixty-five\")"
        ),
        "stderr was: {stderr}"
    );
}

// The committed catalog/ tree at the repository root stays loadable and
// canonical: re-exporting the built-ins reproduces it byte for byte.
#[test]
fn committed_catalog_tree_is_the_canonical_export() {
    let committed = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("catalog");
    let exported = std::env::temp_dir().join(format!("hpcarbon-canon-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&exported);
    export_builtin(&exported).unwrap();
    for kind in ["parts", "nodes", "systems", "regions"] {
        let mut names: Vec<String> = std::fs::read_dir(exported.join(kind))
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .collect();
        names.sort();
        for name in names {
            let want = std::fs::read(exported.join(kind).join(&name)).unwrap();
            let got = std::fs::read(committed.join(kind).join(&name))
                .unwrap_or_else(|e| panic!("catalog/{kind}/{name}: {e}"));
            assert_eq!(got, want, "catalog/{kind}/{name} drifted from the export");
        }
    }
    let _ = std::fs::remove_dir_all(&exported);
}
