// Golden violation fixture for `wall-clock-in-deterministic-crate`.
// Linted standalone (deterministic library), never compiled.
// Expected diagnostics: lines 6 and 7.

fn elapsed_wrong() -> u64 {
    let t0 = Instant::now();
    let wall = SystemTime::now();
    let _ = (t0, wall);
    0
}
