// Golden violation fixture for `bad-suppression`.
// Linted standalone, never compiled. Expected diagnostics:
//   line 8  — missing justification (and the unwrap on 9 stays live)
//   line 12 — unknown rule name
//   line 16 — bad-suppression cannot suppress itself

fn sloppy(x: Option<u32>) -> u32 {
    // lint: allow(panic-in-library)
    x.unwrap()
}

// lint: allow(no-such-rule) -- the vocabulary check should reject this

fn decoy() {}

// lint: allow(bad-suppression) -- nice try

fn justified(x: Option<u32>) -> u32 {
    // lint: allow(panic-in-library) -- fixture shows a VALID suppression parses silently
    x.unwrap()
}
