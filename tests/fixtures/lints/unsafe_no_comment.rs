// Golden violation fixture for `unsafe-needs-safety-comment`.
// Linted standalone, so this path is outside the audited-module
// allowlist AND the block has no `// SAFETY:` comment — two
// diagnostics on line 8, plus one location diagnostic on line 13
// (commented, but still not an audited module).

fn peek(p: *const u8) -> u8 {
    unsafe { *p }
}

fn poke(p: *mut u8) {
    // SAFETY: caller guarantees `p` is valid for writes.
    unsafe {
        *p = 0;
    }
}
