// Golden violation fixture for `frozen-display-drift`.
// Linted standalone against the committed registry, never compiled.
// `ApiError`'s first frozen string is "storage what-if: {e}"; this
// impl renders something else, so the first divergence is reported
// on line 9.

impl std::fmt::Display for ApiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "storage what-if went sideways: {e}")
    }
}
