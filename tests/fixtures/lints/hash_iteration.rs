// Golden violation fixture for `hash-iteration-order`.
// Linted standalone (deterministic library), never compiled.
// Expected diagnostics: lines 5 and 8 (one per offending identifier).

use std::collections::HashMap;

fn tally(keys: &[String]) {
    let mut seen: HashSet<&str> = Default::default();
    for k in keys {
        seen.insert(k);
    }
}
