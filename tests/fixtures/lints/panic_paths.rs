// Golden violation fixture for `panic-in-library`.
// Linted standalone (library path), never compiled.
// Expected diagnostics: lines 6, 7, 9, 11, and 15 — all five forms.

fn all_five(x: Option<u32>, y: Option<u32>) -> u32 {
    let a = x.unwrap();
    let b = y.expect("present");
    if a > b {
        panic!("order");
    }
    todo!()
}

fn later() {
    unimplemented!()
}

#[cfg(test)]
mod tests {
    #[test]
    fn panics_here_are_fine() {
        None::<u32>.unwrap();
    }
}
