//! Smoke test for the `sustainable_hpc` facade: every name the crate docs
//! and README advertise through `prelude::*` must resolve and produce sane
//! values, so the facade cannot silently drift from the underlying crates.

use sustainable_hpc::prelude::*;

#[test]
fn prelude_embodied_path_resolves() {
    // PartId -> spec -> embodied breakdown -> total, per Eqs. 2-5.
    let a100 = PartId::GpuA100Pcie40.spec();
    let breakdown: EmbodiedBreakdown = a100.embodied();
    let total = breakdown.total();
    // Table 1 puts an A100 in the tens of kgCO2.
    assert!(
        (5.0..200.0).contains(&total.as_kg()),
        "A100 embodied {} kg",
        total.as_kg()
    );
    assert!(breakdown.packaging_share().value() > 0.0);
}

#[test]
fn prelude_operational_path_resolves() {
    // simulate_year -> intensity -> operational_carbon, per Eq. 6.
    let trace = simulate_year(OperatorId::Eso, 2021, 42);
    assert_eq!(trace.series().len(), 8760);
    let intensity = trace.at_index(0);
    let op = operational_carbon(Energy::from_kwh(100.0), Pue::DEFAULT, intensity);
    // 100 kWh at a positive grid intensity with PUE >= 1 is positive and
    // below 100 kWh x 2000 g/kWh (far above any simulated grid).
    assert!(op.as_g() > 0.0);
    assert!(op.as_g() < 100.0 * 2000.0);
}

#[test]
fn prelude_lifecycle_total_combines_both() {
    let embodied = PartId::GpuA100Pcie40.spec().embodied().total();
    let trace = simulate_year(OperatorId::Ciso, 2021, 7);
    let operational = operational_carbon(Energy::from_kwh(100.0), Pue::DEFAULT, trace.mean());
    let total = total_carbon(embodied, operational);
    assert!(total > embodied);
    assert!(total > operational);
    assert!((total.as_g() - embodied.as_g() - operational.as_g()).abs() < 1e-9);
}

#[test]
fn prelude_wider_surface_resolves() {
    // The remaining prelude names: systems, regions, scheduler, workloads,
    // upgrade advisor. One cheap call each, so a rename anywhere in the
    // underlying crates breaks this test instead of only downstream users.
    let frontier = HpcSystem::frontier();
    assert!(frontier.embodied_total().as_t() > 0.0);

    let traces = simulate_all_regions(2021, 1);
    assert_eq!(traces.len(), OperatorId::ALL.len());

    let suite = Suite::Nlp;
    assert!(!suite.benchmarks().is_empty());
    let _node: NodeGen = NodeGen::A100Node;
    let _gpu: GpuModel = GpuModel::A100;

    let advisor = UpgradeAdvisor::with_five_year_horizon();
    let scenario = UpgradeScenario::paper_default(NodeGen::V100Node, NodeGen::A100Node, suite);
    let _rec: Recommendation = advisor.recommend(&scenario, CarbonIntensity::from_g_per_kwh(200.0));
}
