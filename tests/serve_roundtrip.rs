//! End-to-end serving contract over a real socket.
//!
//! The load-bearing assertion: `POST /v1/estimate` answers — concurrent,
//! cached, pipelined, any mix — are **byte-identical** to the serial
//! `Estimator` path and to the committed golden report. Plus the HTTP
//! edge cases a hand-rolled server must get right: pipelined requests,
//! oversized bodies (413), malformed JSON (400 with a typed `ApiError`
//! payload), and graceful shutdown with queued work.

use std::io::{Read, Write};
use std::net::TcpStream;
use sustainable_hpc::api::{batch_to_json, EstimateRequest, Estimator};
use sustainable_hpc::server::{Server, ServerConfig};

const FIXTURE: &str = "tests/fixtures/estimate_request.json";
const GOLDEN: &str = "tests/fixtures/expected_report.json";

fn start_server(
    workers: usize,
    cache: usize,
) -> (
    String,
    sustainable_hpc::server::ShutdownHandle,
    std::thread::JoinHandle<sustainable_hpc::server::ServeSummary>,
) {
    start_sharded(1, workers, cache)
}

fn start_sharded(
    shards: usize,
    workers: usize,
    cache: usize,
) -> (
    String,
    sustainable_hpc::server::ShutdownHandle,
    std::thread::JoinHandle<sustainable_hpc::server::ServeSummary>,
) {
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            shards,
            workers,
            cache_capacity: cache,
            max_body_bytes: 64 * 1024,
            ..ServerConfig::default()
        },
    )
    .expect("bind an ephemeral port");
    let addr = server.local_addr().unwrap().to_string();
    let handle = server.shutdown_handle();
    let join = std::thread::spawn(move || server.run().unwrap());
    (addr, handle, join)
}

fn post_estimate(addr: &str, body: &str) -> (u16, String) {
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(
        format!(
            "POST /v1/estimate HTTP/1.1\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{}",
            body.len(),
            body
        )
        .as_bytes(),
    )
    .unwrap();
    let mut raw = String::new();
    s.read_to_string(&mut raw).unwrap();
    parse_response(&raw)
}

fn parse_response(raw: &str) -> (u16, String) {
    let status: u16 = raw
        .split(' ')
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("bad response: {raw:?}"));
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

#[test]
fn eight_concurrent_clients_get_the_serial_bytes() {
    let batch = std::fs::read_to_string(FIXTURE).unwrap();
    let (addr, handle, join) = start_server(4, 256);

    // The reference: the exact bytes the CLI's serial path emits for the
    // same document (also the committed golden fixture).
    let requests = EstimateRequest::batch_from_json(&batch).unwrap();
    let serial = batch_to_json(
        &Estimator::builder()
            .threads(1)
            .build()
            .estimate_batch(&requests),
    );
    assert_eq!(
        serial,
        std::fs::read_to_string(GOLDEN).unwrap(),
        "the committed golden report drifted from the estimator"
    );

    // Eight clients fire the same batch concurrently: every response must
    // carry those bytes, whether computed or recalled from cache.
    let bodies: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let addr = addr.clone();
                let batch = batch.clone();
                scope.spawn(move || post_estimate(&addr, &batch))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                let (status, body) = h.join().unwrap();
                assert_eq!(status, 200);
                body
            })
            .collect()
    });
    for body in &bodies {
        assert_eq!(body, &serial, "a concurrent response diverged");
    }

    handle.shutdown();
    let summary = join.join().unwrap();
    assert_eq!(summary.estimate_calls, 8);
    // 8 batches x 3 rows: every row went through the cache path, and the
    // steady state hit (first arrivals may race to compute).
    assert_eq!(summary.cache_hits + summary.cache_misses, 24);
    assert!(summary.cache_hits >= 12, "{summary:?}");
}

#[test]
fn four_shards_serve_the_same_bytes_as_one() {
    // Determinism-under-async: the shard count is a topology knob, never
    // a semantic one. The same batch through a 4-shard loop must produce
    // the golden bytes, hot-cached or computed.
    let batch = std::fs::read_to_string(FIXTURE).unwrap();
    let golden = std::fs::read_to_string(GOLDEN).unwrap();
    let (addr, handle, join) = start_sharded(4, 2, 256);

    let bodies: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..6)
            .map(|_| {
                let addr = addr.clone();
                let batch = batch.clone();
                scope.spawn(move || post_estimate(&addr, &batch))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                let (status, body) = h.join().unwrap();
                assert_eq!(status, 200);
                body
            })
            .collect()
    });
    for body in &bodies {
        assert_eq!(body, &golden, "a sharded response diverged");
    }

    handle.shutdown();
    let summary = join.join().unwrap();
    assert_eq!(summary.estimate_calls, 6);
    assert_eq!(summary.cache_hits + summary.cache_misses, 18);
}

#[test]
fn pipelined_requests_answer_in_order() {
    let (addr, handle, join) = start_server(2, 64);
    let one = r#"{"schema_version": 1, "system": "frontier", "region": "eso", "jobs": 20}"#;

    let mut s = TcpStream::connect(&addr).unwrap();
    // Two estimates and a metrics probe written back-to-back before
    // reading a single byte — the pipelining contract.
    let mut wire = String::new();
    for _ in 0..2 {
        wire.push_str(&format!(
            "POST /v1/estimate HTTP/1.1\r\ncontent-length: {}\r\n\r\n{}",
            one.len(),
            one
        ));
    }
    wire.push_str("GET /metrics HTTP/1.1\r\nconnection: close\r\n\r\n");
    s.write_all(wire.as_bytes()).unwrap();

    let mut raw = String::new();
    s.read_to_string(&mut raw).unwrap();
    let statuses: Vec<&str> = raw.matches("HTTP/1.1 200 OK").collect();
    assert_eq!(statuses.len(), 3, "three pipelined responses:\n{raw}");
    // The two estimate responses are byte-identical (second came from
    // cache) and the trailing metrics document saw both.
    let first_report = raw.find("[\n").unwrap();
    let second_report = raw[first_report + 1..].find("[\n").unwrap();
    assert!(second_report > 0);
    assert!(raw.contains("estimate_calls_total 2"), "{raw}");
    assert!(raw.contains("cache_hits_total 1"), "{raw}");
    assert!(raw.contains("cache_misses_total 1"), "{raw}");

    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn oversized_body_is_a_413_with_a_typed_payload() {
    let (addr, handle, join) = start_server(1, 0);
    let mut s = TcpStream::connect(&addr).unwrap();
    // Declared length over the 64 KiB limit; the server must answer 413
    // without waiting for (or reading) the body.
    s.write_all(b"POST /v1/estimate HTTP/1.1\r\ncontent-length: 10000000\r\n\r\n")
        .unwrap();
    let mut raw = String::new();
    s.read_to_string(&mut raw).unwrap();
    let (status, body) = parse_response(&raw);
    assert_eq!(status, 413, "{raw}");
    assert!(body.contains("\"kind\": \"http\""), "{body}");
    assert!(body.contains("exceeds the 65536-byte limit"), "{body}");
    assert!(raw.contains("connection: close"), "{raw}");
    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn bad_json_is_a_400_with_the_apierror_kind() {
    let (addr, handle, join) = start_server(1, 0);
    // Syntactically broken JSON → kind "parse".
    let (status, body) = post_estimate(&addr, "{broken");
    assert_eq!(status, 400);
    assert!(body.contains("\"error\""), "{body}");
    assert!(body.contains("\"kind\": \"parse\""), "{body}");
    assert!(body.contains("invalid JSON"), "{body}");
    // Well-formed JSON that fails the schema gate → kind "schema".
    let (status, body) = post_estimate(
        &addr,
        r#"{"schema_version": 99, "system": "frontier", "region": "eso"}"#,
    );
    assert_eq!(status, 400);
    assert!(body.contains("\"kind\": \"schema\""), "{body}");
    // Unknown fields are rejected, kind "parse", naming the field.
    let (status, body) = post_estimate(
        &addr,
        r#"{"schema_version": 1, "system": "frontier", "region": "eso", "colour": 3}"#,
    );
    assert_eq!(status, 400);
    assert!(body.contains("unknown field \\\"colour\\\""), "{body}");
    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn healthz_answers_and_shutdown_reports_the_traffic() {
    let (addr, handle, join) = start_server(2, 64);
    let mut s = TcpStream::connect(&addr).unwrap();
    s.write_all(b"GET /healthz HTTP/1.1\r\nconnection: close\r\n\r\n")
        .unwrap();
    let mut raw = String::new();
    s.read_to_string(&mut raw).unwrap();
    let (status, body) = parse_response(&raw);
    assert_eq!(status, 200);
    assert_eq!(body, "ok\n");
    handle.shutdown();
    let summary = join.join().unwrap();
    assert_eq!(summary.http_requests, 1);
    assert_eq!(summary.estimate_calls, 0);
}
