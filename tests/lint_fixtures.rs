//! Tier-1 coverage of the `hpclint` invariants from the repo root.
//!
//! The lint crate's own suite drives the binary; this file drives the
//! library the way CI's `--workspace --deny all` gate does, so a bare
//! `cargo test` at the root fails on the same violations CI would —
//! and pins that every golden fixture under `tests/fixtures/lints/`
//! still trips its rule at the committed line.

use hpcarbon_lint::{lint_paths, lint_workspace, load_registry, FileClass, RuleId};
use std::path::Path;

fn root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn workspace_is_lint_clean() {
    let registry = load_registry(root()).expect("registry loads");
    let diags = lint_workspace(root(), &registry).expect("workspace lints");
    let rendered: Vec<String> = diags.iter().map(ToString::to_string).collect();
    assert!(
        diags.is_empty(),
        "workspace has lint violations:\n{}",
        rendered.join("\n")
    );
}

#[test]
fn every_fixture_trips_its_rule_at_the_pinned_line() {
    let expected: &[(&str, RuleId, &[u32])] = &[
        (
            "wall_clock.rs",
            RuleId::WallClockInDeterministicCrate,
            &[6, 7],
        ),
        ("hash_iteration.rs", RuleId::HashIterationOrder, &[5, 8]),
        (
            "unsafe_no_comment.rs",
            RuleId::UnsafeNeedsSafetyComment,
            &[8, 8, 13],
        ),
        ("panic_paths.rs", RuleId::PanicInLibrary, &[6, 7, 9, 11, 15]),
        ("display_drift.rs", RuleId::FrozenDisplayDrift, &[9]),
    ];
    let registry = load_registry(root()).expect("registry loads");
    for (fixture, rule, lines) in expected {
        let rel = format!("tests/fixtures/lints/{fixture}");
        let diags =
            lint_paths(root(), std::slice::from_ref(&rel), &registry).expect("fixture lints");
        let hits: Vec<u32> = diags
            .iter()
            .filter(|d| d.rule == *rule)
            .map(|d| d.line as u32)
            .collect();
        assert_eq!(&hits, lines, "{fixture}: {rule:?} anchors moved");
        assert!(
            diags.iter().all(|d| d.rule == *rule),
            "{fixture}: unexpected extra rules fired: {diags:?}"
        );
    }
}

#[test]
fn bad_suppression_fixture_rejects_malformed_and_self_referential() {
    let registry = load_registry(root()).expect("registry loads");
    let rel = "tests/fixtures/lints/bad_suppression.rs".to_string();
    let diags = lint_paths(root(), &[rel], &registry).expect("fixture lints");
    let bad: Vec<u32> = diags
        .iter()
        .filter(|d| d.rule == RuleId::BadSuppression)
        .map(|d| d.line as u32)
        .collect();
    assert_eq!(bad, [8, 12, 16]);
    // The malformed suppression on line 8 must not cover the unwrap
    // on line 9; the valid one at the bottom must.
    assert!(diags
        .iter()
        .any(|d| d.rule == RuleId::PanicInLibrary && d.line == 9));
    assert_eq!(diags.len(), 4, "{diags:?}");
}

#[test]
fn fixtures_lint_as_standalone_deterministic_library_code() {
    // The classification the fixtures rely on: standalone paths get
    // every rule (deterministic + library + unsafe location checks).
    let class = FileClass::standalone("tests/fixtures/lints/wall_clock.rs");
    assert!(class.deterministic());
    assert!(!class.unsafe_allowlisted());
}
