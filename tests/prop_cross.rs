//! Cross-crate property tests: invariants that must hold for *any*
//! parameters, not just the paper's.

use proptest::prelude::*;
use sustainable_hpc::core::operational::Pue;
use sustainable_hpc::prelude::*;
use sustainable_hpc::upgrade::savings::UpgradeScenario;
use sustainable_hpc::workloads::perf;

fn any_suite() -> impl Strategy<Value = Suite> {
    prop_oneof![Just(Suite::Nlp), Just(Suite::Vision), Just(Suite::Candle)]
}

fn any_upgrade() -> impl Strategy<Value = (NodeGen, NodeGen)> {
    prop_oneof![
        Just((NodeGen::P100Node, NodeGen::V100Node)),
        Just((NodeGen::P100Node, NodeGen::A100Node)),
        Just((NodeGen::V100Node, NodeGen::A100Node)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Savings are monotone in time for every scenario and intensity.
    #[test]
    fn savings_monotone_in_time(
        (old, new) in any_upgrade(),
        suite in any_suite(),
        usage in 0.05..0.95f64,
        intensity in 5.0..800.0f64,
        t1 in 0.1..10.0f64,
        dt in 0.1..10.0f64,
    ) {
        let s = UpgradeScenario {
            usage: Fraction::new_unchecked(usage),
            pue: Pue::DEFAULT,
            ..UpgradeScenario::paper_default(old, new, suite)
        };
        let i = CarbonIntensity::from_g_per_kwh(intensity);
        let a = s.savings_percent(TimeSpan::from_years(t1), i);
        let b = s.savings_percent(TimeSpan::from_years(t1 + dt), i);
        prop_assert!(b >= a - 1e-9, "savings decreased: {a} -> {b}");
    }

    /// Break-even time scales exactly inversely with intensity.
    #[test]
    fn break_even_inverse_in_intensity(
        (old, new) in any_upgrade(),
        suite in any_suite(),
        usage in 0.05..0.95f64,
        i1 in 10.0..400.0f64,
        k in 1.1..10.0f64,
    ) {
        let s = UpgradeScenario {
            usage: Fraction::new_unchecked(usage),
            pue: Pue::DEFAULT,
            ..UpgradeScenario::paper_default(old, new, suite)
        };
        let t1 = s.break_even(CarbonIntensity::from_g_per_kwh(i1));
        let t2 = s.break_even(CarbonIntensity::from_g_per_kwh(i1 * k));
        match (t1, t2) {
            (Some(t1), Some(t2)) => {
                prop_assert!((t1.as_hours() / t2.as_hours() - k).abs() < 1e-6);
            }
            _ => prop_assert!(false, "both intensities must pay off"),
        }
    }

    /// Node throughput increases with GPU count but never superlinearly.
    #[test]
    fn scaling_bounds(
        suite in any_suite(),
        node in prop_oneof![
            Just(NodeGen::P100Node),
            Just(NodeGen::V100Node),
            Just(NodeGen::A100Node)
        ],
        n in 2u32..=4,
    ) {
        for b in suite.benchmarks() {
            let t1 = perf::node_throughput(&b, node, 1);
            let tn = perf::node_throughput(&b, node, n);
            prop_assert!(tn > t1 * 0.5, "{}: pathological slowdown", b.name);
            prop_assert!(tn < t1 * f64::from(n) + 1e-9, "{}: superlinear", b.name);
        }
    }

    /// Operational carbon over any trace window is bounded by the trace
    /// extremes times the energy.
    #[test]
    fn trace_priced_carbon_bounded(
        seed in 0u64..50,
        start in 0u32..8760,
        hours in 1.0..200.0f64,
        kw in 0.1..100.0f64,
    ) {
        let trace = simulate_year(OperatorId::Ercot, 2021, seed % 5);
        let cluster = Cluster::new("x", trace.clone(), 8);
        let carbon = cluster.carbon_for(
            f64::from(start),
            TimeSpan::from_hours(hours),
            Power::from_kw(kw),
        );
        let energy_kwh = kw * hours * cluster.pue;
        let lo = trace.series().min() * energy_kwh;
        let hi = trace.series().max() * energy_kwh;
        prop_assert!(carbon.as_g() >= lo - 1e-6);
        prop_assert!(carbon.as_g() <= hi + 1e-6);
    }

    /// System embodied totals scale linearly with inventory counts.
    #[test]
    fn inventory_linear(count in 1u64..10_000) {
        let unit = PartId::GpuMi250x.spec().embodied().total().as_g();
        let sys = HpcSystem {
            name: "synthetic",
            location: "nowhere",
            cores: 0,
            year: 2023,
            inventory: vec![(PartId::GpuMi250x.spec(), count)],
        };
        let total = sys.embodied_total().as_g();
        prop_assert!((total - unit * count as f64).abs() < total * 1e-12 + 1e-9);
    }

    /// Winner counts always partition the year, for any seed.
    #[test]
    fn winner_counts_partition(seed in 0u64..20) {
        use sustainable_hpc::grid::analysis::winner_counts;
        use sustainable_hpc::timeseries::datetime::TimeZone;
        let traces: Vec<IntensityTrace> = OperatorId::FIG7_REGIONS
            .iter()
            .map(|op| simulate_year(*op, 2021, seed))
            .collect();
        let w = winner_counts(&traces, TimeZone::JST);
        for h in 0..24 {
            prop_assert_eq!(w.days_per_hour(h), 365);
        }
    }
}
