//! The carbon-aware scheduler on realistic simulated grids: policy
//! comparisons, budget incentives, and conservation checks.

use sustainable_hpc::prelude::*;
use sustainable_hpc::sched::CarbonBudgetLedger;

fn clusters(seed: u64, capacity: u32) -> Vec<Cluster> {
    vec![
        Cluster::new("gb", simulate_year(OperatorId::Eso, 2021, seed), capacity),
        Cluster::new("ca", simulate_year(OperatorId::Ciso, 2021, seed), capacity),
        Cluster::new("tx", simulate_year(OperatorId::Ercot, 2021, seed), capacity),
    ]
}

#[test]
fn policy_ladder_on_real_traces() {
    let jobs = JobTraceGenerator::default_rates().generate(400, 42);
    let run = |policy: Policy| {
        Simulation::multi_region(clusters(2021, 128), policy, &jobs)
            .run()
            .total_carbon
            .as_kg()
    };
    let fifo = run(Policy::Fifo);
    let threshold = run(Policy::ThresholdDefer {
        threshold_g_per_kwh: 180.0,
    });
    let window = run(Policy::GreenestWindow { horizon_hours: 24 });
    let region = run(Policy::LowestIntensityRegion);
    let both = run(Policy::RegionAndTime { horizon_hours: 24 });
    // Every aware policy beats FIFO; combining region + time beats each
    // alone (the paper: distributing over regions AND exploiting temporal
    // variation).
    assert!(threshold < fifo, "threshold {threshold} fifo {fifo}");
    assert!(window < fifo);
    assert!(region < fifo);
    assert!(both <= window + 1e-9);
    assert!(both <= region + 1e-9);
}

#[test]
fn energy_is_policy_invariant_carbon_is_not() {
    // Jobs consume the same energy under any policy (same runtimes and
    // power); only WHERE/WHEN they run changes carbon.
    let jobs = JobTraceGenerator::default_rates().generate(250, 9);
    let a = Simulation::multi_region(clusters(7, 128), Policy::Fifo, &jobs).run();
    let b = Simulation::multi_region(
        clusters(7, 128),
        Policy::RegionAndTime { horizon_hours: 24 },
        &jobs,
    )
    .run();
    assert!((a.total_energy.as_kwh() - b.total_energy.as_kwh()).abs() < 1e-6);
    assert!(b.total_carbon < a.total_carbon);
}

#[test]
fn deferral_respects_job_tolerances() {
    let jobs = JobTraceGenerator::default_rates().generate(300, 13);
    let out = Simulation::multi_region(
        clusters(5, 512),
        Policy::GreenestWindow { horizon_hours: 48 },
        &jobs,
    )
    .run();
    // With abundant capacity, waits are pure policy deferral and must not
    // exceed each job's tolerance.
    for (job, outcome) in jobs.iter().zip(&out.jobs) {
        assert!(
            outcome.wait_hours <= job.max_defer_hours + 1e-6,
            "job {}: wait {} tolerance {}",
            job.id,
            outcome.wait_hours,
            job.max_defer_hours
        );
    }
}

#[test]
fn budgets_prioritize_economical_users() {
    // Two users: one submits huge 8-GPU jobs, one submits 1-GPU jobs.
    // Under contention with budgets, the light user's jobs should wait
    // less on average than the heavy user's.
    let mut jobs = Vec::new();
    for k in 0..40 {
        jobs.push(Job {
            id: jobs.len(),
            user: 0, // heavy
            arrival_hours: k as f64 * 0.5,
            runtime_hours: 6.0,
            gpus: 8,
            power_per_gpu: Power::from_w(350.0),
            max_defer_hours: 0.0,
        });
        jobs.push(Job {
            id: jobs.len(),
            user: 1, // light
            arrival_hours: k as f64 * 0.5 + 0.1,
            runtime_hours: 2.0,
            gpus: 1,
            power_per_gpu: Power::from_w(350.0),
            max_defer_hours: 0.0,
        });
    }
    let cluster = Cluster::new("gb", simulate_year(OperatorId::Eso, 2021, 3), 16);
    // Charge the heavy user's historic footprint up front.
    let mut ledger = CarbonBudgetLedger::uniform(2, CarbonMass::from_t(1.0));
    ledger.charge(0, CarbonMass::from_kg(900.0));
    let out = Simulation::single_region(cluster, Policy::Fifo, &jobs)
        .with_budgets(ledger)
        .run();
    let mean_wait = |user: usize| {
        let waits: Vec<f64> = jobs
            .iter()
            .zip(&out.jobs)
            .filter(|(j, _)| j.user == user)
            .map(|(_, o)| o.wait_hours)
            .collect();
        waits.iter().sum::<f64>() / waits.len() as f64
    };
    assert!(
        mean_wait(1) < mean_wait(0),
        "light user waits {} vs heavy {}",
        mean_wait(1),
        mean_wait(0)
    );
    // Ledger reflects all job carbon plus the pre-charge.
    let ledger = out.ledger.expect("budgets enabled");
    let charged = ledger.total_spent().as_g() - 900_000.0;
    assert!((charged - out.total_carbon.as_g()).abs() < 1.0);
}

#[test]
fn utilization_conservation() {
    // Total GPU-hours served equals the trace's demand regardless of
    // policy (no jobs lost or duplicated).
    let jobs = JobTraceGenerator::default_rates().generate(200, 21);
    let demand: f64 = jobs.iter().map(|j| j.gpu_hours()).sum();
    for policy in [Policy::Fifo, Policy::GreenestWindow { horizon_hours: 12 }] {
        let out = Simulation::multi_region(clusters(1, 256), policy, &jobs).run();
        assert_eq!(out.jobs.len(), jobs.len());
        // Energy check implies gpu-hour conservation (same per-GPU power).
        let expect_energy: f64 = jobs
            .iter()
            .map(|j| j.power().as_kw() * j.runtime_hours * 1.2)
            .sum();
        assert!(
            (out.total_energy.as_kwh() - expect_energy).abs() < 1e-6,
            "{policy:?}"
        );
        let _ = demand;
    }
}
