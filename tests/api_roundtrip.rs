//! Front-door API contract tests: batch determinism across thread
//! counts, every `ApiError` variant on its error path, and the golden
//! request → report round trip against committed fixtures.

use sustainable_hpc::api::{
    batch_from_json, batch_to_json, parse as api_parse, ApiError, EstimateRequest, Estimator,
    FootprintReport, ParseError, PueSpec, StorageVariant, SystemId, TraceSource,
};
use sustainable_hpc::prelude::{OperatorId, Policy};

const REQUEST_FIXTURE: &str = include_str!("fixtures/estimate_request.json");
const EXPECTED_REPORT: &str = include_str!("fixtures/expected_report.json");

fn quick_request(seed: u64) -> EstimateRequest {
    let mut r = EstimateRequest::paper_baseline(SystemId::Frontier, OperatorId::Eso);
    r.jobs = 40;
    r.seed = seed;
    r
}

#[test]
fn estimate_batch_is_byte_identical_across_thread_counts() {
    // A batch that exercises several axes: regions, policies, a storage
    // what-if error row, and both trace sources.
    let mut requests: Vec<EstimateRequest> =
        (0..6).map(|i| quick_request(2021 + i as u64)).collect();
    requests[1].region = OperatorId::Ciso;
    requests[2].policy = Policy::TemporalShift { slack_hours: 24 };
    requests[3].source = TraceSource::Synthetic;
    requests[4].system = SystemId::Perlmutter;
    requests[4].storage = StorageVariant::AllFlash; // error row
    requests[5].policy = Policy::SpatioTemporal { slack_hours: 24 };

    let serial = Estimator::builder()
        .threads(1)
        .build()
        .estimate_batch(&requests);
    let reference = batch_to_json(&serial);
    for threads in [2, 4, 8] {
        let parallel = Estimator::builder()
            .threads(threads)
            .build()
            .estimate_batch(&requests);
        assert_eq!(
            batch_to_json(&parallel),
            reference,
            "batch JSON must be byte-identical at {threads} threads"
        );
    }
    // The error row stayed a row (batch alignment survives errors).
    assert!(serial[4].is_err());
    assert_eq!(serial.len(), requests.len());
}

#[test]
fn golden_round_trip_matches_committed_fixtures() {
    // The committed request fixture parses…
    let requests = EstimateRequest::batch_from_json(REQUEST_FIXTURE).unwrap();
    assert_eq!(requests.len(), 3);
    // …estimates…
    let results = Estimator::builder()
        .threads(1)
        .build()
        .estimate_batch(&requests);
    assert!(results.iter().all(|r| r.is_ok()));
    // …and re-serializes to the committed expected report, byte for byte.
    assert_eq!(batch_to_json(&results), EXPECTED_REPORT);
}

#[test]
fn committed_report_parses_and_reemits_byte_identically() {
    let reports = batch_from_json(EXPECTED_REPORT).unwrap();
    assert_eq!(reports.len(), 3);
    let reparsed: Vec<Result<FootprintReport, ApiError>> = reports
        .into_iter()
        .map(|r| Ok(r.expect("fixture rows are all ok")))
        .collect();
    assert_eq!(batch_to_json(&reparsed), EXPECTED_REPORT);
}

// ---- One test per ApiError variant. ----

#[test]
fn error_path_invalid_pue() {
    let mut r = quick_request(1);
    r.pue = PueSpec::Constant(0.8);
    assert!(matches!(
        Estimator::builder().build().estimate(&r).unwrap_err(),
        ApiError::InvalidPue(_)
    ));
}

#[test]
fn error_path_whatif() {
    let mut r = quick_request(1);
    r.system = SystemId::Perlmutter; // no HDD tier to swap
    r.storage = StorageVariant::AllFlash;
    let e = Estimator::builder().build().estimate(&r).unwrap_err();
    assert!(matches!(e, ApiError::WhatIf(_)));
    assert!(e.to_string().starts_with("storage what-if: "));
}

#[test]
fn error_path_sched() {
    let mut r = quick_request(1);
    r.policy = Policy::TemporalShift { slack_hours: 9000 }; // longer than the trace
    let e = Estimator::builder().build().estimate(&r).unwrap_err();
    assert!(matches!(e, ApiError::Sched(_)));
    assert!(e.to_string().starts_with("scheduling: "));
}

#[test]
fn error_path_analysis() {
    // The analysis layer unifies under the same error type.
    let e = ApiError::from(
        sustainable_hpc::grid::analysis::try_winner_counts(
            &[],
            sustainable_hpc::timeseries::datetime::TimeZone::UTC,
        )
        .unwrap_err(),
    );
    assert!(matches!(e, ApiError::Analysis(_)));
    assert!(e.to_string().starts_with("grid analysis: "));
}

#[test]
fn error_path_schema() {
    // Via JSON: the gate fires before anything else is decoded.
    let e = EstimateRequest::from_json(
        r#"{"schema_version": 99, "system": "frontier", "region": "eso"}"#,
    )
    .unwrap_err();
    assert_eq!(
        e,
        ApiError::Schema {
            found: 99,
            supported: 1
        }
    );
    // Via a programmatically built request too.
    let mut r = quick_request(1);
    r.schema_version = 0;
    assert!(matches!(
        r.validate().unwrap_err(),
        ApiError::Schema { found: 0, .. }
    ));
}

#[test]
fn error_path_parse_every_variant() {
    // Json: syntactically broken input.
    assert!(matches!(
        EstimateRequest::from_json("{not json").unwrap_err(),
        ApiError::Parse(ParseError::Json { .. })
    ));
    // UnknownField: the strict-schema rule.
    assert!(matches!(
        EstimateRequest::from_json(
            r#"{"schema_version": 1, "system": "frontier", "region": "eso", "gpu_count": 4}"#
        )
        .unwrap_err(),
        ApiError::Parse(ParseError::UnknownField { .. })
    ));
    // MissingField: no region.
    assert!(matches!(
        EstimateRequest::from_json(r#"{"schema_version": 1, "system": "frontier"}"#).unwrap_err(),
        ApiError::Parse(ParseError::MissingField { field: "region" })
    ));
    // BadType: system must be a string.
    assert!(matches!(
        EstimateRequest::from_json(r#"{"schema_version": 1, "system": 9, "region": "eso"}"#)
            .unwrap_err(),
        ApiError::Parse(ParseError::BadType {
            field: "system",
            ..
        })
    ));
    // UnknownValue: vocabulary violation, message lists valid values.
    let e = EstimateRequest::from_json(
        r#"{"schema_version": 1, "system": "frontier", "region": "mars"}"#,
    )
    .unwrap_err();
    assert!(matches!(
        e,
        ApiError::Parse(ParseError::UnknownValue {
            field: "region",
            ..
        })
    ));
    assert!(e.to_string().contains("eso"), "{e}");
    // BadNumber: non-integer seed.
    assert!(matches!(
        EstimateRequest::from_json(
            r#"{"schema_version": 1, "system": "frontier", "region": "eso", "seed": 0.5}"#
        )
        .unwrap_err(),
        ApiError::Parse(ParseError::BadNumber { field: "seed", .. })
    ));
}

#[test]
fn error_path_invalid_request() {
    let mut r = quick_request(1);
    r.jobs = 0;
    let e = r.validate().unwrap_err();
    assert!(matches!(e, ApiError::InvalidRequest { field: "jobs", .. }));
    assert!(e.to_string().contains("jobs"), "{e}");
    let mut r = quick_request(1);
    r.cluster_gpus = 0;
    assert!(matches!(
        r.validate().unwrap_err(),
        ApiError::InvalidRequest {
            field: "cluster_gpus",
            ..
        }
    ));
}

#[test]
fn cli_and_json_share_the_typed_parsers() {
    // The same ParseError type and vocabulary serve both surfaces.
    let from_flag = api_parse::node_gen("--from", "h100").unwrap_err();
    let from_json = EstimateRequest::from_json(
        r#"{"schema_version": 1, "system": "frontier", "region": "eso",
            "upgrade": {"from": "h100", "to": "a100"}}"#,
    )
    .unwrap_err();
    match (from_flag, from_json) {
        (
            ParseError::UnknownValue {
                value: v1,
                expected: e1,
                ..
            },
            ApiError::Parse(ParseError::UnknownValue {
                value: v2,
                expected: e2,
                ..
            }),
        ) => {
            assert_eq!(v1, v2);
            assert_eq!(e1, e2);
        }
        other => panic!("expected twin UnknownValue errors, got {other:?}"),
    }
}
