//! Golden byte contract of the sweep emitters.
//!
//! The streaming engine's promise is that the API redesign changed **no
//! output byte**: CSV and JSON documents are frozen across the
//! buffered→streaming rewrite, across thread counts, and across shard
//! splits. These tests pin that contract two ways:
//!
//! - the quick grid's full documents against committed fixtures
//!   (`tests/fixtures/sweep_quick.{csv,json}`), byte for byte;
//! - all three named grids against FNV-1a 64 digests + lengths recorded
//!   from the pre-streaming executor at [`SweepConfig::fast`].
//!
//! If an intentional format change ever lands, regenerate the fixtures
//! and digests together and say so in the changelog.

use sustainable_hpc::prelude::*;
use sustainable_hpc::sweep::fnv1a64;

/// Streams `grid` serially and returns the full (csv, json) documents.
fn documents(grid: &ScenarioGrid) -> (Vec<u8>, Vec<u8>) {
    let mut csv = CsvSink::new(Vec::new());
    let mut json = JsonSink::new(Vec::new());
    Sweep::over(grid)
        .config(SweepConfig::fast())
        .threads(1)
        .sink(&mut csv)
        .sink(&mut json)
        .run()
        .expect("in-memory sweep cannot fail");
    (csv.into_inner(), json.into_inner())
}

#[test]
fn quick_grid_reproduces_the_committed_fixtures() {
    let (csv, json) = documents(&ScenarioGrid::quick());
    assert_eq!(
        csv,
        include_bytes!("fixtures/sweep_quick.csv"),
        "sweep.csv drifted from tests/fixtures/sweep_quick.csv"
    );
    assert_eq!(
        json,
        include_bytes!("fixtures/sweep_quick.json"),
        "sweep.json drifted from tests/fixtures/sweep_quick.json"
    );
}

#[test]
fn all_named_grids_match_their_recorded_digests() {
    // (grid, csv bytes, csv fnv64, json bytes, json fnv64) — recorded
    // from the pre-streaming SweepExecutor at SweepConfig::fast().
    let golden: [(&str, ScenarioGrid, usize, u64, usize, u64); 3] = [
        (
            "default",
            ScenarioGrid::paper_default(),
            95050,
            0xa75b_26b8_69a4_2a88,
            281_635,
            0x1fa8_2ec8_6a07_6055,
        ),
        (
            "quick",
            ScenarioGrid::quick(),
            3266,
            0xfc89_e060_b2a2_0830,
            8859,
            0x748d_484b_7abe_ca05,
        ),
        (
            "shifting",
            ScenarioGrid::shifting(),
            3997,
            0x4339_7d86_d907_0b28,
            11046,
            0x34d6_9b5d_9618_ec0d,
        ),
    ];
    for (name, grid, csv_len, csv_fnv, json_len, json_fnv) in golden {
        let (csv, json) = documents(&grid);
        assert_eq!(csv.len(), csv_len, "{name} csv length");
        assert_eq!(fnv1a64(&csv), csv_fnv, "{name} csv digest");
        assert_eq!(json.len(), json_len, "{name} json length");
        assert_eq!(fnv1a64(&json), json_fnv, "{name} json digest");
    }
}

#[test]
fn report_digests_agree_with_the_emitted_bytes() {
    let grid = ScenarioGrid::quick();
    let mut csv = CsvSink::new(Vec::new());
    let mut json = JsonSink::new(Vec::new());
    let report = Sweep::over(&grid)
        .config(SweepConfig::fast())
        .sink(&mut csv)
        .sink(&mut json)
        .run()
        .unwrap();
    let (csv, json) = (csv.into_inner(), json.into_inner());
    assert_eq!(report.digests.len(), 2);
    assert_eq!(report.digests[0].bytes, csv.len() as u64);
    assert_eq!(report.digests[0].fnv64, fnv1a64(&csv));
    assert_eq!(report.digests[1].bytes, json.len() as u64);
    assert_eq!(report.digests[1].fnv64, fnv1a64(&json));
}
